"""C2 — empirical complexity verification (paper §3.4).

The paper derives KeyBin2's time complexity as
``t·[O(M·logN·loglogN) + O(logN·log²M) + O(log²N)] + O(M·logN)`` — i.e.
essentially **linear in M** and **logarithmic-factor in N** once the
projection GEMM's O(M·N·logN) is accounted for. This experiment measures
fit time across sweeps of M and N and reports log-log slopes: a slope of
1.0 is perfectly linear; DBSCAN's M-slope approaches 2.

Run via ``python -m repro scaling``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.tables import TextTable
from repro.core.estimator import KeyBin2
from repro.data.gaussians import gaussian_mixture
from repro.errors import ValidationError

__all__ = ["ScalingResult", "run_scaling", "loglog_slope"]


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x) — the empirical exponent."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size != ys.size or xs.size < 2:
        raise ValidationError("need at least two matching samples")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValidationError("samples must be positive")
    lx, ly = np.log(xs), np.log(ys)
    lx -= lx.mean()
    return float(np.sum(lx * (ly - ly.mean())) / np.sum(lx * lx))


@dataclass
class ScalingResult:
    """Measured times and fitted exponents."""

    m_sweep: List[Tuple[int, float]] = field(default_factory=list)
    n_sweep: List[Tuple[int, float]] = field(default_factory=list)
    m_slope: float = 0.0
    n_slope: float = 0.0

    def render(self) -> str:
        t1 = TextTable(["M (points)", "fit time (s)"],
                       title="C2 — scaling in the number of points (N fixed)")
        for m, secs in self.m_sweep:
            t1.row([f"{m:,}", f"{secs:.3f}"])
        t2 = TextTable(["N (dims)", "fit time (s)"],
                       title="scaling in dimensionality (M fixed)")
        for n, secs in self.n_sweep:
            t2.row([f"{n:,}", f"{secs:.3f}"])
        lines = [
            t1.render(), "",
            f"log-log slope in M: {self.m_slope:.2f}  "
            "(1.00 = linear; paper claims linear)",
            "", t2.render(), "",
            f"log-log slope in N: {self.n_slope:.2f}  "
            "(≤ ~1 expected: GEMM O(N·logN) over log-factor analysis terms)",
        ]
        return "\n".join(lines)


def run_scaling(
    m_values: Sequence[int] = (8_000, 32_000, 128_000, 512_000),
    n_values: Sequence[int] = (32, 128, 512, 1024),
    fixed_n: int = 64,
    fixed_m: int = 8_000,
    n_projections: int = 4,
    repeats: int = 1,
    seed: int = 0,
) -> ScalingResult:
    # Note: the M sweep must span ≥ 1.5 orders of magnitude for the slope
    # to escape the fixed bootstrap overhead that dominates small fits.
    """Time KeyBin2 fits across M and N sweeps and fit the exponents."""
    result = ScalingResult()

    def time_fit(m: int, n: int) -> float:
        best = np.inf
        for r in range(repeats):
            x, _ = gaussian_mixture(m, n, n_clusters=4, seed=seed + r)
            kb = KeyBin2(seed=seed, n_projections=n_projections,
                         simultaneous_projections=True)
            t0 = time.perf_counter()
            kb.fit(x)
            best = min(best, time.perf_counter() - t0)
        return best

    for m in m_values:
        result.m_sweep.append((m, time_fit(m, fixed_n)))
    for n in n_values:
        result.n_sweep.append((n, time_fit(fixed_m, n)))

    def safe_slope(sweep) -> float:
        if len(sweep) < 2:
            return float("nan")
        return loglog_slope([v for v, _ in sweep], [s for _, s in sweep])

    result.m_slope = safe_slope(result.m_sweep)
    result.n_slope = safe_slope(result.n_sweep)
    return result
