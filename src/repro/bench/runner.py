"""Experiment execution helpers: timing, repetition, scaling.

The paper reports confidence intervals over 20 independent runs per design
point; :func:`repeat_with_seeds` runs a seeded experiment body ``repeats``
times and aggregates named metrics. :class:`ExperimentScale` centralizes
the down-scaling knobs so every experiment honours the same ``--scale``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.errors import ValidationError
from repro.metrics.stats import RunAggregate

__all__ = ["timed", "repeat_with_seeds", "ExperimentScale"]


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def repeat_with_seeds(
    body: Callable[[int], Dict[str, float]],
    repeats: int,
    base_seed: int = 0,
    confidence: float = 0.95,
) -> RunAggregate:
    """Run ``body(seed)`` for ``repeats`` distinct seeds, aggregating the
    metric dict it returns."""
    if repeats < 1:
        raise ValidationError("repeats must be >= 1")
    agg = RunAggregate(confidence=confidence)
    for r in range(repeats):
        metrics = body(base_seed + 1000 * r)
        agg.add(**metrics)
    return agg


@dataclass(frozen=True)
class ExperimentScale:
    """Down-scaling of the paper's experiment sizes.

    ``points`` multiplies point counts (paper: 80,000 per rank);
    ``repeats`` replaces the paper's 20 runs; ``max_ranks`` caps the rank
    doubling. ``scale=1`` reproduces the paper's sizes exactly.
    """

    points: float = 0.02          # 80,000 → 1,600 per rank by default
    repeats: int = 3
    max_ranks: int = 8

    @classmethod
    def from_factor(cls, factor: float, repeats: int | None = None,
                    max_ranks: int | None = None) -> "ExperimentScale":
        if factor <= 0:
            raise ValidationError("scale factor must be positive")
        return cls(
            points=factor,
            repeats=repeats if repeats is not None else (20 if factor >= 1 else 3),
            max_ranks=max_ranks if max_ranks is not None else (16 if factor >= 1 else 8),
        )

    def points_per_rank(self, paper_value: int = 80_000) -> int:
        return max(200, int(round(paper_value * self.points)))
