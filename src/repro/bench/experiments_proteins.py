"""Table 3 and Figures 3–4: the protein-folding case study (paper §5).

Table 3 — size statistics of the 31-trajectory library.
Figure 3 — per-trajectory clustering time, KeyBin2 vs k-means++ vs DBSCAN.
Figure 4 — metastable segments (rectangles) and cluster fingerprints for
trajectory 1a70, rendered as a text timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.dbscan import DBSCAN
from repro.baselines.kmeans import KMeans
from repro.bench.experiments_synthetic import estimate_dbscan_eps
from repro.bench.tables import TextTable
from repro.core.estimator import KeyBin2
from repro.insitu.pipeline import InSituPipeline, InSituResult
from repro.proteins.encode import encode_frames
from repro.proteins.model_library import (
    N_TRAJECTORIES,
    RESIDUES_MEAN,
    RESIDUES_RANGE,
    RESIDUES_STD,
    STEPS_MEAN,
    STEPS_RANGE,
    STEPS_STD,
    TrajectorySpec,
    library_summary,
    model_library,
)

__all__ = [
    "Table3Result", "run_table3",
    "Fig3Result", "run_fig3",
    "Fig4Result", "run_fig4",
]


@dataclass
class Table3Result:
    """Library summary vs the paper's Table 3."""

    ours: Dict[str, Dict[str, float]]
    paper: Dict[str, Dict[str, float]] = field(
        default_factory=lambda: {
            "n_residues": {
                "mean": RESIDUES_MEAN, "stdev": RESIDUES_STD,
                "min": float(RESIDUES_RANGE[0]), "max": float(RESIDUES_RANGE[1]),
            },
            "simulation_time_ps": {
                "mean": STEPS_MEAN, "stdev": STEPS_STD,
                "min": float(STEPS_RANGE[0]), "max": float(STEPS_RANGE[1]),
            },
        }
    )

    def render(self) -> str:
        table = TextTable(
            ["Characteristic", "Mean", "Stdev", "Min", "Max"],
            title=f"Table 3 — characteristics of {N_TRAJECTORIES} trajectories",
        )
        names = {
            "n_residues": "Number of residues",
            "simulation_time_ps": "Simulation time (ps)",
        }
        for key, label in names.items():
            for source, stats in (("ours", self.ours[key]), ("paper", self.paper[key])):
                table.row([
                    f"{label} ({source})",
                    f"{stats['mean']:.2f}",
                    f"{stats['stdev']:.2f}",
                    f"{stats['min']:.0f}",
                    f"{stats['max']:.0f}",
                ])
        return table.render()


def run_table3(scale: float = 1.0, seed: int = 20180813) -> Table3Result:
    """Reproduce Table 3 from the synthetic library."""
    specs = model_library(seed=seed, scale=scale)
    return Table3Result(ours=library_summary(specs))


@dataclass
class Fig3Result:
    """Per-trajectory clustering times (seconds)."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def totals(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for row in self.rows:
            for key, value in row.items():
                if key.endswith("_time") and value is not None:
                    out[key] = out.get(key, 0.0) + float(value)
        return out

    def per_frame(self) -> Dict[str, float]:
        frames = sum(int(r["n_frames"]) for r in self.rows)
        return {k: v / frames for k, v in self.totals().items()}

    def render(self) -> str:
        table = TextTable(
            ["Trajectory", "Frames", "Residues", "KeyBin2 (s)", "kmeans++ (s)",
             "DBSCAN (s)"],
            title="Figure 3 — execution time for clustering the trajectory library",
        )
        for r in self.rows:
            def cell(key):
                v = r[key]
                return "—" if v is None else f"{v:.3f}"
            table.row([
                r["name"], r["n_frames"], r["n_residues"],
                cell("keybin2_time"), cell("kmeans_time"), cell("dbscan_time"),
            ])
        lines = [table.render(), ""]
        totals = self.totals()
        frames = sum(int(r["n_frames"]) for r in self.rows)
        for key, label in (
            ("keybin2_time", "KeyBin2"),
            ("kmeans_time", "kmeans++"),
            ("dbscan_time", "DBSCAN"),
        ):
            if key in totals:
                lines.append(
                    f"{label:<10s} total {totals[key]:8.2f} s "
                    f"({totals[key] / frames * 1000:.3f} ms/frame)"
                )
        return "\n".join(lines)


def run_fig3(
    scale: float = 0.05,
    n_trajectories: Optional[int] = None,
    dbscan_max_frames: int = 3000,
    kmeans_k: int = 6,
    seed: int = 20180813,
) -> Fig3Result:
    """Reproduce Figure 3 (per-trajectory clustering time comparison).

    ``scale`` shrinks frame counts (the paper's full library is ~300k
    frames); DBSCAN is skipped for trajectories beyond
    ``dbscan_max_frames`` (quadratic brute-force queries in
    ``n_residues``-dimensional space).
    """
    specs = model_library(seed=seed, scale=scale)
    if n_trajectories is not None:
        specs = specs[:n_trajectories]
    out = Fig3Result()
    for spec in specs:
        traj = spec.simulate()
        features = encode_frames(traj.angles)

        t0 = time.perf_counter()
        kb = KeyBin2(seed=spec.seed, n_projections=4).fit(features)
        keybin2_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        KMeans(kmeans_k, seed=spec.seed, n_init=1).fit(features)
        kmeans_time = time.perf_counter() - t0

        dbscan_time = None
        if features.shape[0] <= dbscan_max_frames:
            eps = estimate_dbscan_eps(features, seed=spec.seed)
            t0 = time.perf_counter()
            DBSCAN(eps=eps, min_points=5).fit(features)
            dbscan_time = time.perf_counter() - t0

        out.rows.append({
            "name": spec.name,
            "n_frames": features.shape[0],
            "n_residues": spec.n_residues,
            "keybin2_time": keybin2_time,
            "kmeans_time": kmeans_time,
            "dbscan_time": dbscan_time,
            "keybin2_clusters": kb.n_clusters_,
        })
    return out


@dataclass
class Fig4Result:
    """Figure-4 artefacts for one trajectory."""

    name: str
    result: InSituResult
    n_frames: int
    phase_ids: np.ndarray

    def render(self, width: int = 100) -> str:
        """ASCII timeline: metastable rectangles, fingerprint changes,
        ground-truth phases."""
        res = self.result
        scalef = self.n_frames / width

        def to_col(frame: int) -> int:
            return min(width - 1, int(frame / scalef))

        seg_line = [" "] * width
        for seg in res.segments:
            a, b = to_col(seg.start), to_col(seg.stop - 1)
            for c in range(a, b + 1):
                seg_line[c] = str(seg.label % 10)
        change_line = [" "] * width
        for f in res.fingerprint_changes:
            change_line[to_col(int(f))] = "^"
        phase_line = [
            str(int(self.phase_ids[min(self.n_frames - 1, int(i * scalef))]) % 10)
            for i in range(width)
        ]
        lines = [
            f"Figure 4 — trajectory {self.name}: {self.n_frames} frames, "
            f"{res.n_clusters} fine-grained clusters",
            "=" * width,
            "metastable segments (eqs. 3–4, label digits):",
            "".join(seg_line),
            "fingerprint change points (^):",
            "".join(change_line),
            "ground-truth phases:",
            "".join(phase_line),
            "",
            f"segments: {[(s.start, s.stop, s.label) for s in res.segments]}",
            f"phase NMI (online labels vs truth)  = {res.phase_nmi:.3f}",
            f"segment NMI (eqs. 3–4 vs truth)     = "
            + (f"{res.segment_nmi:.3f}" if res.segment_nmi is not None else "n/a"),
        ]
        return "\n".join(lines)


def run_fig4(
    scale: float = 0.2,
    seed: int = 20180813,
    **pipeline_params,
) -> Fig4Result:
    """Reproduce Figure 4 on the 1a70-style trajectory (10,000 frames at
    ``scale=1``)."""
    spec = model_library(seed=seed, scale=scale)[0]  # 1a70 by construction
    traj = spec.simulate()
    pipe = InSituPipeline(seed=spec.seed, **pipeline_params)
    res = pipe.run(traj)
    return Fig4Result(
        name=spec.name,
        result=res,
        n_frames=traj.n_frames,
        phase_ids=traj.phase_ids,
    )
