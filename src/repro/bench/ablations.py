"""Ablation studies for KeyBin2's design choices (DESIGN.md A1–A3, C1).

A1 — partitioning mechanism: KeyBin1's density threshold vs KeyBin2's
     derivative/prominence optimization, swept over cluster imbalance
     (the regime where a global threshold must fail).
A2 — bootstrap width: accuracy/time vs the number of random projections.
A3 — the ``N_rp = 1.5·log N`` rule vs smaller/larger targets.
C1 — measured communication volume vs the paper's O(2·K·N_rp·B) claim,
     for master and ring consolidation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.tables import TextTable, format_mean_ci
from repro.bench.runner import repeat_with_seeds
from repro.core.distributed import fit_distributed
from repro.core.estimator import KeyBin2
from repro.core.keybin1 import KeyBin1
from repro.core.projection import target_dimension
from repro.data.gaussians import gaussian_mixture
from repro.data.streams import distributed_partitions
from repro.metrics.pairs import pair_precision_recall_f1
from repro.metrics.stats import RunAggregate

__all__ = [
    "AblationResult",
    "run_ablation_partitioning",
    "run_ablation_bootstrap",
    "run_ablation_nrp",
    "run_ablation_smoother",
    "run_ablation_simultaneous",
    "CommVolumeResult",
    "run_comm_volume",
]


@dataclass
class AblationResult:
    """Generic sweep result: ``rows[config][metric] -> RunAggregate``."""

    title: str
    sweep_name: str
    rows: Dict[str, Dict[str, RunAggregate]] = field(default_factory=dict)
    metrics: Sequence[str] = ("f1", "clusters", "time")

    def render(self) -> str:
        table = TextTable(
            [self.sweep_name] + [m for m in self.metrics], title=self.title
        )
        for config, aggs in self.rows.items():
            cells = [config]
            for m in self.metrics:
                cells.append(format_mean_ci(*aggs[m].ci(m)))
            table.row(cells)
        return table.render()


def run_ablation_partitioning(
    imbalances: Sequence[float] = (1.0, 4.0, 16.0),
    n_points: int = 6000,
    n_dims: int = 8,
    repeats: int = 3,
    seed: int = 0,
) -> AblationResult:
    """A1: threshold heuristic vs discrete optimization under imbalance.

    ``imbalance`` is the expected largest/smallest cluster size ratio; a
    density threshold calibrated to the big cluster erases the small one.
    """
    out = AblationResult(
        title="Ablation A1 — partitioning: KeyBin1 threshold vs KeyBin2",
        sweep_name="config",
    )
    for imb in imbalances:
        concentration = 10.0 / imb  # smaller Dirichlet concentration → skew
        for algo in ("KeyBin1", "KeyBin2"):
            def body(run_seed: int) -> Dict[str, float]:
                x, y = gaussian_mixture(
                    n_points=n_points, n_dims=n_dims, n_clusters=4,
                    weight_concentration=concentration, seed=run_seed,
                )
                t0 = time.perf_counter()
                if algo == "KeyBin1":
                    model = KeyBin1(depth=6).fit(x)
                else:
                    model = KeyBin2(seed=run_seed).fit(x)
                elapsed = time.perf_counter() - t0
                _, _, f1 = pair_precision_recall_f1(y, model.labels_)
                return {
                    "f1": f1,
                    "clusters": float(model.n_clusters_),
                    "time": elapsed,
                }

            agg = repeat_with_seeds(body, repeats, base_seed=seed)
            out.rows[f"imbalance×{imb:g} / {algo}"] = {
                m: agg for m in out.metrics
            }
    return out


def run_ablation_bootstrap(
    trials: Sequence[int] = (1, 2, 4, 8, 16),
    n_points: int = 4000,
    n_dims: int = 32,
    repeats: int = 3,
    seed: int = 0,
) -> AblationResult:
    """A2: accuracy and cost vs the number of bootstrap projections."""
    out = AblationResult(
        title="Ablation A2 — bootstrap width (number of random projections)",
        sweep_name="n_projections",
    )
    for t in trials:
        def body(run_seed: int) -> Dict[str, float]:
            x, y = gaussian_mixture(
                n_points=n_points, n_dims=n_dims, n_clusters=4, seed=run_seed
            )
            t0 = time.perf_counter()
            kb = KeyBin2(n_projections=t, seed=run_seed).fit(x)
            elapsed = time.perf_counter() - t0
            _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
            return {"f1": f1, "clusters": float(kb.n_clusters_), "time": elapsed}

        agg = repeat_with_seeds(body, repeats, base_seed=seed)
        out.rows[str(t)] = {m: agg for m in out.metrics}
    return out


def run_ablation_nrp(
    n_dims: int = 256,
    n_points: int = 4000,
    repeats: int = 3,
    seed: int = 0,
) -> AblationResult:
    """A3: the reduced dimensionality rule.

    Sweeps N_rp ∈ {2, log N, 1.5·log N (paper), 3·log N}.
    """
    rule = target_dimension(n_dims)  # 1.5 log N
    candidates = {
        "2 (minimum)": 2,
        "log N": max(2, int(np.ceil(np.log(n_dims)))),
        "1.5·log N (paper)": rule,
        "3·log N": min(n_dims, 2 * rule),
    }
    out = AblationResult(
        title=f"Ablation A3 — N_rp rule at N = {n_dims}",
        sweep_name="N_rp",
    )
    for name, n_rp in candidates.items():
        def body(run_seed: int) -> Dict[str, float]:
            x, y = gaussian_mixture(
                n_points=n_points, n_dims=n_dims, n_clusters=4, seed=run_seed
            )
            t0 = time.perf_counter()
            kb = KeyBin2(n_components=n_rp, seed=run_seed).fit(x)
            elapsed = time.perf_counter() - t0
            _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
            return {"f1": f1, "clusters": float(kb.n_clusters_), "time": elapsed}

        agg = repeat_with_seeds(body, repeats, base_seed=seed)
        out.rows[f"{name} = {n_rp}"] = {m: agg for m in out.metrics}
    return out


@dataclass
class CommVolumeResult:
    """Measured vs predicted communication volume (DESIGN C1)."""

    rows: List[Dict[str, float]] = field(default_factory=list)

    def render(self) -> str:
        table = TextTable(
            ["ranks", "topology", "measured max bytes/rank", "histogram bytes",
             "measured / histogram"],
            title="C1 — communication volume vs the O(2·K·N_rp·B) claim",
        )
        for r in self.rows:
            table.row([
                int(r["ranks"]), r["topology"],
                f"{int(r['measured']):,}", f"{int(r['predicted']):,}",
                f"{r['ratio']:.2f}",
            ])
        return table.render()


def run_comm_volume(
    rank_steps: Sequence[int] = (2, 4, 8),
    n_dims: int = 128,
    points_per_rank: int = 1000,
    n_projections: int = 4,
    candidate_depths: Sequence[int] = (3, 4, 5, 6),
    seed: int = 0,
) -> CommVolumeResult:
    """C1: measure per-rank traffic of the distributed fit.

    The "histogram bytes" baseline is the pure histogram payload one rank
    must move per the paper's model: 2 (send + receive) × N_rp × ΣB × 8
    bytes × n_projections. Measured traffic additionally carries the small
    control messages (ranges, cuts, cell tables), so ratios modestly above
    1 are expected; growth with ranks should be flat for the ring topology.
    """
    out = CommVolumeResult()
    n_rp = target_dimension(n_dims)
    total_bins = sum(1 << d for d in candidate_depths)
    histogram_bytes = 2 * n_rp * total_bins * 8 * n_projections
    for ranks in rank_steps:
        x, y = gaussian_mixture(
            n_points=points_per_rank * ranks, n_dims=n_dims, n_clusters=4,
            seed=seed,
        )
        parts = distributed_partitions(x, y, ranks, seed=seed)
        shards = [p[0] for p in parts]
        for topology in ("master", "ring"):
            res = fit_distributed(
                shards, executor="thread", seed=seed,
                n_projections=n_projections,
                candidate_depths=tuple(candidate_depths),
                consolidation=topology,
            )
            worker_traffic = [
                t["bytes_sent"] + t["bytes_received"] for t in res.traffic[1:]
            ] or [res.traffic[0]["bytes_sent"] + res.traffic[0]["bytes_received"]]
            measured = max(worker_traffic)
            out.rows.append({
                "ranks": ranks,
                "topology": topology,
                "measured": float(measured),
                "predicted": float(histogram_bytes),
                "ratio": measured / histogram_bytes,
            })
    return out


def run_ablation_smoother(
    n_points: int = 4000,
    n_dims: int = 32,
    repeats: int = 3,
    seed: int = 0,
) -> AblationResult:
    """A4: moving-average vs KDE smoothing in the partitioner (§3.2).

    The paper claims the moving-average + local-regression scheme reaches
    KDE-level accuracy at much lower cost; this sweep measures both.
    """
    out = AblationResult(
        title="Ablation A4 — partitioner smoothing: moving average vs KDE",
        sweep_name="smoother",
    )
    for smoother in ("ma", "kde"):
        def body(run_seed: int) -> Dict[str, float]:
            x, y = gaussian_mixture(
                n_points=n_points, n_dims=n_dims, n_clusters=4,
                separation=3.0, seed=run_seed,
            )
            t0 = time.perf_counter()
            kb = KeyBin2(seed=run_seed, smoother=smoother).fit(x)
            elapsed = time.perf_counter() - t0
            _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
            return {"f1": f1, "clusters": float(kb.n_clusters_), "time": elapsed}

        agg = repeat_with_seeds(body, repeats, base_seed=seed)
        out.rows[smoother] = {m: agg for m in out.metrics}
    return out


def run_ablation_simultaneous(
    n_points: int = 20_000,
    n_dims: int = 256,
    repeats: int = 3,
    seed: int = 0,
) -> AblationResult:
    """A5: §3.4's simultaneous-projection optimization (one stacked GEMM).

    Results must be identical; only time should move.
    """
    out = AblationResult(
        title="Ablation A5 — t separate GEMMs vs one stacked GEMM (§3.4)",
        sweep_name="mode",
    )
    for mode, flag in (("separate", False), ("stacked", True)):
        def body(run_seed: int) -> Dict[str, float]:
            x, y = gaussian_mixture(
                n_points=n_points, n_dims=n_dims, n_clusters=4,
                separation=3.0, seed=run_seed,
            )
            t0 = time.perf_counter()
            kb = KeyBin2(seed=run_seed, n_projections=8,
                         simultaneous_projections=flag).fit(x)
            elapsed = time.perf_counter() - t0
            _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
            return {"f1": f1, "clusters": float(kb.n_clusters_), "time": elapsed}

        agg = repeat_with_seeds(body, repeats, base_seed=seed)
        out.rows[mode] = {m: agg for m in out.metrics}
    return out
