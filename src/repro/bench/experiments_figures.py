"""Figures 1 and 2: projection rotation and subspace assessment.

Figure 1 — two correlated clusters whose 1-D projections overlap on every
original axis; five random projections rotate the data, some decorrelating
it (b, c in the paper) and some making it worse (d, f). We quantify each
projection by its best per-dimension class overlap and show KeyBin1 fails
while KeyBin2's bootstrap finds a separating rotation.

Figure 2 — six clusters in 2-D, partitioned per dimension; the
histogram-space Calinski–Harabasz index is evaluated for the chosen cut
set and degenerate alternatives, demonstrating that the index ranks the
correct partition highest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.tables import TextTable
from repro.core.assess import histogram_ch_index
from repro.core.binning import SpaceRange
from repro.core.estimator import KeyBin2
from repro.core.keybin1 import KeyBin1
from repro.core.partitioning import find_cuts
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.core.projection import projection_matrix
from repro.data.correlated import correlated_clusters
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices
from repro.metrics.pairs import pair_precision_recall_f1

__all__ = ["Fig1Result", "run_fig1", "Fig2Result", "run_fig2",
           "class_overlap_1d"]


def class_overlap_1d(values: np.ndarray, y: np.ndarray, n_bins: int = 64) -> float:
    """Histogram-intersection overlap of two classes along one axis.

    1.0 = the class-conditional distributions coincide (inseparable);
    0.0 = disjoint supports (perfectly separable by one cut).
    """
    classes = np.unique(y)
    if classes.size != 2:
        raise ValueError("overlap is defined for exactly two classes")
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        return 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    h0, _ = np.histogram(values[y == classes[0]], bins=edges, density=False)
    h1, _ = np.histogram(values[y == classes[1]], bins=edges, density=False)
    p0 = h0 / max(h0.sum(), 1)
    p1 = h1 / max(h1.sum(), 1)
    return float(np.minimum(p0, p1).sum())


@dataclass
class Fig1Result:
    """Per-projection overlaps plus KeyBin1/KeyBin2 accuracy."""

    overlaps: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    keybin1_f1: float = 0.0
    keybin1_clusters: int = 0
    keybin2_f1: float = 0.0
    keybin2_clusters: int = 0

    def render(self) -> str:
        table = TextTable(
            ["Projection", "Overlap dim 0", "Overlap dim 1", "Separable?"],
            title="Figure 1 — projection rotation on correlated clusters",
        )
        for name, (o0, o1) in self.overlaps.items():
            sep = "yes" if min(o0, o1) < 0.25 else "no"
            table.row([name, f"{o0:.3f}", f"{o1:.3f}", sep])
        lines = [table.render(), ""]
        lines.append(
            f"KeyBin1 (no projection): {self.keybin1_clusters} cluster(s), "
            f"F1 = {self.keybin1_f1:.3f}"
        )
        lines.append(
            f"KeyBin2 (bootstrap over projections): {self.keybin2_clusters} "
            f"cluster(s), F1 = {self.keybin2_f1:.3f}"
        )
        return "\n".join(lines)


def run_fig1(
    n_points: int = 3000,
    n_projections: int = 5,
    seed: int = 1,
) -> Fig1Result:
    """Reproduce Figure 1's rotation study quantitatively."""
    x, y = correlated_clusters(n_points, seed=seed)
    out = Fig1Result()
    out.overlaps["original (a)"] = (
        class_overlap_1d(x[:, 0], y),
        class_overlap_1d(x[:, 1], y),
    )
    letters = "bcdef"
    for t in range(n_projections):
        a = projection_matrix(2, 2, seed=seed + 100 + t, kind="gaussian")
        p = x @ a
        out.overlaps[f"random ({letters[t % len(letters)]})"] = (
            class_overlap_1d(p[:, 0], y),
            class_overlap_1d(p[:, 1], y),
        )

    kb1 = KeyBin1(depth=6).fit(x)
    prec1, rec1, f1_1 = pair_precision_recall_f1(y, kb1.labels_)
    out.keybin1_f1 = f1_1
    out.keybin1_clusters = kb1.n_clusters_

    kb2 = KeyBin2(n_projections=10, seed=seed).fit(x)
    prec2, rec2, f1_2 = pair_precision_recall_f1(y, kb2.labels_)
    out.keybin2_f1 = f1_2
    out.keybin2_clusters = kb2.n_clusters_
    return out


@dataclass
class Fig2Result:
    """CH-index ranking of candidate partitions on the 6-cluster layout."""

    chosen_score: float = 0.0
    chosen_clusters: int = 0
    chosen_cuts: List[List[int]] = field(default_factory=list)
    alternative_scores: Dict[str, float] = field(default_factory=dict)
    histograms: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    f1: float = 0.0

    def render(self) -> str:
        lines = [
            "Figure 2 — assessing projected subspaces (6 clusters, 2-D)",
            "=" * 60,
            f"found partition: cuts per dim = {self.chosen_cuts}, "
            f"{self.chosen_clusters} occupied cells",
            f"histogram-space CH score = {self.chosen_score:.2f}, "
            f"pairwise F1 = {self.f1:.3f}",
            "",
            "CH score of alternative partitions (lower = worse):",
        ]
        for name, score in self.alternative_scores.items():
            lines.append(f"  {name:<28s} {score:>12.2f}")
        return "\n".join(lines)


def run_fig2(
    n_points: int = 6000,
    depth: int = 6,
    seed: int = 5,
) -> Fig2Result:
    """Reproduce Figure 2's assessment mechanics on a 6-cluster layout."""
    # Six clusters on a 3 × 2 grid — the paper's illustrative layout.
    centers = np.array(
        [[0.0, 0.0], [10.0, 0.0], [20.0, 0.0], [0.0, 10.0], [10.0, 10.0],
         [20.0, 10.0]]
    )
    rng = np.random.default_rng(seed)
    per = n_points // 6
    xs, ys = [], []
    for k, c in enumerate(centers):
        xs.append(c + rng.standard_normal((per, 2)))
        ys.append(np.full(per, k, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)

    space = SpaceRange.from_data(x, margin=0.05)
    bins = bin_indices(x, space.r_min, space.r_max, depth)
    counts = accumulate_histogram(bins, 1 << depth)

    cuts = [find_cuts(counts[j], n_points=x.shape[0]) for j in range(2)]
    partition = PrimaryPartition(depth, cuts)
    intervals = partition.intervals_for(bins)
    codes = partition.cell_codes(intervals)
    table = GlobalClusterTable.from_points(codes)
    labels = table.lookup(codes)
    cells = partition.decode_cells(table.codes)
    chosen_score = histogram_ch_index(counts, partition.cuts, cells)
    _, _, f1 = pair_precision_recall_f1(y, labels)

    out = Fig2Result(
        chosen_score=chosen_score,
        chosen_clusters=table.n_clusters,
        chosen_cuts=[list(map(int, c)) for c in cuts],
        histograms=counts,
        f1=f1,
    )

    # Alternatives: no cuts in one dim; a single arbitrary midpoint cut;
    # over-cutting every few bins.
    n_bins = 1 << depth
    alternatives = {
        "no cut in dim 1": [cuts[0], np.empty(0, dtype=np.int64)],
        "single midpoint cuts": [
            np.array([n_bins // 2], dtype=np.int64),
            np.array([n_bins // 2], dtype=np.int64),
        ],
        "over-cut (every 8 bins)": [
            np.arange(7, n_bins - 1, 8, dtype=np.int64),
            np.arange(7, n_bins - 1, 8, dtype=np.int64),
        ],
    }
    for name, alt in alternatives.items():
        p = PrimaryPartition(depth, alt)
        iv = p.intervals_for(bins)
        cd = p.cell_codes(iv)
        tb = GlobalClusterTable.from_points(cd)
        score = histogram_ch_index(counts, p.cuts, p.decode_cells(tb.codes))
        out.alternative_scores[name] = score
    return out
