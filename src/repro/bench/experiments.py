"""Unified experiment registry (see DESIGN.md §4 for the index)."""

from __future__ import annotations

from repro.bench.experiments_synthetic import (
    Table1Result,
    Table2Result,
    run_table1,
    run_table2,
)
from repro.bench.experiments_figures import (
    Fig1Result,
    Fig2Result,
    run_fig1,
    run_fig2,
)
from repro.bench.experiments_proteins import (
    Table3Result,
    Fig3Result,
    Fig4Result,
    run_table3,
    run_fig3,
    run_fig4,
)
from repro.bench.ablations import (
    AblationResult,
    CommVolumeResult,
    run_ablation_bootstrap,
    run_ablation_nrp,
    run_ablation_partitioning,
    run_ablation_simultaneous,
    run_ablation_smoother,
    run_comm_volume,
)

__all__ = [
    "Table1Result", "run_table1",
    "Table2Result", "run_table2",
    "Fig1Result", "run_fig1",
    "Fig2Result", "run_fig2",
    "Table3Result", "run_table3",
    "Fig3Result", "run_fig3",
    "Fig4Result", "run_fig4",
    "AblationResult",
    "run_ablation_partitioning",
    "run_ablation_bootstrap",
    "run_ablation_nrp",
    "run_ablation_smoother",
    "run_ablation_simultaneous",
    "CommVolumeResult",
    "run_comm_volume",
]
