"""Tables 1 and 2: scalability and accuracy on synthetic mixed Gaussians.

Table 1 — fix the rank count, grow dimensionality 20 → 1280 (×4 steps).
Table 2 — fix dimensionality at 1280, double ranks 1 → 16 with a constant
80,000 points per rank (weak scaling).

Both compare KeyBin2 against k-means++ (sequential), parallel k-means, and
(Table 2) PDSDBSCAN. Baselines receive the advantages the paper grants
them: the true ``k`` for the k-means family and a tuned ``eps`` for
DBSCAN; KeyBin2 is run fully non-parametrically.

Paper behaviours reproduced structurally:

* k-means++ stops being usable beyond ~100 dimensions (the paper's runs
  crashed); we enforce an explicit ``kmeans_dim_limit`` and emit ``—``;
* PDSDBSCAN cannot go past ~100k points / suffers distance concentration
  in 1280-d (finds one giant cluster: recall 1, precision ≈ 1/k).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.kmeans import KMeans
from repro.baselines.parallel_kmeans import ParallelKMeans
from repro.baselines.pdsdbscan import PDSDBSCAN
from repro.bench.runner import ExperimentScale, repeat_with_seeds
from repro.bench.tables import TextTable, format_mean_ci
from repro.core.distributed import fit_distributed
from repro.data.gaussians import gaussian_mixture
from repro.data.streams import distributed_partitions
from repro.metrics.pairs import pair_precision_recall_f1
from repro.metrics.stats import RunAggregate

__all__ = ["Table1Result", "run_table1", "Table2Result", "run_table2",
           "estimate_dbscan_eps"]

PAPER_DIMS = (20, 80, 320, 1280)
PAPER_RANK_STEPS = (1, 2, 4, 8, 16)
N_TRUE_CLUSTERS = 4


def estimate_dbscan_eps(x: np.ndarray, k: int = 4, sample: int = 500,
                        seed: int = 0) -> float:
    """The standard k-NN-knee eps heuristic on a subsample.

    This is the "optimal parameters" treatment the paper gives PDSDBSCAN;
    in very high dimensions the k-NN distances concentrate, so any eps
    either merges everything or marks everything noise — the failure mode
    Table 2 shows.
    """
    rng = np.random.default_rng(seed)
    m = x.shape[0]
    idx = rng.choice(m, size=min(sample, m), replace=False)
    sub = x[idx]
    d2 = (
        np.einsum("ij,ij->i", sub, sub)[:, None]
        - 2 * sub @ sub.T
        + np.einsum("ij,ij->i", sub, sub)[None, :]
    )
    np.maximum(d2, 0, out=d2)
    d = np.sqrt(np.sort(d2, axis=1)[:, min(k, sub.shape[0] - 1)])
    eps = float(np.median(d) * 1.05)
    if eps <= 0.0:
        # Discrete/duplicated data: the k-NN distance can be exactly zero.
        positive = d[d > 0]
        eps = float(positive.min()) if positive.size else 1.0
    return eps


def _keybin_metrics(shards, y, seed: int) -> Dict[str, float]:
    t0 = time.perf_counter()
    res = fit_distributed(list(shards), executor="thread", seed=seed)
    elapsed = time.perf_counter() - t0
    prec, rec, f1 = pair_precision_recall_f1(y, res.concatenated_labels())
    return {
        "clusters": float(res.n_clusters),
        "recall": rec,
        "precision": prec,
        "f1": f1,
        "time": elapsed,
    }


def _kmeanspp_metrics(x, y, seed: int) -> Dict[str, float]:
    t0 = time.perf_counter()
    km = KMeans(N_TRUE_CLUSTERS, seed=seed).fit(x)
    elapsed = time.perf_counter() - t0
    prec, rec, f1 = pair_precision_recall_f1(y, km.labels_)
    return {
        "clusters": float(np.unique(km.labels_).size),
        "recall": rec,
        "precision": prec,
        "f1": f1,
        "time": elapsed,
    }


def _parallel_kmeans_metrics(shards, y, seed: int) -> Dict[str, float]:
    t0 = time.perf_counter()
    pk = ParallelKMeans(N_TRUE_CLUSTERS, seed=seed).fit(list(shards))
    elapsed = time.perf_counter() - t0
    prec, rec, f1 = pair_precision_recall_f1(y, pk.concatenated_labels())
    return {
        "clusters": float(np.unique(pk.concatenated_labels()).size),
        "recall": rec,
        "precision": prec,
        "f1": f1,
        "time": elapsed,
    }


def _pdsdbscan_metrics(shards, y, seed: int, max_points: int) -> Optional[Dict[str, float]]:
    total = sum(s.shape[0] for s in shards)
    if total > max_points:
        return None  # the paper's "could not handle more than 100k points"
    x_all = np.concatenate(shards)
    eps = estimate_dbscan_eps(x_all, seed=seed)
    t0 = time.perf_counter()
    pdb = PDSDBSCAN(eps=eps, min_points=5).fit(list(shards))
    elapsed = time.perf_counter() - t0
    labels = pdb.concatenated_labels()
    prec, rec, f1 = pair_precision_recall_f1(y, labels)
    return {
        "clusters": float(max(pdb.n_clusters_, 1)),
        "recall": rec,
        "precision": prec,
        "f1": f1,
        "time": elapsed,
    }


_METRIC_ORDER = ("clusters", "recall", "precision", "f1", "time")


@dataclass
class Table1Result:
    """Aggregated Table-1 rows: ``results[dims][method] -> RunAggregate``."""

    dims: Sequence[int]
    n_ranks: int
    points_per_rank: int
    repeats: int
    results: Dict[int, Dict[str, RunAggregate]] = field(default_factory=dict)

    def render(self) -> str:
        table = TextTable(
            ["Method", "Clusters", "Recall", "Precision", "F1", "Time (s)"],
            title=(
                f"Table 1 — {self.n_ranks * self.points_per_rank:,} points on "
                f"{self.n_ranks} ranks ({self.points_per_rank:,}/rank), "
                f"{self.repeats} runs"
            ),
        )
        for d in self.dims:
            table.section(f"{d} dimensions")
            for method, agg in self.results[d].items():
                if agg is None:
                    table.row([method, "—", "—", "—", "—", "—"])
                    continue
                cells = [method]
                for metric, digits in zip(_METRIC_ORDER, (2, 3, 3, 3, 2)):
                    cells.append(format_mean_ci(*agg.ci(metric), digits=digits))
                table.row(cells)
        return table.render()


def run_table1(
    dims: Sequence[int] = PAPER_DIMS,
    scale: ExperimentScale = ExperimentScale(),
    n_ranks: int = 8,
    kmeans_dim_limit: int = 160,
    separation: float = 3.0,
    seed: int = 0,
) -> Table1Result:
    """Reproduce Table 1 (dimension scaling at fixed rank count)."""
    points_per_rank = scale.points_per_rank()
    out = Table1Result(
        dims=tuple(dims), n_ranks=n_ranks,
        points_per_rank=points_per_rank, repeats=scale.repeats,
    )
    for d in dims:
        per_dim: Dict[str, Optional[RunAggregate]] = {}

        def body_factory(method):
            def body(run_seed: int) -> Dict[str, float]:
                x, y = gaussian_mixture(
                    n_points=points_per_rank * n_ranks,
                    n_dims=d,
                    n_clusters=N_TRUE_CLUSTERS,
                    separation=separation,
                    seed=run_seed,
                )
                parts = distributed_partitions(x, y, n_ranks, seed=run_seed)
                shards = [p[0] for p in parts]
                y_order = np.concatenate([p[1] for p in parts])
                if method == "KeyBin2":
                    return _keybin_metrics(shards, y_order, run_seed)
                if method == "kmeans++":
                    return _kmeanspp_metrics(x, y, run_seed)
                return _parallel_kmeans_metrics(shards, y_order, run_seed)
            return body

        per_dim["KeyBin2"] = repeat_with_seeds(
            body_factory("KeyBin2"), scale.repeats, base_seed=seed
        )
        if d <= kmeans_dim_limit:
            per_dim["kmeans++"] = repeat_with_seeds(
                body_factory("kmeans++"), scale.repeats, base_seed=seed
            )
        else:
            per_dim["kmeans++"] = None
        per_dim["parallel-kmeans"] = repeat_with_seeds(
            body_factory("parallel-kmeans"), scale.repeats, base_seed=seed
        )
        out.results[d] = per_dim
    return out


@dataclass
class Table2Result:
    """Aggregated Table-2 rows: ``results[ranks][method] -> RunAggregate``."""

    rank_steps: Sequence[int]
    n_dims: int
    points_per_rank: int
    repeats: int
    results: Dict[int, Dict[str, Optional[RunAggregate]]] = field(default_factory=dict)

    def render(self) -> str:
        table = TextTable(
            ["Method", "Clusters", "Recall", "Precision", "F1", "Time (s)"],
            title=(
                f"Table 2 — {self.n_dims}-dimensional points, "
                f"{self.points_per_rank:,} per rank, {self.repeats} runs"
            ),
        )
        for r in self.rank_steps:
            table.section(
                f"{r} process(es) ({r * self.points_per_rank:,} data points)"
            )
            for method, agg in self.results[r].items():
                if agg is None:
                    table.row([method, "—", "—", "—", "—", "—"])
                    continue
                cells = [method]
                for metric, digits in zip(_METRIC_ORDER, (2, 3, 3, 3, 2)):
                    cells.append(format_mean_ci(*agg.ci(metric), digits=digits))
                table.row(cells)
        return table.render()


def run_table2(
    rank_steps: Sequence[int] = PAPER_RANK_STEPS,
    n_dims: int = 1280,
    scale: ExperimentScale = ExperimentScale(),
    dbscan_max_points: int = 2000,
    separation: float = 3.0,
    seed: int = 0,
) -> Table2Result:
    """Reproduce Table 2 (weak scaling: ranks double, per-rank data fixed)."""
    rank_steps = tuple(r for r in rank_steps if r <= scale.max_ranks)
    points_per_rank = scale.points_per_rank()
    out = Table2Result(
        rank_steps=rank_steps, n_dims=n_dims,
        points_per_rank=points_per_rank, repeats=scale.repeats,
    )
    for r in rank_steps:
        per_rank: Dict[str, Optional[RunAggregate]] = {}

        def body_factory(method):
            def body(run_seed: int) -> Dict[str, float]:
                x, y = gaussian_mixture(
                    n_points=points_per_rank * r,
                    n_dims=n_dims,
                    n_clusters=N_TRUE_CLUSTERS,
                    separation=separation,
                    seed=run_seed,
                )
                parts = distributed_partitions(x, y, r, seed=run_seed)
                shards = [p[0] for p in parts]
                y_order = np.concatenate([p[1] for p in parts])
                if method == "KeyBin2":
                    return _keybin_metrics(shards, y_order, run_seed)
                if method == "parallel-kmeans":
                    return _parallel_kmeans_metrics(shards, y_order, run_seed)
                res = _pdsdbscan_metrics(
                    shards, y_order, run_seed, dbscan_max_points
                )
                if res is None:
                    raise _SkipMethod()
                return res
            return body

        per_rank["KeyBin2"] = repeat_with_seeds(
            body_factory("KeyBin2"), scale.repeats, base_seed=seed
        )
        per_rank["parallel-kmeans"] = repeat_with_seeds(
            body_factory("parallel-kmeans"), scale.repeats, base_seed=seed
        )
        try:
            per_rank["pdsdbscan"] = repeat_with_seeds(
                body_factory("pdsdbscan"), scale.repeats, base_seed=seed
            )
        except _SkipMethod:
            per_rank["pdsdbscan"] = None
        out.results[r] = per_rank
    return out


class _SkipMethod(Exception):
    """Raised when a baseline cannot run at this design point (paper: '—')."""
