"""Plain-text table rendering in the paper's style."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.errors import ValidationError

__all__ = ["TextTable", "format_mean_ci"]


def format_mean_ci(mean: float, half: float, digits: int = 3) -> str:
    """``mean ± half`` with fixed digits (paper table cell format)."""
    return f"{mean:.{digits}f} ± {half:.{digits}f}"


class TextTable:
    """Minimal fixed-width table with section headers.

    >>> t = TextTable(["Method", "F1", "Time (s)"])
    >>> t.section("20 dimensions")
    >>> t.row(["KeyBin2", "0.877 ± 0.03", "42.1"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise ValidationError("need at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: List[Any] = []  # str (section) or list[str] (row)

    def section(self, name: str) -> None:
        self._rows.append(str(name))

    def row(self, values: Sequence[Any]) -> None:
        vals = [str(v) for v in values]
        if len(vals) != len(self.columns):
            raise ValidationError(
                f"row has {len(vals)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(vals)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for r in self._rows:
            if isinstance(r, list):
                for i, cell in enumerate(r):
                    widths[i] = max(widths[i], len(cell))
        sep = "  "
        lines: List[str] = []
        total = sum(widths) + len(sep) * (len(widths) - 1)
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(total, len(self.title)))
        lines.append(sep.join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep.join("-" * w for w in widths))
        for r in self._rows:
            if isinstance(r, str):
                lines.append(f"-- {r} --")
            else:
                lines.append(sep.join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
