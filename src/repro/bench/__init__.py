"""Benchmark harness regenerating the paper's tables and figures.

Each experiment in :mod:`repro.bench.experiments` reproduces one artifact
of the paper's evaluation (see DESIGN.md's experiment index). They return
structured results and can render paper-style text tables; the CLI
(``python -m repro``) and the pytest-benchmark suite under ``benchmarks/``
are thin wrappers around them.

Scale: the paper ran 1.28M × 1280-d points on a 32-node cluster; default
scales here are laptop-sized, chosen so every shape conclusion (who wins,
growth trends, crossovers) is preserved. Pass ``--scale 1.0`` for
paper-sized runs.
"""

from __future__ import annotations

from repro.bench.tables import TextTable, format_mean_ci
from repro.bench.runner import timed, repeat_with_seeds, ExperimentScale

__all__ = [
    "TextTable",
    "format_mean_ci",
    "timed",
    "repeat_with_seeds",
    "ExperimentScale",
]
