"""Cross-process request tracing over the serve/fleet wire protocol.

A predict that traverses client → :class:`~repro.fleet.router.FleetRouter`
→ replica :class:`~repro.serve.server.ModelServer` → micro-batch flush →
model call crosses three processes and four queues; per-process phase
spans (:mod:`repro.obs.trace`) cannot follow it. This module adds the
minimal distributed-tracing layer that can:

* **Trace context on the wire** — an optional ``"trace"`` field on the
  existing newline-JSON protocol::

      {"op": "predict", "x": [...], "trace": {"id": "<16hex>",
                                              "span": "<16hex>",
                                              "sampled": 1}}

  :func:`inject` writes it from a live span, :func:`extract` reads it
  back into a :class:`TraceContext`. A request without the field behaves
  exactly as before (and the router keeps forwarding it byte-for-byte).

* **Linked spans** — every hop (client call, router route, per-replica
  forward/failover attempt, replica admission, queue wait, model call /
  cache hit) opens an :class:`ActiveSpan` whose parent id is the span
  that carried the request into it, so one request reconstructs into one
  connected tree across processes.

* **Sampling** — head-based: the *client* (or whichever hop starts the
  trace) flips a coin once at ``sample_rate`` and the decision rides the
  wire in ``sampled``. Unsampled spans still propagate context but emit
  nothing — **unless they end in an error status** (shed, deadline
  exceeded, circuit open, connection lost, ...), which is always emitted
  so overload and failure forensics never depend on the sampling dice.

* **TraceSink** — bounded JSON-lines export: an in-memory ring for tests
  and the dashboard plus an optional append-mode file (``{pid}`` in the
  path expands per process, so N replica processes write N files that
  :func:`load_spans` reads back together). A hard ``max_spans`` cap
  bounds file growth; overflow increments ``dropped`` instead of
  blocking the serving path.

The reconstruction half (:func:`load_spans`, :func:`build_traces`,
:func:`render_trace`, :func:`trace_summary`) is what ``python -m repro
obs-trace`` renders: the span tree with per-hop latency and a
critical-path summary keyed to the paper's §3 cost phases.
"""

from __future__ import annotations

import glob as _glob
import json
import os
import random
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TraceContext",
    "TraceSink",
    "RequestTracer",
    "ActiveSpan",
    "inject",
    "extract",
    "configure_tracer",
    "get_tracer",
    "reset_tracer",
    "load_spans",
    "build_traces",
    "render_trace",
    "trace_summary",
    "PHASE_OF_HOP",
]

#: Hop name → paper-§3 cost-model phase, for the obs-trace summary. The
#: model call is the per-point predict kernel (§3's O(n·d) labeling
#: term); everything else is serving machinery layered around it.
PHASE_OF_HOP: Dict[str, str] = {
    "client/predict": "client round trip",
    "router/route": "routing decision",
    "router/forward": "transport (router->replica)",
    "server/predict": "replica handling",
    "server/admission": "admission control",
    "server/queue": "micro-batch linger",
    "server/model_call": "predict kernel (paper §3)",
    "server/cache_hit": "label cache (paper §3 bypass)",
}

_HEX = "0123456789abcdef"


def _gen_id(rng: random.Random) -> str:
    return "".join(rng.choice(_HEX) for _ in range(16))


def _valid_id(value: Any) -> bool:
    return (
        isinstance(value, str)
        and len(value) == 16
        and all(c in _HEX for c in value)
    )


class TraceContext:
    """The portable identity of one span: what rides the wire."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id}, {self.span_id}, "
            f"sampled={self.sampled})"
        )


def inject(payload: Dict[str, Any], span: Union["ActiveSpan", TraceContext]) -> None:
    """Write ``span``'s context into a request payload (in place)."""
    ctx = span.context if isinstance(span, ActiveSpan) else span
    if ctx is None:
        return
    payload["trace"] = {
        "id": ctx.trace_id,
        "span": ctx.span_id,
        "sampled": 1 if ctx.sampled else 0,
    }


def extract(request: Optional[Dict[str, Any]]) -> Optional[TraceContext]:
    """Read a :class:`TraceContext` off a parsed request, or ``None``.

    Tolerant by design: a malformed ``trace`` field means the request is
    served untraced, never rejected — tracing must not be able to break
    serving.
    """
    if not isinstance(request, dict):
        return None
    field = request.get("trace")
    if not isinstance(field, dict):
        return None
    trace_id, span_id = field.get("id"), field.get("span")
    if not (_valid_id(trace_id) and _valid_id(span_id)):
        return None
    return TraceContext(trace_id, span_id, bool(field.get("sampled")))


class TraceSink:
    """Bounded, thread-safe span export: memory ring + optional JSONL file.

    Parameters
    ----------
    path:
        Optional JSON-lines file (append mode, opened lazily). ``{pid}``
        in the path expands to the writing process id, so multi-process
        fleets get one file per process without coordination.
    max_spans:
        Hard cap on spans written to the file; overflow is counted in
        :attr:`dropped`, never blocks, never raises.
    memory:
        Length of the in-memory ring (most recent spans), which is what
        tests and the live dashboard read without touching disk.
    """

    def __init__(self, path: Optional[str] = None, max_spans: int = 100_000,
                 memory: int = 4096):
        self.path = None if path is None else path.replace(
            "{pid}", str(os.getpid())
        )
        self.max_spans = int(max_spans)
        self._ring: deque = deque(maxlen=int(memory))
        self._file = None
        self._lock = threading.Lock()
        self.emitted = 0
        self.dropped = 0

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._ring.append(record)
            self.emitted += 1
            if self.path is None:
                return
            if self.emitted > self.max_spans:
                self.dropped += 1
                return
            try:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(json.dumps(record) + "\n")
                self._file.flush()
            except OSError:
                # A full disk must degrade tracing, never serving.
                self.dropped += 1

    def spans(self) -> List[Dict[str, Any]]:
        """Most recent spans (the in-memory ring), oldest first."""
        with self._lock:
            return list(self._ring)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class _NoopSpan:
    """Shared do-nothing span for the untraced / tracer-disabled path."""

    __slots__ = ()
    name = ""
    context: Optional[TraceContext] = None
    sampled = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class ActiveSpan:
    """One live hop of a traced request (context manager).

    Emitted to the sink on exit when the trace is sampled **or** the span
    ended in a non-``ok`` status (always-sample-on-error). An exception
    escaping the ``with`` body marks the status ``exception`` unless a
    more specific status was already set.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id",
                 "sampled", "attrs", "status", "start", "duration", "_t0")

    def __init__(self, tracer: "RequestTracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str], sampled: bool,
                 attrs: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = bool(sampled)
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self.start = 0.0
        self.duration = 0.0
        self._t0 = 0.0

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, self.sampled)

    def set_status(self, status: str) -> None:
        self.status = str(status)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "ActiveSpan":
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None and self.status == "ok":
            code = getattr(exc, "code", None)
            self.status = code if isinstance(code, str) else "exception"
        if self.sampled or self.status != "ok":
            self._tracer._emit_span(self)


class RequestTracer:
    """Factory for request spans bound to one :class:`TraceSink`.

    ``sink=None`` (the default for the process-global tracer) disables
    tracing entirely: every factory method returns the shared
    :data:`NOOP_SPAN` and the hot path pays one attribute check.
    """

    def __init__(self, sink: Optional[TraceSink] = None,
                 sample_rate: float = 1.0, seed: Optional[int] = None):
        if not 0.0 <= float(sample_rate) <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sink = sink
        self.sample_rate = float(sample_rate)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.sink is not None

    # -- span factories ------------------------------------------------------

    def _sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.sample_rate

    def _ids(self) -> str:
        with self._lock:
            return _gen_id(self._rng)

    def root(self, name: str, sampled: Optional[bool] = None,
             force: bool = False,
             attrs: Optional[Dict[str, Any]] = None) -> Union[ActiveSpan, _NoopSpan]:
        """Start a new trace; the head-based sampling decision is made here."""
        if self.sink is None:
            return NOOP_SPAN
        if force:
            sampled = True
        elif sampled is None:
            sampled = self._sample()
        return ActiveSpan(self, name, self._ids(), self._ids(), None,
                          sampled, attrs)

    def child_of(self, parent: Union[ActiveSpan, TraceContext, None],
                 name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> Union[ActiveSpan, _NoopSpan]:
        """A span under ``parent`` (an :class:`ActiveSpan` or wire context)."""
        if self.sink is None or parent is None or parent is NOOP_SPAN:
            return NOOP_SPAN
        ctx = parent.context if isinstance(parent, ActiveSpan) else parent
        return ActiveSpan(self, name, ctx.trace_id, self._ids(), ctx.span_id,
                          ctx.sampled, attrs)

    def from_wire(self, request: Optional[Dict[str, Any]], name: str,
                  attrs: Optional[Dict[str, Any]] = None) -> Union[ActiveSpan, _NoopSpan]:
        """A span continuing the context carried by a wire request."""
        if self.sink is None:
            return NOOP_SPAN
        return self.child_of(extract(request), name, attrs)

    def event(self, name: str,
              parent: Union[ActiveSpan, TraceContext, None] = None,
              attrs: Optional[Dict[str, Any]] = None) -> None:
        """A zero-duration control-plane record, always emitted.

        Ejections, readmissions, and rollout stage transitions use this:
        rare, operationally load-bearing, never worth sampling away.
        """
        if self.sink is None:
            return
        if parent is None or parent is NOOP_SPAN:
            trace_id, parent_id = self._ids(), None
        else:
            ctx = parent.context if isinstance(parent, ActiveSpan) else parent
            trace_id, parent_id = ctx.trace_id, ctx.span_id
        self.sink.emit({
            "trace": trace_id, "span": self._ids(), "parent": parent_id,
            "name": name, "start": time.time(), "dur": 0.0,
            "status": "event", "attrs": dict(attrs) if attrs else {},
        })

    def emit_timed(self, name: str,
                   parent: Union[ActiveSpan, TraceContext, None],
                   duration: float, status: str = "ok",
                   attrs: Optional[Dict[str, Any]] = None) -> None:
        """Emit an already-measured span (for hops timed outside a ``with``).

        The micro-batcher uses this: queue wait and model-call durations
        are known only at flush time, long after the hop began. ``start``
        is reconstructed as now − duration.
        """
        if self.sink is None or parent is None or parent is NOOP_SPAN:
            return
        ctx = parent.context if isinstance(parent, ActiveSpan) else parent
        if not ctx.sampled and status == "ok":
            return
        self.sink.emit({
            "trace": ctx.trace_id, "span": self._ids(),
            "parent": ctx.span_id, "name": name,
            "start": time.time() - float(duration),
            "dur": float(duration), "status": status,
            "attrs": dict(attrs) if attrs else {},
        })

    def _emit_span(self, span: ActiveSpan) -> None:
        assert self.sink is not None
        self.sink.emit({
            "trace": span.trace_id, "span": span.span_id,
            "parent": span.parent_id, "name": span.name,
            "start": span.start, "dur": span.duration,
            "status": span.status, "attrs": span.attrs,
        })


#: Process-global tracer; disabled (no sink) until configured.
_tracer = RequestTracer()
_tracer_lock = threading.Lock()


def get_tracer() -> RequestTracer:
    return _tracer


def configure_tracer(path: Optional[str] = None, sample_rate: float = 1.0,
                     sink: Optional[TraceSink] = None,
                     max_spans: int = 100_000,
                     seed: Optional[int] = None) -> RequestTracer:
    """Install the process-global tracer (pass a sink, or a path for one)."""
    global _tracer
    if sink is None:
        sink = TraceSink(path, max_spans=max_spans)
    with _tracer_lock:
        _tracer = RequestTracer(sink, sample_rate=sample_rate, seed=seed)
        return _tracer


def reset_tracer() -> None:
    """Disable the process-global tracer (tests; symmetric with configure)."""
    global _tracer
    with _tracer_lock:
        if _tracer.sink is not None:
            _tracer.sink.close()
        _tracer = RequestTracer()


# -- reconstruction ----------------------------------------------------------


def load_spans(paths: Union[str, Sequence[str]]) -> List[Dict[str, Any]]:
    """Read span records from JSONL file(s); globs expand, bad lines skip."""
    if isinstance(paths, str):
        paths = [paths]
    files: List[str] = []
    for pattern in paths:
        matched = sorted(_glob.glob(pattern))
        files.extend(matched if matched else [pattern])
    records: List[Dict[str, Any]] = []
    for path in files:
        try:
            fh = open(path, "r", encoding="utf-8")
        except OSError:
            continue
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "span" in record:
                    records.append(record)
    return records


class TraceTree:
    """One reconstructed trace: spans indexed by id, parent → children."""

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: Dict[str, Dict[str, Any]] = {}
        self.children: Dict[str, List[str]] = {}
        self.roots: List[str] = []
        #: Spans whose recorded parent id was never seen — a broken link
        #: (or an error-only record from an unsampled trace).
        self.orphans: List[str] = []

    @property
    def connected(self) -> bool:
        """True when the tree is one component: a single root, no orphans."""
        return len(self.roots) == 1 and not self.orphans

    @property
    def root(self) -> Optional[Dict[str, Any]]:
        return self.spans[self.roots[0]] if len(self.roots) == 1 else None

    def walk(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Depth-first (depth, span) pairs, children ordered by start time."""
        out: List[Tuple[int, Dict[str, Any]]] = []

        def _visit(span_id: str, depth: int) -> None:
            out.append((depth, self.spans[span_id]))
            kids = sorted(
                self.children.get(span_id, ()),
                key=lambda s: self.spans[s].get("start", 0.0),
            )
            for kid in kids:
                _visit(kid, depth + 1)

        for start_id in self.roots + self.orphans:
            _visit(start_id, 0)
        return out


def build_traces(records: Iterable[Dict[str, Any]]) -> Dict[str, TraceTree]:
    """Group span records into :class:`TraceTree`\\ s keyed by trace id."""
    trees: Dict[str, TraceTree] = {}
    for record in records:
        trace_id = record.get("trace")
        span_id = record.get("span")
        if not (_valid_id(trace_id) and _valid_id(span_id)):
            continue
        tree = trees.setdefault(trace_id, TraceTree(trace_id))
        tree.spans[span_id] = record
    for tree in trees.values():
        for span_id, record in tree.spans.items():
            parent = record.get("parent")
            if parent is None:
                tree.roots.append(span_id)
            elif parent in tree.spans:
                tree.children.setdefault(parent, []).append(span_id)
            else:
                tree.orphans.append(span_id)
        tree.roots.sort(key=lambda s: tree.spans[s].get("start", 0.0))
        tree.orphans.sort(key=lambda s: tree.spans[s].get("start", 0.0))
    return trees


def _self_times(tree: TraceTree) -> Dict[str, float]:
    """Exclusive time per span: duration minus child durations, floored at 0.

    Children are clamped so their sum never exceeds the parent (clock
    edges between processes can overshoot by microseconds); with that
    clamp the self times of a connected tree sum exactly to the root
    duration — the property the obs-trace summary reports against the
    client-observed latency.
    """
    out: Dict[str, float] = {}
    for span_id, record in tree.spans.items():
        dur = float(record.get("dur", 0.0))
        child_sum = sum(
            float(tree.spans[c].get("dur", 0.0))
            for c in tree.children.get(span_id, ())
        )
        out[span_id] = max(0.0, dur - min(child_sum, dur))
    return out


def render_trace(tree: TraceTree) -> str:
    """ASCII span tree with per-hop latency, statuses, and key attrs."""
    lines = [f"trace {tree.trace_id}"
             + ("" if tree.connected else
                f"  [DISCONNECTED: {len(tree.roots)} roots, "
                f"{len(tree.orphans)} orphans]")]
    selfs = _self_times(tree)
    for depth, record in tree.walk():
        status = record.get("status", "ok")
        marker = "" if status in ("ok", "event") else f"  !{status}"
        attrs = record.get("attrs") or {}
        detail = "".join(
            f"  {k}={attrs[k]}" for k in sorted(attrs)
        )
        dur_ms = float(record.get("dur", 0.0)) * 1e3
        self_ms = selfs.get(record.get("span", ""), 0.0) * 1e3
        lines.append(
            f"  {'  ' * depth}{record.get('name', '?'):<{max(4, 24 - 2 * depth)}}"
            f" {dur_ms:>9.3f} ms  (self {self_ms:>8.3f} ms){marker}{detail}"
        )
    return "\n".join(lines)


def trace_summary(tree: TraceTree) -> Dict[str, Any]:
    """Critical-path summary: self time per hop, keyed to §3 phases.

    Returns ``total_s`` (root duration), ``accounted_s`` (sum of
    per-hop self times — equal to ``total_s`` on a connected tree),
    ``hops`` (per hop name: total/self seconds, count, worst status) and
    ``phases`` (self time folded through :data:`PHASE_OF_HOP`).
    """
    selfs = _self_times(tree)
    hops: Dict[str, Dict[str, Any]] = {}
    for span_id, record in tree.spans.items():
        name = record.get("name", "?")
        hop = hops.setdefault(
            name, {"count": 0, "total_s": 0.0, "self_s": 0.0, "status": "ok"}
        )
        hop["count"] += 1
        hop["total_s"] += float(record.get("dur", 0.0))
        hop["self_s"] += selfs[span_id]
        status = record.get("status", "ok")
        if status not in ("ok", "event"):
            hop["status"] = status
    phases: Dict[str, float] = {}
    for name, hop in hops.items():
        phase = PHASE_OF_HOP.get(name, "other")
        phases[phase] = phases.get(phase, 0.0) + hop["self_s"]
    root = tree.root
    total = float(root.get("dur", 0.0)) if root is not None else sum(
        h["total_s"] for h in hops.values()
    )
    return {
        "trace": tree.trace_id,
        "connected": tree.connected,
        "spans": len(tree.spans),
        "total_s": total,
        "accounted_s": sum(selfs.values()),
        "hops": hops,
        "phases": phases,
    }
