"""Periodic metrics-snapshot logger for long-running (in-situ) processes.

An in-situ analysis coupled to a simulation runs for hours with no
scrapeable endpoint; the :class:`SnapshotLogger` is the pull-less
alternative — a daemon thread that every ``interval_s`` seconds appends
one JSON line (timestamped registry snapshot) to a file or any writable
sink, so phase timings and comm volume can be reconstructed after the
fact (or tailed live)::

    with SnapshotLogger("run.metrics.jsonl", interval_s=30.0):
        run_distributed_insitu(...)

A final snapshot is always written on ``stop()``/context exit, so short
runs produce at least one line.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.obs.exposition import render_json
from repro.obs.registry import MetricsRegistry

__all__ = ["SnapshotLogger"]


class SnapshotLogger:
    """Write one JSON registry snapshot per interval to ``sink``.

    Parameters
    ----------
    sink:
        A filesystem path (opened in append mode) or an open text stream.
    interval_s:
        Seconds between snapshots.
    registries:
        Registries to snapshot (default: the process-global default).
    """

    def __init__(
        self,
        sink: Union[str, IO[str]],
        interval_s: float = 30.0,
        registries: Optional[Sequence[MetricsRegistry]] = None,
    ):
        if interval_s <= 0:
            raise ValidationError("interval_s must be > 0")
        self.interval_s = float(interval_s)
        self._registries = registries
        self._sink = sink
        self._file: Optional[IO[str]] = None
        self._owns_file = isinstance(sink, str)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.snapshots_written = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SnapshotLogger":
        if self._thread is not None:
            raise ValidationError("snapshot logger already started")
        self._file = (
            open(self._sink, "a", encoding="utf-8")
            if self._owns_file else self._sink  # type: ignore[assignment]
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-snapshots", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Write a final snapshot and stop the thread (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None
        self._write_snapshot()  # final state, after the loop has exited
        if self._owns_file and self._file is not None:
            self._file.close()
        self._file = None

    def __enter__(self) -> "SnapshotLogger":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- internals -----------------------------------------------------------

    def _run(self) -> None:
        # Sleep until the next tick *boundary* (t0 + n·interval), not a
        # fixed interval after each write: a write that takes w seconds
        # would otherwise stretch the cadence to interval+w and drift the
        # snapshot timestamps unboundedly over a long in-situ run. Ticks
        # the writer cannot keep up with are skipped, never queued.
        t0 = time.monotonic()
        tick = 0
        while True:
            now = time.monotonic()
            tick = max(tick + 1, int((now - t0) / self.interval_s) + 1)
            next_tick = t0 + tick * self.interval_s
            if self._stop.wait(max(0.0, next_tick - now)):
                return
            self._write_snapshot()

    def _write_snapshot(self) -> None:
        if self._file is None:
            return
        line = json.dumps(
            {"ts": time.time(), **render_json(self._registries)},
            sort_keys=True,
        )
        # One lock-free append per line; the GIL serializes the writes and
        # each line is written whole, so a tail -f never sees a torn record.
        self._file.write(line + "\n")
        self._file.flush()
        self.snapshots_written += 1
