"""Unified telemetry: metrics registry, phase tracing, exposition.

The observability spine every layer records into and every surface reads
from:

registry     thread-safe labeled counters / gauges / fixed-bucket
             histograms; process-global default with a no-op mode
trace        span-based phase tracing with parent/child nesting and
             explicit context propagation across threads and SPMD ranks
exposition   Prometheus-text + JSON rendering (the ``metrics`` RPC)
logger       periodic JSON-lines snapshot writer for long in-situ runs
report       ``python -m repro obs-report`` phase/comm breakdowns

Quick tour::

    from repro.obs import default_registry, trace

    reqs = default_registry().counter("myapp_requests_total", "Requests.")
    reqs.inc()
    with trace.span("partition"):
        ...                               # phase_seconds_total{phase="partition"}

    default_registry().disable()          # no-op mode: hot paths pay ~nothing
"""

from __future__ import annotations

from repro.obs.exposition import ensure_core_series, render_json, render_prometheus
from repro.obs.logger import SnapshotLogger
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    POW2_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.report import comm_table, fleet_table, phase_table, run_obs_report
from repro.obs.trace import PhaseTracer, Span, trace

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "POW2_BUCKETS",
    "PhaseTracer",
    "SnapshotLogger",
    "Span",
    "comm_table",
    "default_registry",
    "ensure_core_series",
    "fleet_table",
    "phase_table",
    "render_json",
    "render_prometheus",
    "run_obs_report",
    "set_default_registry",
    "trace",
]
