"""Unified telemetry: metrics registry, phase tracing, exposition.

The observability spine every layer records into and every surface reads
from:

registry     thread-safe labeled counters / gauges / fixed-bucket
             histograms; process-global default with a no-op mode
trace        span-based phase tracing with parent/child nesting and
             explicit context propagation across threads and SPMD ranks
reqtrace     distributed request tracing over the serve/fleet wire
             (sampled, always-on-error; ``python -m repro obs-trace``)
exposition   Prometheus-text + JSON rendering (the ``metrics`` RPC)
logger       periodic JSON-lines snapshot writer for long in-situ runs
collector    fleet-wide pull loop, SLO burn-rate alerts, merged endpoint
dashboard    live terminal view of per-replica health + firing alerts
report       ``python -m repro obs-report`` phase/comm breakdowns

Quick tour::

    from repro.obs import default_registry, trace

    reqs = default_registry().counter("myapp_requests_total", "Requests.")
    reqs.inc()
    with trace.span("partition"):
        ...                               # phase_seconds_total{phase="partition"}

    default_registry().disable()          # no-op mode: hot paths pay ~nothing
"""

from __future__ import annotations

from repro.obs.collector import (
    CollectorHandle,
    MetricsCollector,
    collector_in_thread,
)
from repro.obs.dashboard import render_dashboard, run_dashboard
from repro.obs.exposition import (
    ensure_core_series,
    render_families,
    render_json,
    render_prometheus,
)
from repro.obs.logger import SnapshotLogger
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    POW2_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.report import comm_table, fleet_table, phase_table, run_obs_report
from repro.obs.reqtrace import (
    RequestTracer,
    TraceContext,
    TraceSink,
    build_traces,
    configure_tracer,
    extract,
    get_tracer,
    inject,
    load_spans,
    render_trace,
    reset_tracer,
    trace_summary,
)
from repro.obs.slo import (
    Alert,
    SeriesStore,
    SLOEvaluator,
    SLORule,
    Window,
    default_rules,
)
from repro.obs.trace import PhaseTracer, Span, trace

__all__ = [
    "Alert",
    "CollectorHandle",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "POW2_BUCKETS",
    "PhaseTracer",
    "RequestTracer",
    "SLOEvaluator",
    "SLORule",
    "SeriesStore",
    "SnapshotLogger",
    "Span",
    "TraceContext",
    "TraceSink",
    "Window",
    "build_traces",
    "collector_in_thread",
    "comm_table",
    "configure_tracer",
    "default_registry",
    "default_rules",
    "ensure_core_series",
    "extract",
    "fleet_table",
    "get_tracer",
    "inject",
    "load_spans",
    "phase_table",
    "render_dashboard",
    "render_families",
    "render_json",
    "render_prometheus",
    "render_trace",
    "reset_tracer",
    "run_dashboard",
    "run_obs_report",
    "set_default_registry",
    "trace",
    "trace_summary",
]
