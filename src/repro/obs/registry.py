"""Thread-safe metrics registry: labeled counters, gauges, histograms.

This is the repo's single runtime-telemetry substrate. Design constraints,
in order:

1. **Hot-path cheap.** Recording is one ``enabled`` check, one tiny lock,
   one arithmetic op. In no-op mode (``registry.disable()``) recording is
   the ``enabled`` check alone — the instrumented kernels, ``partial_fit``
   and the serve predict path are guarded to regress < 3% with telemetry
   off (``benchmarks/test_obs_overhead.py``).
2. **Exact under concurrency.** Every mutation happens under the child's
   lock, so counter totals are exact and histogram snapshots are never
   torn (bucket counts always sum to ``count``) no matter how many
   threads hammer one series — the same guarantee
   :meth:`repro.serve.cache.LabelCache.snapshot` gives.
3. **Dependency-free.** Stdlib + nothing. The Prometheus text format is
   produced by :mod:`repro.obs.exposition`, not by a client library.

A process-global default registry (:func:`default_registry`) is what the
built-in instrumentation writes to; libraries embedding repro can swap in
their own via :func:`set_default_registry` or silence everything with
``default_registry().disable()``.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "POW2_BUCKETS",
    "default_registry",
    "set_default_registry",
]

#: Latency-ish bucket upper bounds (seconds), Prometheus ``le`` semantics.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-two size buckets (batch sizes, payload bytes, ...).
POW2_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(13))


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, Any], metric: str
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValidationError(
            f"metric {metric!r} takes labels {list(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _CounterChild:
    """One (metric, label-values) series. Monotonic float."""

    __slots__ = ("_registry", "_lock", "_value")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only go up; use a gauge")
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    """One gauge series. Goes up, down, or jumps."""

    __slots__ = ("_registry", "_lock", "_value")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water marks)."""
        if not self._registry.enabled:
            return
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild:
    """One histogram series: fixed upper bounds + an implicit +Inf bucket."""

    __slots__ = ("_registry", "_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, registry: "MetricsRegistry", bounds: Tuple[float, ...]):
        self._registry = registry
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        idx = bisect.bisect_left(self._bounds, value)  # first bound >= value
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def snapshot(self) -> Dict[str, Any]:
        """Consistent (never torn) view: per-bucket counts, sum, count."""
        with self._lock:
            counts = list(self._counts)
            total, s = self._count, self._sum
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self._bounds, counts):
            running += n
            cumulative[_format_bound(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": s, "count": total}


def _format_bound(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else repr(bound)


class _Family:
    """One named metric family: shared kind/help, children per label set."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "counter":
            return _CounterChild(self._registry)
        if self.kind == "gauge":
            return _GaugeChild(self._registry)
        assert self.buckets is not None
        return _HistogramChild(self._registry, self.buckets)

    def labels(self, **labels: Any):
        """The child series for these label values (created on first use)."""
        key = _label_key(self.labelnames, labels, self.name)
        child = self._children.get(key)  # lock-free fast path (GIL-safe read)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Unlabeled families act as their own (single) child.

    def _default_child(self):
        if self.labelnames:
            raise ValidationError(
                f"metric {self.name!r} is labeled {list(self.labelnames)}; "
                "call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_max(self, value: float) -> None:
        self._default_child().set_max(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly family dump: one sample per child."""
        with self._lock:
            items = list(self._children.items())
        samples = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                samples.append({"labels": labels, **child.snapshot()})
            else:
                samples.append({"labels": labels, "value": child.value})
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": samples,
        }


# Public aliases so type hints and docs read naturally.
Counter = _Family
Gauge = _Family
Histogram = _Family


class MetricsRegistry:
    """Create-or-get metric families; collect consistent snapshots.

    Re-registering an existing name returns the same family (so call sites
    can look metrics up on every hit without caching handles), but a kind
    or label-schema mismatch is a hard :class:`ValidationError` — two
    subsystems silently sharing a name with different meanings is a bug.
    """

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self.enabled = bool(enabled)

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        """No-op mode: every subsequent record call returns immediately."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every family (tests/benchmarks only — handles go stale)."""
        with self._lock:
            self._families.clear()

    # -- registration --------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        labelnames = tuple(labelnames)
        bucket_t: Optional[Tuple[float, ...]] = None
        if kind == "histogram":
            source = DEFAULT_TIME_BUCKETS if buckets is None else buckets
            bucket_t = tuple(sorted(float(b) for b in source))
            if not bucket_t:
                raise ValidationError("histogram needs at least one bucket bound")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValidationError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {list(existing.labelnames)}"
                    )
                return existing
            family = _Family(self, name, kind, help, labelnames, bucket_t)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._register(name, "histogram", help, labelnames, buckets)

    # -- collection ----------------------------------------------------------

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def collect(self) -> List[Dict[str, Any]]:
        """Snapshot every family (each child snapshot is internally consistent)."""
        return [family.snapshot() for family in self.families()]


_default = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry the built-in instrumentation records to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default
    if not isinstance(registry, MetricsRegistry):
        raise ValidationError("set_default_registry needs a MetricsRegistry")
    with _default_lock:
        previous, _default = _default, registry
    return previous
