"""``python -m repro obs-report`` — phase-time and comm-volume breakdown.

Runs a small instrumented distributed in-situ workload (the same shape as
``tests/insitu/test_consolidation.py``) against a fresh registry and
renders the two breakdowns the paper's cost model is stated in:

* **per-phase time** — from the ``phase_seconds_total``/``phase_calls_total``
  span series, the runtime decomposition of §3's linear-time pipeline
  (project → bin → histogram → keys → consolidate → refresh);
* **communication volume** — from the ``insitu_consolidation_bytes_total``
  series, checked against the paper's histogram-only bound: each rank
  ships one flat delta buffer of ``K · Σ_d N_rp · 2^d`` int64 bins per
  round (the O(2·K·N_rp·B) term), plus the sparse key-cell delta.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.obs.exposition import ensure_core_series, render_json
from repro.obs.registry import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
)

__all__ = [
    "run_obs_report",
    "phase_table",
    "comm_table",
    "recovery_table",
    "overload_table",
    "fleet_table",
    "stream_table",
    "trace_table",
]

#: Edge-bin mass fraction above which the stream table warns: this much
#: of the deepest-depth histogram sitting in boundary bins means the
#: fixed range is clipping real structure (enable adaptive binning or
#: widen feature_range).
EDGE_BIN_WARN_FRACTION = 0.05


def _family_values(reg: MetricsRegistry, name: str) -> List[Dict[str, Any]]:
    fam = reg.get(name)
    return fam.snapshot()["samples"] if fam is not None else []


def phase_table(reg: MetricsRegistry) -> str:
    """Render the per-phase span breakdown, slowest first."""
    seconds = {
        s["labels"]["phase"]: s["value"]
        for s in _family_values(reg, "phase_seconds_total")
    }
    calls = {
        s["labels"]["phase"]: s["value"]
        for s in _family_values(reg, "phase_calls_total")
    }
    if not seconds:
        return "  (no phase spans recorded)"
    # A leaf is a path that never appears as a proper prefix of another;
    # leaves partition the measured time, so only they get a % share.
    paths = sorted(seconds)
    leaves = {
        p for p in paths
        if not any(q.startswith(p + "/") for q in paths if q != p)
    }
    leaf_total = sum(seconds[p] for p in leaves) or 1.0
    rows = sorted(seconds.items(), key=lambda kv: -kv[1])
    width = max(len(p) for p, _ in rows)
    lines = [
        f"  {'phase':<{width}}  {'calls':>7}  {'total s':>9}  "
        f"{'mean ms':>9}  {'share':>6}"
    ]
    for path, secs in rows:
        n = int(calls.get(path, 0))
        mean_ms = (secs / n * 1e3) if n else 0.0
        share = f"{secs / leaf_total * 100:5.1f}%" if path in leaves else "     -"
        lines.append(
            f"  {path:<{width}}  {n:>7}  {secs:>9.4f}  {mean_ms:>9.3f}  {share}"
        )
    return "\n".join(lines)


def comm_table(reg: MetricsRegistry, model_bytes_per_round: int) -> str:
    """Render per-rank consolidation traffic vs. the histogram cost model."""
    rounds = {
        s["labels"]["rank"]: int(s["value"])
        for s in _family_values(reg, "insitu_consolidation_rounds_total")
    }
    by_rank_kind: Dict[Tuple[str, str], float] = {}
    for s in _family_values(reg, "insitu_consolidation_bytes_total"):
        key = (s["labels"]["rank"], s["labels"]["kind"])
        by_rank_kind[key] = by_rank_kind.get(key, 0.0) + s["value"]
    if not rounds:
        return "  (no consolidation rounds recorded)"
    lines = [
        f"  cost model: histogram delta = {model_bytes_per_round:,} "
        "bytes/rank/round (K · Σ_d N_rp·2^d int64 bins)",
        f"  {'rank':>4}  {'rounds':>6}  {'hist B':>12}  {'keys B':>12}  "
        f"{'seen B':>7}  {'hist B/round':>12}  {'model ×':>8}",
    ]
    for rank in sorted(rounds, key=int):
        n = rounds[rank]
        hist = int(by_rank_kind.get((rank, "hist"), 0))
        keys = int(by_rank_kind.get((rank, "keys"), 0))
        seen = int(by_rank_kind.get((rank, "seen"), 0))
        per_round = hist / n if n else 0.0
        ratio = per_round / model_bytes_per_round if model_bytes_per_round else 0.0
        lines.append(
            f"  {rank:>4}  {n:>6}  {hist:>12,}  {keys:>12,}  {seen:>7,}  "
            f"{per_round:>12,.0f}  {ratio:>8.2f}"
        )
    folded = sum(
        int(s["value"])
        for s in _family_values(reg, "insitu_consolidation_cells_folded_total")
    )
    evicted = sum(
        int(s["value"])
        for s in _family_values(reg, "insitu_consolidation_evictions_total")
    )
    lines.append(f"  peer key-cells folded: {folded:,}   evictions: {evicted:,}")
    return "\n".join(lines)


def recovery_table(reg: MetricsRegistry) -> str:
    """Render per-rank fault-recovery counters (empty run → one-liner)."""
    recoveries = {
        s["labels"]["rank"]: int(s["value"])
        for s in _family_values(reg, "insitu_recoveries_total")
        if s["value"]
    }
    lost = {
        s["labels"]["rank"]: int(s["value"])
        for s in _family_values(reg, "insitu_frames_lost_total")
    }
    if not recoveries:
        return "  (no rank-failure recoveries)"
    lines = [f"  {'rank':>4}  {'recoveries':>10}  {'frames lost':>11}"]
    for rank in sorted(recoveries, key=int):
        lines.append(
            f"  {rank:>4}  {recoveries[rank]:>10}  {lost.get(rank, 0):>11}"
        )
    return "\n".join(lines)


def overload_table(reg: MetricsRegistry) -> str:
    """Render degradation counters: sheds, deadlines, stragglers, circuit.

    Covers both prongs of the overload layer — serve-side shedding
    (``serve_shed_total`` by reason, ``serve_deadline_expired_total``,
    ``serve_queue_wait_seconds``, ``serve_circuit_open_total``) and
    consolidation-side straggler waits (``insitu_straggler_*``). Series a
    run never touched are simply omitted.
    """
    lines: List[str] = []
    sheds = {
        s["labels"]["reason"]: int(s["value"])
        for s in _family_values(reg, "serve_shed_total")
        if s["value"]
    }
    if sheds:
        total = sum(sheds.values())
        detail = "  ".join(f"{k}={v}" for k, v in sorted(sheds.items()))
        lines.append(f"  requests shed: {total:,}  ({detail})")
    expired = {
        s["labels"]["where"]: int(s["value"])
        for s in _family_values(reg, "serve_deadline_expired_total")
        if s["value"]
    }
    if expired:
        detail = "  ".join(f"{k}={v}" for k, v in sorted(expired.items()))
        lines.append(f"  deadlines expired: {sum(expired.values()):,}  ({detail})")
    for s in _family_values(reg, "serve_queue_wait_seconds"):
        count = int(s.get("count", 0))
        if count:
            mean_ms = s["sum"] / count * 1e3
            lines.append(
                f"  queue wait: {count:,} rows, mean {mean_ms:.3f} ms"
            )
    trips = sum(
        int(s["value"])
        for s in _family_values(reg, "serve_circuit_open_total")
    )
    if trips:
        lines.append(f"  circuit-breaker trips: {trips}")
    waits = sum(
        int(s["value"])
        for s in _family_values(reg, "insitu_straggler_waits_total")
    )
    wait_s = sum(
        float(s["value"])
        for s in _family_values(reg, "insitu_straggler_wait_seconds")
    )
    if waits:
        lines.append(
            f"  straggler suspicion episodes: {waits}  "
            f"(waited {wait_s:.3f} s beyond soft deadlines; slow ≠ dead)"
        )
    if not lines:
        return "  (no overload or straggler events)"
    return "\n".join(lines)


def fleet_table(reg: MetricsRegistry) -> str:
    """Render fleet-router counters: routing, spills, health, rollouts.

    Pass a :class:`~repro.fleet.router.FleetRouter`'s ``registry``; the
    process-default registry only carries these series if a router ran in
    this process.
    """
    routed: Dict[str, Dict[str, int]] = {}
    for s in _family_values(reg, "fleet_routed_total"):
        if not s["value"]:
            continue
        labels = s["labels"]
        routed.setdefault(labels["replica"], {})[labels["outcome"]] = int(
            s["value"]
        )
    if not routed:
        return "  (no fleet traffic routed)"
    outcomes = sorted({o for per in routed.values() for o in per})
    width = max(len("replica"), max(len(r) for r in routed))
    header = f"  {'replica':<{width}}  " + "  ".join(
        f"{o:>{max(len(o), 6)}}" for o in outcomes
    )
    lines = [header]
    for replica in sorted(routed):
        per = routed[replica]
        lines.append(
            f"  {replica:<{width}}  " + "  ".join(
                f"{per.get(o, 0):>{max(len(o), 6)}}" for o in outcomes
            )
        )
    spills = {
        s["labels"]["replica"]: int(s["value"])
        for s in _family_values(reg, "fleet_shard_spill_total")
        if s["value"]
    }
    if spills:
        detail = "  ".join(f"{k}={v}" for k, v in sorted(spills.items()))
        lines.append(
            f"  shard spills: {sum(spills.values()):,}  (to {detail})"
        )
    ejections = sum(
        int(s["value"])
        for s in _family_values(reg, "fleet_ejections_total")
    )
    readmissions = sum(
        int(s["value"])
        for s in _family_values(reg, "fleet_readmissions_total")
    )
    if ejections or readmissions:
        lines.append(
            f"  replica ejections: {ejections}  re-admissions: {readmissions}"
        )
    tenant_sheds = {
        s["labels"]["tenant"]: int(s["value"])
        for s in _family_values(reg, "fleet_tenant_shed_total")
        if s["value"]
    }
    if tenant_sheds:
        detail = "  ".join(f"{k}={v}" for k, v in sorted(tenant_sheds.items()))
        lines.append(
            f"  tenant-quota sheds: {sum(tenant_sheds.values()):,}  ({detail})"
        )
    rollouts = {
        s["labels"]["outcome"]: int(s["value"])
        for s in _family_values(reg, "fleet_rollouts_total")
        if s["value"]
    }
    if rollouts:
        detail = "  ".join(f"{k}={v}" for k, v in sorted(rollouts.items()))
        lines.append(f"  rollouts: {detail}")
    # Self-healing plane: supervisor restarts, quarantines, journal
    # recoveries, and the retry budget's shed count. Restart/recovery
    # series live on the process-default registry (supervisor/journal are
    # not router-scoped); callers pass default_registry() to see them.
    restarts: Dict[str, int] = {}
    for s in _family_values(reg, "fleet_replica_restarts_total"):
        if s["value"]:
            outcome = s["labels"]["outcome"]
            restarts[outcome] = restarts.get(outcome, 0) + int(s["value"])
    if restarts:
        detail = "  ".join(f"{k}={v}" for k, v in sorted(restarts.items()))
        lines.append(f"  replica restarts: {detail}")
    quarantined = sorted(
        s["labels"]["replica"]
        for s in _family_values(reg, "fleet_replica_quarantined")
        if s["value"]
    )
    if quarantined:
        lines.append(f"  quarantined (crash-looping): {', '.join(quarantined)}")
    recoveries = {
        s["labels"]["action"]: int(s["value"])
        for s in _family_values(reg, "fleet_recoveries_total")
        if s["value"]
    }
    if recoveries:
        detail = "  ".join(f"{k}={v}" for k, v in sorted(recoveries.items()))
        lines.append(f"  journal recoveries: {detail}")
    budget_shed = sum(
        int(s["value"])
        for s in _family_values(reg, "fleet_retry_budget_exhausted_total")
    )
    if budget_shed:
        lines.append(f"  retry-budget sheds: {budget_shed:,}")
    return "\n".join(lines)


def stream_table(
    reg: MetricsRegistry, edge_warn: float = EDGE_BIN_WARN_FRACTION
) -> str:
    """Render open-world stream health: out-of-range rows, grid rebins,
    drift scores, responses, and edge-bin saturation.

    Emits an explicit WARNING line when any projection's edge-bin mass
    fraction (``stream_edge_bin_fraction``) exceeds ``edge_warn`` — the
    signature of a fixed range clipping real structure into boundary
    bins. Series a run never touched are omitted; a run with none of
    them renders the usual one-liner.
    """
    lines: List[str] = []
    oor: Dict[Tuple[str, str], int] = {}
    for s in _family_values(reg, "stream_out_of_range_total"):
        if s["value"]:
            key = (s["labels"]["projection"], s["labels"]["side"])
            oor[key] = oor.get(key, 0) + int(s["value"])
    if oor:
        total = sum(oor.values())
        detail = "  ".join(
            f"proj{p}/{side}={v}" for (p, side), v in sorted(oor.items())
        )
        lines.append(f"  out-of-range rows: {total:,}  ({detail})")
    rebins = {
        s["labels"]["projection"]: int(s["value"])
        for s in _family_values(reg, "stream_rebin_total")
        if s["value"]
    }
    if rebins:
        detail = "  ".join(f"proj{p}={v}" for p, v in sorted(rebins.items()))
        lines.append(
            f"  adaptive grid rebins: {sum(rebins.values())}  ({detail})"
        )
    scores = {
        s["labels"]["projection"]: float(s["value"])
        for s in _family_values(reg, "stream_drift_score")
    }
    if scores:
        detail = "  ".join(f"proj{p}={v:.3f}" for p, v in sorted(scores.items()))
        lines.append(f"  drift scores (latest window TV): {detail}")
    responses = sum(
        int(s["value"])
        for s in _family_values(reg, "stream_drift_responses_total")
    )
    if responses:
        lines.append(f"  drift-triggered republishes: {responses}")
    edges = {
        s["labels"]["projection"]: float(s["value"])
        for s in _family_values(reg, "stream_edge_bin_fraction")
    }
    if edges:
        detail = "  ".join(f"proj{p}={v:.4f}" for p, v in sorted(edges.items()))
        lines.append(f"  edge-bin mass fraction: {detail}")
        hot = {p: v for p, v in edges.items() if v > edge_warn}
        if hot:
            worst = max(hot.values())
            lines.append(
                f"  WARNING: edge-bin mass {worst:.1%} exceeds "
                f"{edge_warn:.0%} on projection(s) "
                f"{', '.join(sorted(hot))} — the fixed range is clipping "
                "real structure; enable adaptive binning or widen "
                "feature_range"
            )
    if not lines:
        return "  (no stream range/drift events)"
    return "\n".join(lines)


def trace_table(summary: Dict[str, Any]) -> str:
    """Render one distributed trace's critical-path breakdown.

    Takes the dict from :func:`repro.obs.reqtrace.trace_summary`: per-hop
    self time (exclusive of children) plus the same time folded to the
    paper-§3 phase each hop implements. On a connected tree the self
    times sum to the root duration, so ``share`` columns add to 100%.
    """
    total = summary.get("total_s") or 0.0
    accounted = summary.get("accounted_s") or 0.0
    denom = accounted or 1.0
    lines = [
        f"  spans={summary.get('spans', 0)}  "
        f"connected={'yes' if summary.get('connected') else 'NO'}  "
        f"total={total * 1e3:.3f} ms  accounted={accounted * 1e3:.3f} ms",
    ]
    hops = summary.get("hops", {})
    if hops:
        width = max(len(h) for h in hops)
        lines.append(
            f"  {'hop':<{width}}  {'count':>5}  {'total ms':>9}  "
            f"{'self ms':>9}  {'share':>6}  status"
        )
        for name, hop in sorted(hops.items(), key=lambda kv: -kv[1]["self_s"]):
            status = hop.get("status", "ok")
            lines.append(
                f"  {name:<{width}}  {hop['count']:>5}  "
                f"{hop['total_s'] * 1e3:>9.3f}  {hop['self_s'] * 1e3:>9.3f}  "
                f"{hop['self_s'] / denom * 100:>5.1f}%  "
                f"{'' if status == 'ok' else '!' + status}"
            )
    phases = summary.get("phases", {})
    if phases:
        lines.append("  critical path by paper-§3 phase:")
        for phase, secs in sorted(phases.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"    {phase:<32}  {secs * 1e3:>9.3f} ms  "
                f"{secs / denom * 100:>5.1f}%"
            )
    return "\n".join(lines)


def run_obs_report(
    n_ranks: int = 3,
    n_frames: int = 160,
    chunk_size: int = 40,
    consolidate_every: int = 2,
    seed: int = 0,
    reduce_algo: str = "linear",
    as_json: bool = False,
    faults: str = None,
    checkpoint_dir: str = None,
    suspicion: float = None,
) -> str:
    """Run the instrumented demo workload and render the breakdowns.

    The run records into a fresh registry temporarily installed as the
    process default, so the report reflects only this workload (and never
    pollutes, or is polluted by, whatever else the process measured).

    ``faults`` takes a :meth:`~repro.comm.faults.FaultPlan.parse` spec
    (e.g. ``"kill:1@1"``); recovery is enabled automatically so the report
    shows the survivors' recovery counters. ``checkpoint_dir`` checkpoints
    every consolidation round (and resumes, if the directory already holds
    a complete round). ``suspicion`` (seconds) enables slow≠dead liveness
    probing below the hard receive timeout, so a ``slow:R:S`` fault plan
    shows up as straggler waits in the Overload section instead of a
    spurious recovery.
    """
    from repro.core.streaming import StreamingKeyBin2
    from repro.insitu.distributed import run_distributed_insitu
    from repro.proteins.encode import encode_frames
    from repro.proteins.trajectory import TrajectorySimulator

    n_residues = 24
    proto = TrajectorySimulator(n_residues, n_frames, 4, seed=50 + seed)
    targets = proto.simulate().phase_targets
    trajs = [
        TrajectorySimulator(
            n_residues, n_frames, 4, phase_targets=targets, seed=51 + seed + i
        ).simulate(name=f"traj{i}")
        for i in range(n_ranks)
    ]
    keybin = {"feature_range": (0.0, 6.0), "candidate_depths": (5, 6, 7, 8)}

    report_reg = ensure_core_series(MetricsRegistry())
    previous = set_default_registry(report_reg)
    try:
        results = run_distributed_insitu(
            trajs, chunk_size=chunk_size,
            consolidate_every=consolidate_every, seed=seed,
            reduce_algo=reduce_algo, faults=faults,
            recover=faults is not None, checkpoint_dir=checkpoint_dir,
            timeout=60.0 if faults is not None else 600.0,
            suspicion_timeout=suspicion,
            **keybin,
        )
    finally:
        set_default_registry(previous)
    survivors = [r for r in results if not isinstance(r, BaseException)]
    failed = [i for i, r in enumerate(results) if isinstance(r, BaseException)]
    if not survivors:
        raise RuntimeError("every rank failed; nothing to report")
    # Cost-model probe (instrumented into the restored registry, not the
    # report's): the flat histogram-delta buffer of an identically
    # configured model is the O(2·K·N_rp·B) wire term.
    probe = StreamingKeyBin2(seed=seed, **keybin)
    probe.partial_fit(encode_frames(trajs[0].angles)[:chunk_size])
    model_bytes = sum(
        st.hist[d].nbytes for st in probe._states for d in st.depths
    )

    if as_json:
        return json.dumps(
            {
                "workload": {
                    "ranks": n_ranks, "frames_per_rank": n_frames,
                    "chunk_size": chunk_size,
                    "consolidate_every": consolidate_every,
                    "reduce_algo": reduce_algo,
                    "model_hist_bytes_per_round": model_bytes,
                    "faults": faults,
                    "failed_ranks": failed,
                },
                **render_json(report_reg),
            },
            sort_keys=True,
        )

    total_sent = sum(r.traffic["bytes_sent"] for r in survivors)
    clusters = survivors[0].n_clusters
    out = [
        "obs-report — instrumented distributed in-situ run",
        f"  ranks={n_ranks}  frames/rank={n_frames}  chunk={chunk_size}  "
        f"consolidate_every={consolidate_every}  reduce={reduce_algo}  "
        f"clusters={clusters}",
        "",
        "Per-phase time (phase_seconds_total / phase_calls_total):",
        phase_table(report_reg),
        "",
        "Consolidation comm volume (insitu_consolidation_bytes_total):",
        comm_table(report_reg, model_bytes),
        "",
        "Fault recovery (insitu_recoveries_total / insitu_frames_lost_total):",
        recovery_table(report_reg),
        "",
        "Overload / stragglers (serve_shed_total / insitu_straggler_*):",
        overload_table(report_reg),
        "",
        "Fleet routing (fleet_routed_total / fleet_shard_spill_total):",
        fleet_table(report_reg),
        "",
        "Stream range/drift (stream_out_of_range_total / stream_drift_score):",
        stream_table(report_reg),
        "",
        f"  communicator total bytes sent (all ranks, incl. control): "
        f"{total_sent:,}",
    ]
    if failed:
        out.insert(
            2,
            f"  injected faults: {faults!r}  ->  failed ranks {failed}, "
            f"{len(survivors)} survivors",
        )
    return "\n".join(out)
