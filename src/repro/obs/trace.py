"""Span-based phase tracing on top of the metrics registry.

``trace.span("partition")`` opens a phase span; nested spans build a
``parent/child`` path via a :mod:`contextvars` variable, so the recorded
series mirror the paper's pipeline decomposition::

    with trace.span("partial_fit"):
        with trace.span("project"):   # records phase="partial_fit/project"
            ...

Every completed span adds one count to ``phase_calls_total{phase=...}``
and its duration to ``phase_seconds_total{phase=...}`` in the tracer's
registry (the process-global default unless one was injected). Mean phase
time is therefore always recoverable as ``seconds / calls`` — exactly the
per-phase breakdown ``python -m repro obs-report`` renders.

Context propagation: :mod:`contextvars` flows automatically into asyncio
tasks, but **not** into worker threads — a new thread starts from an empty
context. :meth:`PhaseTracer.propagate` re-roots the path explicitly, which
is how the micro-batcher flush path and the SPMD in-situ ranks attach
their spans under a meaningful root (``serve/...``, ``insitu/rank0/...``)
instead of losing their ancestry at the thread boundary.

When the registry is disabled, :meth:`PhaseTracer.span` hands back a
shared no-op span (``elapsed`` stays 0.0): no clock reads, no contextvar
writes — this is the hot-path guarantee the overhead benchmark pins.
"""

from __future__ import annotations

import contextvars
import time
from typing import Iterable, Optional, Tuple

from repro.obs.registry import MetricsRegistry, default_registry

# Wire-level trace context (cross-process request tracing) lives in
# repro.obs.reqtrace; re-exported here so the two tracing surfaces —
# in-process phase spans and on-the-wire request spans — share one
# import point.
from repro.obs.reqtrace import (  # noqa: F401  (re-exports)
    TraceContext,
    extract,
    get_tracer,
    inject,
)

__all__ = [
    "PhaseTracer",
    "Span",
    "TraceContext",
    "extract",
    "get_tracer",
    "inject",
    "trace",
]

_CALLS_HELP = "Completed phase spans, by slash-joined phase path."
_SECONDS_HELP = "Total seconds spent inside phase spans, by phase path."


class Span:
    """One live phase span (context manager). ``elapsed`` is set on exit."""

    __slots__ = ("_tracer", "name", "path", "elapsed", "_token", "_t0")

    def __init__(self, tracer: "PhaseTracer", name: str):
        self._tracer = tracer
        self.name = name
        self.path: Tuple[str, ...] = ()
        self.elapsed = 0.0
        self._token = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        var = self._tracer._path
        self.path = var.get() + (self.name,)
        self._token = var.set(self.path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._tracer._path.reset(self._token)
        self._tracer._record(self.path, self.elapsed)


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    path: Tuple[str, ...] = ()
    elapsed = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class PhaseTracer:
    """Factory for phase spans bound to one metrics registry.

    Parameters
    ----------
    registry:
        Where spans record. ``None`` (the default, and what the module
        level :data:`trace` uses) resolves to :func:`default_registry`
        at record time, so swapping or disabling the global registry
        takes effect immediately.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._registry = registry
        self._path: contextvars.ContextVar[Tuple[str, ...]] = contextvars.ContextVar(
            "repro_obs_phase_path", default=()
        )

    def _reg(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else default_registry()

    def span(self, name: str) -> Span:
        """A context manager timing one phase; no-op while disabled."""
        if not self._reg().enabled:
            return _NOOP_SPAN  # type: ignore[return-value]
        return Span(self, name)

    def current_path(self) -> Tuple[str, ...]:
        """The active span path in this context (empty at top level)."""
        return self._path.get()

    def propagate(self, path: Iterable[str]) -> "_Propagation":
        """Re-root the span path — for worker threads and SPMD ranks.

        ``contextvars`` do not cross thread boundaries; a worker that
        should attribute its spans under a logical parent re-enters it::

            with trace.propagate(("insitu", f"rank{rank}")):
                ...  # spans here record as insitu/rankN/...
        """
        return _Propagation(self, tuple(str(p) for p in path))

    def _record(self, path: Tuple[str, ...], elapsed: float) -> None:
        reg = self._reg()
        if not reg.enabled:
            return
        phase = "/".join(path)
        reg.counter("phase_calls_total", _CALLS_HELP, ("phase",)).labels(
            phase=phase
        ).inc()
        reg.counter("phase_seconds_total", _SECONDS_HELP, ("phase",)).labels(
            phase=phase
        ).inc(elapsed)


class _Propagation:
    """Context manager installing an explicit span path."""

    __slots__ = ("_tracer", "_path", "_token")

    def __init__(self, tracer: PhaseTracer, path: Tuple[str, ...]):
        self._tracer = tracer
        self._path = path
        self._token = None

    def __enter__(self) -> "_Propagation":
        self._token = self._tracer._path.set(self._path)
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._path.reset(self._token)


#: Process-global tracer; records into :func:`default_registry`.
trace = PhaseTracer()
