"""Render metrics registries as Prometheus text and JSON.

Two surfaces consume this module:

* the ``{"op": "metrics"}`` RPC on :class:`repro.serve.server.ModelServer`
  returns both forms in one response (Prometheus text for scrapers, JSON
  for humans and the smoke tests), and
* the periodic :class:`repro.obs.logger.SnapshotLogger` writes the JSON
  form one line per interval for long in-situ runs.

Multiple registries render into one payload (the server merges its
per-instance serve registry with the process-global default that holds
phase spans and comm counters); families are de-duplicated by name with
samples concatenated.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.registry import MetricsRegistry, default_registry

__all__ = ["ensure_core_series", "render_families", "render_json",
           "render_prometheus"]


def _as_registries(
    registries: Union[MetricsRegistry, Sequence[MetricsRegistry], None]
) -> List[MetricsRegistry]:
    if registries is None:
        return [default_registry()]
    if isinstance(registries, MetricsRegistry):
        return [registries]
    out: List[MetricsRegistry] = []
    for reg in registries:  # de-dupe by identity, preserve order
        if all(reg is not seen for seen in out):
            out.append(reg)
    return out


def _merged_families(registries: List[MetricsRegistry]) -> List[Dict[str, Any]]:
    merged: Dict[str, Dict[str, Any]] = {}
    for reg in registries:
        for fam in reg.collect():
            seen = merged.get(fam["name"])
            if seen is None:
                merged[fam["name"]] = fam
            else:
                seen["samples"].extend(fam["samples"])
    return list(merged.values())


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # Per the text-format spec, HELP lines escape backslash and newline
    # (but not quotes — those are only special inside label values).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Dict[str, str], extra: Dict[str, str] = {}) -> str:
    pairs = {**labels, **extra}
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs.items())
    return "{" + body + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_families(families: Iterable[Dict[str, Any]]) -> str:
    """Prometheus text exposition (0.0.4) from collected family dicts.

    The shared renderer behind :func:`render_prometheus` (local
    registries) and the fleet :class:`~repro.obs.collector.MetricsCollector`
    (families merged across scraped replicas, with an ``instance``
    label). Histogram samples emit cumulative ``le`` buckets ending in
    ``+Inf`` plus ``_sum``/``_count``; label values and HELP text are
    escaped per the spec.
    """
    lines: List[str] = []
    for fam in families:
        name = fam["name"]
        if fam["help"]:
            lines.append(f"# HELP {name} {_escape_help(str(fam['help']))}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for sample in fam["samples"]:
            labels = sample["labels"]
            if fam["type"] == "histogram":
                for bound, cum in sample["buckets"].items():
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, {'le': bound})} {cum}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def render_prometheus(
    registries: Union[MetricsRegistry, Sequence[MetricsRegistry], None] = None,
) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    return render_families(_merged_families(_as_registries(registries)))


def render_json(
    registries: Union[MetricsRegistry, Sequence[MetricsRegistry], None] = None,
) -> Dict[str, Any]:
    """JSON form: ``{"families": {name: {type, help, samples}}}``."""
    families = {
        fam["name"]: {
            "type": fam["type"],
            "help": fam["help"],
            "samples": fam["samples"],
        }
        for fam in _merged_families(_as_registries(registries))
    }
    return {"families": families}


def ensure_core_series(registry: MetricsRegistry = None) -> MetricsRegistry:
    """Pre-register the canonical cross-layer families.

    Called before exposition so every scrape contains the core series —
    phase spans, in-situ comm volume, kernel launches — even in a process
    that has not exercised those paths yet (families render their HELP and
    TYPE lines at zero samples, which is how Prometheus expects series to
    be declared up front).
    """
    reg = registry if registry is not None else default_registry()
    reg.counter(
        "phase_calls_total",
        "Completed phase spans, by slash-joined phase path.",
        ("phase",),
    )
    reg.counter(
        "phase_seconds_total",
        "Total seconds spent inside phase spans, by phase path.",
        ("phase",),
    )
    reg.counter(
        "insitu_consolidation_rounds_total",
        "Distributed delta-merge rounds completed, per rank and reduce algo.",
        ("rank", "algo"),
    )
    reg.counter(
        "insitu_consolidation_bytes_total",
        "Delta bytes this rank put on the wire per consolidation payload "
        "kind (hist = flat histogram delta, keys = sparse key-cell delta, "
        "seen = points-seen scalar).",
        ("kind", "rank", "algo"),
    )
    reg.counter(
        "insitu_consolidation_cells_folded_total",
        "Peer key-cells folded into the merged table, per rank.",
        ("rank",),
    )
    reg.counter(
        "insitu_consolidation_evictions_total",
        "Key-cells evicted by capacity during delta merges, per rank.",
        ("rank",),
    )
    reg.counter(
        "insitu_recoveries_total",
        "Rank-failure recoveries this rank survived (agreement + "
        "communicator shrink + ledger rollback + re-merge).",
        ("rank",),
    )
    reg.counter(
        "insitu_frames_lost_total",
        "Frames of already-merged mass dropped with lost ranks, as "
        "observed by this surviving rank.",
        ("rank",),
    )
    reg.counter(
        "serve_client_retries_total",
        "Idempotent serve-client requests retried after a connection "
        "failure, by operation and failure kind.",
        ("op", "reason"),
    )
    reg.counter(
        "kernel_launches_total",
        "KernelEngine block launches, by kernel name.",
        ("kernel",),
    )
    reg.counter(
        "stream_points_total",
        "Points accumulated by StreamingKeyBin2.partial_fit.",
    )
    reg.counter(
        "stream_refreshes_total",
        "StreamingKeyBin2.refresh consolidations performed.",
    )
    return reg
