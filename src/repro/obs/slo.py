"""SLO rules with multi-window burn-rate alerting over collected series.

The fleet :class:`~repro.obs.collector.MetricsCollector` folds every
replica's scrape into a :class:`SeriesStore`; this module turns those
series into *alerts* using the multi-window, multi-burn-rate pattern:
an :class:`SLORule` fires only when the error budget is burning at
``burn_factor``× the sustainable rate over **both** a long window (so a
brief blip cannot page) and a short window (so a recovered incident
stops paging immediately). Three rule kinds cover the serving SLOs this
repo cares about:

``availability``
    ``serve_errors_total / serve_requests_total`` against an objective
    like 0.999 — the burn is the window error ratio divided by the
    error budget ``1 − objective``.
``shed_rate``
    ``serve_shed_total / (serve_requests_total + serve_shed_total)``
    against a tolerable shed fraction; sustained overload fires this
    long before availability moves, because sheds are rejected *before*
    they can fail.
``latency_p99``
    p99 interpolated from ``serve_request_seconds`` bucket deltas over
    the window, against a threshold in seconds.
``drift_score``
    The worst ``stream_drift_score`` gauge (max over projections and
    over the window) against the drift SLO threshold — sustained
    distribution drift that the automatic re-projection response is not
    absorbing fires this before stale cluster models degrade answers.

Rules are evaluated per instance (one replica = one failure domain) —
a fleet-wide rollup would let one sick replica hide behind N−1 healthy
ones.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ValidationError

__all__ = ["Alert", "SeriesStore", "SLOEvaluator", "SLORule", "Window",
           "default_rules"]

LabelItems = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Dict[str, Any]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class SeriesStore:
    """Labeled time-series ring buffers: ``(instance, name, labels) → ring``.

    Each ring holds ``(ts, value)`` pairs, newest last, bounded at
    ``capacity`` points — at the collector's default 2 s pull interval
    the default capacity keeps ~17 minutes of history, comfortably more
    than the longest default SLO window. Histogram families are stored
    exploded: one ring per ``le`` bucket (cumulative count) plus
    ``_sum``/``_count`` rings, which is exactly the shape the burn-rate
    math and the p99 interpolation need.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 2:
            raise ValidationError("SeriesStore capacity must be >= 2")
        self.capacity = int(capacity)
        self._series: Dict[Tuple[str, str, LabelItems], deque] = {}
        self._lock = threading.Lock()

    # -- ingest ---------------------------------------------------------------

    def record(self, instance: str, name: str,
               labels: Optional[Dict[str, Any]], value: float,
               ts: float) -> None:
        key = (str(instance), str(name), _labels_key(labels))
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = self._series[key] = deque(maxlen=self.capacity)
            ring.append((float(ts), float(value)))

    def ingest_families(self, instance: str,
                        families: Dict[str, Any], ts: float) -> None:
        """Fold one scrape's ``render_json`` families into the store."""
        for name, fam in families.items():
            ftype = fam.get("type")
            for sample in fam.get("samples", ()):
                labels = sample.get("labels") or {}
                if ftype == "histogram":
                    for bound, cum in (sample.get("buckets") or {}).items():
                        self.record(instance, f"{name}_bucket",
                                    {**labels, "le": bound}, cum, ts)
                    self.record(instance, f"{name}_sum", labels,
                                sample.get("sum", 0.0), ts)
                    self.record(instance, f"{name}_count", labels,
                                sample.get("count", 0), ts)
                else:
                    self.record(instance, name, labels,
                                sample.get("value", 0.0), ts)

    # -- reads ----------------------------------------------------------------

    def instances(self) -> List[str]:
        with self._lock:
            return sorted({key[0] for key in self._series})

    def label_sets(self, instance: str, name: str) -> List[LabelItems]:
        with self._lock:
            return [key[2] for key in self._series
                    if key[0] == instance and key[1] == name]

    def latest(self, instance: str, name: str,
               labels: Optional[Dict[str, Any]] = None) -> Optional[float]:
        key = (str(instance), str(name), _labels_key(labels))
        with self._lock:
            ring = self._series.get(key)
            return ring[-1][1] if ring else None

    def _ring(self, instance: str, name: str,
              labels_key: LabelItems) -> List[Tuple[float, float]]:
        with self._lock:
            ring = self._series.get((str(instance), str(name), labels_key))
            return list(ring) if ring else []

    def delta(self, instance: str, name: str,
              labels: Optional[Dict[str, Any]], window_s: float,
              now: Optional[float] = None) -> float:
        """Cumulative-counter increase over the trailing window.

        Uses the newest point at or before ``now − window_s`` as the
        baseline (the sample *straddling* the window edge, so short
        windows on a slow scrape cadence never read as empty) and clamps
        at zero across counter resets (replica restart).
        """
        return self._delta_ring(
            self._ring(instance, name, _labels_key(labels)), window_s, now
        )

    @staticmethod
    def _delta_ring(points: List[Tuple[float, float]], window_s: float,
                    now: Optional[float]) -> float:
        if len(points) < 2:
            return 0.0
        now = points[-1][0] if now is None else float(now)
        edge = now - float(window_s)
        base = points[0][1]
        for ts, value in points:
            if ts > edge:
                break
            base = value
        return max(0.0, points[-1][1] - base)

    def sum_delta(self, instance: str, name: str, window_s: float,
                  now: Optional[float] = None) -> float:
        """Window delta summed across every label set of a family."""
        return sum(
            self._delta_ring(self._ring(instance, name, key), window_s, now)
            for key in self.label_sets(instance, name)
        )

    def window_max(self, instance: str, name: str, window_s: float,
                   now: Optional[float] = None) -> Optional[float]:
        """Max gauge value across every label set over the trailing window.

        Like :meth:`delta`, the newest sample at or before the window
        edge participates (a gauge's value is in effect until the next
        sample), so a slow scrape cadence never reads as "no data".
        Returns ``None`` when the family has no samples at all.
        """
        best: Optional[float] = None
        for key in self.label_sets(instance, name):
            points = self._ring(instance, name, key)
            if not points:
                continue
            now_v = points[-1][0] if now is None else float(now)
            edge = now_v - float(window_s)
            straddle: Optional[float] = None
            ring_best: Optional[float] = None
            for ts, value in points:
                if ts <= edge:
                    straddle = value
                elif ring_best is None or value > ring_best:
                    ring_best = value
            if ring_best is None:
                ring_best = straddle
            if ring_best is not None and (best is None or ring_best > best):
                best = ring_best
        return best

    def quantile(self, instance: str, name: str, q: float, window_s: float,
                 now: Optional[float] = None) -> Optional[float]:
        """Quantile from histogram bucket deltas over the window.

        Linear interpolation within the winning bucket, the standard
        Prometheus ``histogram_quantile`` estimate. Returns ``None``
        when the window saw no observations.
        """
        buckets: List[Tuple[float, float]] = []
        for key in self.label_sets(instance, f"{name}_bucket"):
            labels = dict(key)
            le = labels.get("le")
            if le is None:
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            delta = self._delta_ring(
                self._ring(instance, f"{name}_bucket", key), window_s, now
            )
            buckets.append((bound, delta))
        buckets.sort(key=lambda item: item[0])
        if not buckets or buckets[-1][1] <= 0:
            return None
        total = buckets[-1][1]
        rank = q * total
        prev_bound, prev_cum = 0.0, 0.0
        for bound, cum in buckets:
            if cum >= rank:
                if bound == float("inf"):
                    return prev_bound
                span = cum - prev_cum
                frac = (rank - prev_cum) / span if span > 0 else 1.0
                return prev_bound + frac * (bound - prev_bound)
            prev_bound, prev_cum = bound, cum
        return buckets[-1][0] if buckets[-1][0] != float("inf") else prev_bound


@dataclass(frozen=True)
class Window:
    """One (long, short) burn-rate window pair.

    The alert fires when the burn rate meets ``burn_factor`` over *both*
    windows — the long one for significance, the short one so the alert
    clears promptly once the incident ends.
    """

    long_s: float
    short_s: float
    burn_factor: float
    severity: str = "page"

    def __post_init__(self):
        if self.long_s <= 0 or self.short_s <= 0 or self.short_s > self.long_s:
            raise ValidationError("need 0 < short_s <= long_s")
        if self.burn_factor <= 0:
            raise ValidationError("burn_factor must be > 0")


@dataclass(frozen=True)
class SLORule:
    """One SLO: a kind, an objective, and its burn windows."""

    name: str
    kind: str  # availability | shed_rate | latency_p99
    objective: float
    windows: Tuple[Window, ...] = (
        Window(300.0, 60.0, 4.0, "page"),
        Window(1800.0, 300.0, 2.0, "ticket"),
    )

    def __post_init__(self):
        if self.kind not in (
            "availability", "shed_rate", "latency_p99", "drift_score"
        ):
            raise ValidationError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "availability" and not 0 < self.objective < 1:
            raise ValidationError("availability objective must be in (0, 1)")
        if self.kind == "shed_rate" and not 0 < self.objective < 1:
            raise ValidationError("shed_rate objective must be in (0, 1)")
        if self.kind == "latency_p99" and self.objective <= 0:
            raise ValidationError("latency_p99 objective must be > 0 seconds")
        if self.kind == "drift_score" and not 0 < self.objective <= 1:
            raise ValidationError(
                "drift_score objective must be in (0, 1] (TV is bounded by 1)"
            )


@dataclass(frozen=True)
class Alert:
    """A firing SLO rule on one instance (both windows over budget)."""

    rule: str
    kind: str
    instance: str
    severity: str
    burn: float          # burn rate over the long window
    burn_short: float
    window_s: float
    value: float         # the raw windowed measurement (ratio or seconds)
    at: float = field(compare=False, default=0.0)

    def describe(self) -> str:
        unit = "s" if self.kind == "latency_p99" else ""
        return (
            f"[{self.severity}] {self.rule} on {self.instance}: "
            f"burn {self.burn:.1f}x over {self.window_s:.0f}s "
            f"(short {self.burn_short:.1f}x, value {self.value:.4g}{unit})"
        )


def default_rules() -> Tuple[SLORule, ...]:
    """The stock serving SLOs the collector evaluates out of the box."""
    return (
        SLORule("availability", "availability", 0.999),
        SLORule("shed_rate", "shed_rate", 0.05),
        SLORule("latency_p99", "latency_p99", 0.25,
                windows=(Window(300.0, 60.0, 1.0, "page"),)),
        # TV is bounded by 1, so drift burns at factor 1 against the
        # threshold itself: both windows over the objective means the
        # drift response is not keeping up, not just one noisy window.
        SLORule("drift_score", "drift_score", 0.25,
                windows=(Window(300.0, 60.0, 1.0, "ticket"),)),
    )


class SLOEvaluator:
    """Evaluate :class:`SLORule` burn rates against a :class:`SeriesStore`."""

    def __init__(self, rules: Optional[Iterable[SLORule]] = None):
        self.rules: Tuple[SLORule, ...] = (
            tuple(rules) if rules is not None else default_rules()
        )

    def evaluate(self, store: SeriesStore,
                 now: Optional[float] = None) -> List[Alert]:
        now = time.time() if now is None else float(now)
        alerts: List[Alert] = []
        for instance in store.instances():
            for rule in self.rules:
                alerts.extend(self._eval_rule(store, instance, rule, now))
        return alerts

    def _eval_rule(self, store: SeriesStore, instance: str, rule: SLORule,
                   now: float) -> List[Alert]:
        out: List[Alert] = []
        for window in rule.windows:
            burn_long, value = self._burn(
                store, instance, rule, window.long_s, now
            )
            if burn_long is None or burn_long < window.burn_factor:
                continue
            burn_short, _ = self._burn(
                store, instance, rule, window.short_s, now
            )
            if burn_short is None or burn_short < window.burn_factor:
                continue
            out.append(Alert(
                rule=rule.name, kind=rule.kind, instance=instance,
                severity=window.severity, burn=burn_long,
                burn_short=burn_short, window_s=window.long_s,
                value=value, at=now,
            ))
            break  # report the most urgent window only
        return out

    @staticmethod
    def _burn(store: SeriesStore, instance: str, rule: SLORule,
              window_s: float, now: float):
        """(burn rate, measured value) over one window, or ``(None, _)``."""
        if rule.kind == "availability":
            requests = store.delta(
                instance, "serve_requests_total", None, window_s, now
            )
            errors = store.delta(
                instance, "serve_errors_total", None, window_s, now
            )
            if requests + errors <= 0:
                return None, 0.0
            ratio = errors / (requests + errors)
            return ratio / (1.0 - rule.objective), ratio
        if rule.kind == "shed_rate":
            requests = store.delta(
                instance, "serve_requests_total", None, window_s, now
            )
            sheds = store.sum_delta(
                instance, "serve_shed_total", window_s, now
            )
            if requests + sheds <= 0:
                return None, 0.0
            ratio = sheds / (requests + sheds)
            return ratio / rule.objective, ratio
        if rule.kind == "drift_score":
            score = store.window_max(
                instance, "stream_drift_score", window_s, now
            )
            if score is None:
                return None, 0.0
            return score / rule.objective, score
        # latency_p99
        p99 = store.quantile(
            instance, "serve_request_seconds", 0.99, window_s, now
        )
        if p99 is None:
            return None, 0.0
        return p99 / rule.objective, p99
