"""Fleet-wide metrics collector: pull, fold, alert, re-expose.

The serving tier exposes per-process metrics (each replica's
``{"op": "metrics"}`` RPC; each SPMD rank's
:class:`~repro.obs.logger.SnapshotLogger` JSONL file). This module adds
the one piece a fleet needs on top — a single place where those
snapshots meet:

* :class:`MetricsCollector` periodically pulls every configured target
  (replicas and routers over the wire, rank snapshot files from disk),
  folding each scrape into labeled time-series ring buffers
  (:class:`~repro.obs.slo.SeriesStore`) keyed by instance;
* every cycle it evaluates the configured
  :class:`~repro.obs.slo.SLORule` burn-rate alerts per instance;
* it serves one **merged** endpoint speaking the same newline-JSON
  protocol as everything else in this repo (``metrics`` → Prometheus
  text + JSON with an ``instance`` label on every sample, ``alerts``,
  ``healthz``), which is what the live dashboard and CI scrape.

Per the coordinator-model discipline the fleet router already follows,
the collector centralizes only *aggregates* — counters, gauges,
histogram buckets — never request payloads or per-point model state; its
per-cycle cost is O(instances × series), independent of traffic volume.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.exposition import render_families
from repro.obs.slo import Alert, SeriesStore, SLOEvaluator, SLORule

__all__ = ["CollectorHandle", "MetricsCollector", "collector_in_thread"]

#: Families the collector itself is the source of (they carry scrape
#: health; everything else is relayed from the targets).
_UP_HELP = "1 if the last pull of this instance succeeded, else 0."


class MetricsCollector:
    """Pull-based fleet metrics aggregation + SLO evaluation.

    Parameters
    ----------
    targets:
        ``[(instance_id, host, port), ...]`` — replicas and/or routers
        whose ``{"op": "metrics"}`` RPC to pull. Typically built from
        :meth:`ReplicaSupervisor.endpoints`.
    snapshot_files:
        ``[(instance_id, path), ...]`` JSONL files written by
        :class:`~repro.obs.logger.SnapshotLogger` (SPMD ranks, in-situ
        runs). The newest line of each file is folded in per cycle, so
        ranks participate in the same store without opening a port.
    interval_s:
        Pull cadence. The loop sleeps to tick *boundaries* (same
        discipline as the snapshot logger), so a slow scrape cannot
        drift the cadence.
    rules:
        SLO rules to evaluate each cycle (default:
        :func:`~repro.obs.slo.default_rules`).
    timeout_s:
        Per-target socket budget; a wedged replica costs one timeout,
        never the whole cycle.
    """

    def __init__(
        self,
        targets: Sequence[Tuple[str, str, int]] = (),
        snapshot_files: Sequence[Tuple[str, str]] = (),
        interval_s: float = 2.0,
        rules: Optional[Sequence[SLORule]] = None,
        timeout_s: float = 2.0,
        history: int = 512,
    ):
        if interval_s <= 0:
            raise ValidationError("interval_s must be > 0")
        if not targets and not snapshot_files:
            raise ValidationError("collector needs at least one target")
        self.targets = [(str(i), str(h), int(p)) for i, h, p in targets]
        ids = [i for i, _, _ in self.targets]
        self.snapshot_files = [(str(i), str(p)) for i, p in snapshot_files]
        ids += [i for i, _ in self.snapshot_files]
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate collector instance ids")
        self.interval_s = float(interval_s)
        self.timeout_s = float(timeout_s)
        self.store = SeriesStore(capacity=history)
        self.evaluator = SLOEvaluator(rules)
        self.up: Dict[str, bool] = {}
        self.last_families: Dict[str, Dict[str, Any]] = {}
        self.last_pull_ts: Dict[str, float] = {}
        self.alerts: List[Alert] = []
        self.cycles = 0
        self.scrape_failures = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- pulling ---------------------------------------------------------------

    def _pull_wire(self, host: str, port: int) -> Dict[str, Any]:
        with socket.create_connection((host, port),
                                      timeout=self.timeout_s) as sock:
            sock.settimeout(self.timeout_s)
            fh = sock.makefile("rwb")
            fh.write(b'{"op": "metrics"}\n')
            fh.flush()
            line = fh.readline()
        if not line or not line.endswith(b"\n"):
            raise OSError("metrics response truncated")
        response = json.loads(line)
        if not response.get("ok"):
            raise OSError(f"metrics RPC failed: {response.get('error')}")
        return response["metrics"]["families"]

    @staticmethod
    def _pull_snapshot(path: str) -> Dict[str, Any]:
        """Newest families line of a SnapshotLogger JSONL file.

        Reads a bounded tail of the file (snapshots are append-only and
        self-contained), so cost does not grow with run length.
        """
        with open(path, "rb") as fh:
            try:
                fh.seek(-65536, os.SEEK_END)
            except OSError:
                fh.seek(0)
            tail = fh.read().splitlines()
        for raw in reversed(tail):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue  # torn final line mid-write
            if isinstance(record, dict) and "families" in record:
                return record["families"]
        raise OSError(f"no snapshot line in {path}")

    def poll_once(self, now: Optional[float] = None) -> List[Alert]:
        """One full cycle: pull every target, fold, evaluate alerts."""
        now = time.time() if now is None else float(now)
        for instance, host, port in self.targets:
            try:
                families = self._pull_wire(host, port)
            except (OSError, ValueError, KeyError):
                self._mark(instance, False, now)
                continue
            self._fold(instance, families, now)
        for instance, path in self.snapshot_files:
            try:
                families = self._pull_snapshot(path)
            except (OSError, ValueError):
                self._mark(instance, False, now)
                continue
            self._fold(instance, families, now)
        alerts = self.evaluator.evaluate(self.store, now)
        with self._lock:
            self.alerts = alerts
            self.cycles += 1
        return alerts

    def _fold(self, instance: str, families: Dict[str, Any],
              now: float) -> None:
        self.store.ingest_families(instance, families, now)
        with self._lock:
            self.last_families[instance] = families
            self.last_pull_ts[instance] = now
            self.up[instance] = True

    def _mark(self, instance: str, ok: bool, now: float) -> None:
        with self._lock:
            self.up[instance] = ok
            if not ok:
                self.scrape_failures += 1
        self.store.record(instance, "collector_up", None, 1.0 if ok else 0.0,
                          now)

    # -- background loop -------------------------------------------------------

    def start(self) -> "MetricsCollector":
        if self._thread is not None:
            raise ValidationError("collector already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-collector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "MetricsCollector":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        # Tick-boundary scheduling, same as SnapshotLogger._run: a slow
        # pull skips ticks instead of stretching the cadence.
        self.poll_once()
        t0 = time.monotonic()
        tick = 0
        while True:
            now = time.monotonic()
            tick = max(tick + 1, int((now - t0) / self.interval_s) + 1)
            next_tick = t0 + tick * self.interval_s
            if self._stop.wait(max(0.0, next_tick - now)):
                return
            self.poll_once()

    # -- merged exposition -----------------------------------------------------

    def merged_families(self) -> List[Dict[str, Any]]:
        """All instances' families, with ``instance`` stamped on samples.

        The merge is by family name across instances (one HELP/TYPE
        block, samples concatenated), which is what one Prometheus
        scrape of the collector expects to see.
        """
        with self._lock:
            snapshot = {
                inst: fams for inst, fams in self.last_families.items()
            }
            up = dict(self.up)
        merged: Dict[str, Dict[str, Any]] = {}
        for inst in sorted(snapshot):
            for name, fam in sorted(snapshot[inst].items()):
                out = merged.setdefault(name, {
                    "name": name, "type": fam.get("type", "gauge"),
                    "help": fam.get("help", ""), "samples": [],
                })
                for sample in fam.get("samples", ()):
                    stamped = dict(sample)
                    stamped["labels"] = {
                        **(sample.get("labels") or {}), "instance": inst,
                    }
                    out["samples"].append(stamped)
        up_family = {
            "name": "collector_instance_up", "type": "gauge",
            "help": _UP_HELP,
            "samples": [
                {"labels": {"instance": inst}, "value": 1.0 if ok else 0.0}
                for inst, ok in sorted(up.items())
            ],
        }
        return [up_family] + list(merged.values())

    def render_prometheus(self) -> str:
        return render_families(self.merged_families())

    def alerts_payload(self) -> Dict[str, Any]:
        with self._lock:
            alerts = list(self.alerts)
        return {
            "ok": True,
            "firing": len(alerts),
            "alerts": [
                {
                    "rule": a.rule, "kind": a.kind, "instance": a.instance,
                    "severity": a.severity, "burn": round(a.burn, 3),
                    "burn_short": round(a.burn_short, 3),
                    "window_s": a.window_s, "value": a.value, "at": a.at,
                    "summary": a.describe(),
                }
                for a in alerts
            ],
        }

    # -- per-instance rollups (the dashboard's data source) --------------------

    def instance_summary(self, instance: str,
                         window_s: float = 10.0,
                         now: Optional[float] = None) -> Dict[str, Any]:
        """Live operating point of one instance, derived from the store."""
        store = self.store
        now = time.time() if now is None else float(now)
        requests = store.delta(instance, "serve_requests_total", None,
                               window_s, now)
        sheds = store.sum_delta(instance, "serve_shed_total", window_s, now)
        p99 = store.quantile(instance, "serve_request_seconds", 0.99,
                             window_s, now)
        circuit = store.latest(instance, "serve_circuit_state")
        with self._lock:
            up = self.up.get(instance, False)
        return {
            "instance": instance,
            "up": up,
            "qps": requests / window_s,
            "shed_per_s": sheds / window_s,
            "shed_rate": sheds / (requests + sheds)
            if (requests + sheds) > 0 else 0.0,
            "queue_depth": store.latest(instance, "serve_queue_depth"),
            "in_flight": store.latest(instance, "serve_in_flight"),
            "p99_ms": None if p99 is None else p99 * 1e3,
            "cache_hit_rate": store.latest(instance, "serve_cache_hit_rate"),
            "circuit": {0: "closed", 1: "half-open", 2: "open"}.get(
                None if circuit is None else int(circuit)
            ),
        }

    def summaries(self, window_s: float = 10.0,
                  now: Optional[float] = None) -> List[Dict[str, Any]]:
        seen = set()
        out = []
        for instance, _, _ in self.targets:
            seen.add(instance)
            out.append(self.instance_summary(instance, window_s, now))
        for instance, _ in self.snapshot_files:
            if instance not in seen:
                out.append(self.instance_summary(instance, window_s, now))
        return out


class _CollectorRPC(socketserver.StreamRequestHandler):
    """Newline-JSON endpoint: metrics / alerts / healthz over one socket."""

    def handle(self) -> None:
        collector: MetricsCollector = self.server.collector  # type: ignore
        while True:
            line = self.rfile.readline()
            if not line or not line.endswith(b"\n"):
                return
            try:
                request = json.loads(line)
                op = request.get("op") if isinstance(request, dict) else None
            except json.JSONDecodeError:
                op = None
            if op == "metrics":
                payload: Dict[str, Any] = {
                    "ok": True,
                    "prometheus": collector.render_prometheus(),
                    "metrics": {
                        "families": {
                            fam["name"]: {
                                "type": fam["type"], "help": fam["help"],
                                "samples": fam["samples"],
                            }
                            for fam in collector.merged_families()
                        }
                    },
                }
            elif op == "alerts":
                payload = collector.alerts_payload()
            elif op == "healthz":
                with collector._lock:
                    up = dict(collector.up)
                payload = {
                    "ok": True, "role": "metrics-collector",
                    "cycles": collector.cycles,
                    "instances": {i: bool(v) for i, v in sorted(up.items())},
                }
            else:
                payload = {"ok": False,
                           "error": f"unknown collector op {op!r}"}
            self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
            self.wfile.flush()


class CollectorHandle:
    """A running collector + its RPC endpoint (context manager)."""

    def __init__(self, collector: MetricsCollector,
                 server: socketserver.ThreadingTCPServer,
                 thread: threading.Thread):
        self.collector = collector
        self._server = server
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def stop(self, timeout: float = 10.0) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout)
        self.collector.stop(timeout)

    def __enter__(self) -> "CollectorHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def collector_in_thread(collector: MetricsCollector, host: str = "127.0.0.1",
                        port: int = 0) -> CollectorHandle:
    """Start the pull loop and the merged RPC endpoint on daemon threads."""

    class _Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    server = _Server((host, port), _CollectorRPC)
    server.collector = collector  # type: ignore[attr-defined]
    collector.start()
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-obs-collector-rpc", daemon=True)
    thread.start()
    return CollectorHandle(collector, server, thread)
