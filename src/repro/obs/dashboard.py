"""Live plain-refresh terminal dashboard over the fleet collector.

No curses, no dependencies: each refresh clears the screen with the
standard ANSI sequence and reprints one table — per-replica QPS, queue
depth, outstanding requests, p99 latency, cache hit rate, circuit
breaker state — plus whatever SLO burn-rate alerts are firing. A
``--once`` render (no clear, single frame) is what CI uses to prove the
pipeline end to end.

The dashboard reads only the :class:`~repro.obs.collector.MetricsCollector`
in front of it; it never talks to replicas directly, so pointing it at a
fleet costs the fleet exactly the collector's pull load, no matter how
many terminals are watching.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, IO, List, Optional

from repro.obs.collector import MetricsCollector

__all__ = ["render_dashboard", "run_dashboard"]

_CLEAR = "\x1b[2J\x1b[H"

_COLUMNS = (
    ("instance", 12), ("up", 4), ("qps", 8), ("shed/s", 8),
    ("queue", 7), ("inflight", 8), ("p99 ms", 9), ("cache%", 7),
    ("circuit", 9),
)


def _fmt(value: Any, width: int) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, bool):
        text = "UP" if value else "DOWN"
    elif isinstance(value, float):
        text = f"{value:.1f}"
    else:
        text = str(value)
    return text[:width].rjust(width)


def _row(summary: Dict[str, Any]) -> str:
    cache = summary.get("cache_hit_rate")
    cells = (
        summary["instance"], summary["up"], summary["qps"],
        summary["shed_per_s"], summary["queue_depth"], summary["in_flight"],
        summary["p99_ms"],
        None if cache is None else cache * 100.0,
        summary["circuit"],
    )
    return " ".join(
        _fmt(value, width) for value, (_, width) in zip(cells, _COLUMNS)
    )


def render_dashboard(collector: MetricsCollector, window_s: float = 10.0,
                     now: Optional[float] = None) -> str:
    """One dashboard frame as a plain string (no ANSI codes)."""
    now = time.time() if now is None else float(now)
    header = " ".join(name.rjust(width) for name, width in _COLUMNS)
    lines: List[str] = [
        f"fleet dashboard  {time.strftime('%H:%M:%S', time.localtime(now))}"
        f"  cycles={collector.cycles}  window={window_s:.0f}s",
        header,
        "-" * len(header),
    ]
    for summary in collector.summaries(window_s=window_s, now=now):
        lines.append(_row(summary))
    alerts = collector.alerts_payload()["alerts"]
    lines.append("")
    if alerts:
        lines.append(f"ALERTS FIRING ({len(alerts)}):")
        lines.extend(f"  {alert['summary']}" for alert in alerts)
    else:
        lines.append("alerts: none firing")
    return "\n".join(lines)


def run_dashboard(collector: MetricsCollector, interval_s: float = 1.0,
                  once: bool = False, window_s: float = 10.0,
                  out: Optional[IO[str]] = None,
                  max_frames: Optional[int] = None) -> int:
    """Refresh loop (Ctrl-C to exit); ``once=True`` prints a single frame.

    Returns the number of frames rendered, which is what the CI render
    check asserts on.
    """
    out = sys.stdout if out is None else out
    frames = 0
    try:
        while True:
            frame = render_dashboard(collector, window_s=window_s)
            if once:
                out.write(frame + "\n")
            else:
                out.write(_CLEAR + frame + "\n")
            out.flush()
            frames += 1
            if once or (max_frames is not None and frames >= max_frames):
                return frames
            time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return frames
