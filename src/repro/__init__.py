"""KeyBin2: distributed key-based clustering for scalable and in-situ analysis.

Reproduction of Chen, Peterson, Benson, Taufer & Estrada,
*KeyBin2: Distributed Clustering for Scalable and In-Situ Analysis*,
ICPP 2018.

Quickstart
----------
>>> from repro import KeyBin2
>>> from repro.data import gaussian_mixture
>>> X, y = gaussian_mixture(n_points=5000, n_dims=32, n_clusters=4, seed=0)
>>> labels = KeyBin2(seed=0).fit_predict(X)

Subpackages
-----------
core       the KeyBin2 algorithm (batch, streaming, distributed, KeyBin1)
comm       SPMD message-passing substrate (thread/process/MPI executors)
kernels    data-parallel compute kernels (the GPU substitute)
baselines  k-means++, parallel k-means, DBSCAN, PDSDBSCAN, X-means
metrics    pair precision/recall/F1, NMI, ARI, purity, CH, run CIs
data       synthetic generators (Gaussians, boxes, rings, correlated, streams)
proteins   synthetic folding trajectories + Ramachandran encoding (§5)
insitu     fingerprints, stability scoring, metastable segments (§5)
serve      online model serving (registry/hot-swap, micro-batching, TCP)
bench      experiment harness regenerating the paper's tables and figures
"""

from __future__ import annotations

from repro._version import __version__
from repro.errors import (
    CommError,
    ConvergenceError,
    NotFittedError,
    RankFailedError,
    ReproError,
    ValidationError,
)
from repro.core import (
    KeyBin1,
    KeyBin2,
    KeyBin2Model,
    KeyOutlierDetector,
    StreamingKeyBin2,
    fit_distributed,
    keybin2_spmd,
)

__all__ = [
    "__version__",
    "KeyBin2",
    "KeyBin1",
    "KeyBin2Model",
    "KeyOutlierDetector",
    "StreamingKeyBin2",
    "fit_distributed",
    "keybin2_spmd",
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "CommError",
    "RankFailedError",
    "ConvergenceError",
]
