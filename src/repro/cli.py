"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table1 [--scale 0.02] [--repeats 3] [--ranks 8]
    python -m repro table2
    python -m repro table3
    python -m repro fig1 | fig2 | fig3 | fig4
    python -m repro ablation-partitioning | ablation-bootstrap | ablation-nrp
    python -m repro comm-volume
    python -m repro all            # everything, small scale

``--scale 1.0`` runs paper-sized experiments (hours on a workstation);
the defaults finish in minutes on a laptop and preserve the shape of
every conclusion.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.runner import ExperimentScale

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate KeyBin2 (ICPP'18) evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "table3",
            "fig1", "fig2", "fig3", "fig4",
            "ablation-partitioning", "ablation-bootstrap", "ablation-nrp",
            "ablation-smoother", "ablation-simultaneous",
            "comm-volume", "scaling", "all",
        ],
    )
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of the paper's data sizes (1.0 = full)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="independent runs per design point (paper: 20)")
    parser.add_argument("--ranks", type=int, default=None,
                        help="rank count (table1) / max ranks (table2)")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _run_one(name: str, args) -> str:
    scale = ExperimentScale.from_factor(
        args.scale, repeats=args.repeats, max_ranks=args.ranks
    )
    if name == "table1":
        from repro.bench.experiments import run_table1

        n_ranks = args.ranks if args.ranks else 8
        return run_table1(scale=scale, n_ranks=n_ranks, seed=args.seed).render()
    if name == "table2":
        from repro.bench.experiments import run_table2

        return run_table2(scale=scale, seed=args.seed).render()
    if name == "table3":
        from repro.bench.experiments import run_table3

        return run_table3().render()
    if name == "fig1":
        from repro.bench.experiments import run_fig1

        return run_fig1(seed=args.seed or 1).render()
    if name == "fig2":
        from repro.bench.experiments import run_fig2

        return run_fig2(seed=args.seed or 5).render()
    if name == "fig3":
        from repro.bench.experiments import run_fig3

        return run_fig3(scale=max(args.scale, 0.02)).render()
    if name == "fig4":
        from repro.bench.experiments import run_fig4

        return run_fig4(scale=max(args.scale * 10, 0.2)).render()
    if name == "ablation-partitioning":
        from repro.bench.experiments import run_ablation_partitioning

        return run_ablation_partitioning(seed=args.seed).render()
    if name == "ablation-bootstrap":
        from repro.bench.experiments import run_ablation_bootstrap

        return run_ablation_bootstrap(seed=args.seed).render()
    if name == "ablation-nrp":
        from repro.bench.experiments import run_ablation_nrp

        return run_ablation_nrp(seed=args.seed).render()
    if name == "ablation-smoother":
        from repro.bench.experiments import run_ablation_smoother

        return run_ablation_smoother(seed=args.seed).render()
    if name == "ablation-simultaneous":
        from repro.bench.experiments import run_ablation_simultaneous

        return run_ablation_simultaneous(seed=args.seed).render()
    if name == "comm-volume":
        from repro.bench.experiments import run_comm_volume

        return run_comm_volume(seed=args.seed).render()
    if name == "scaling":
        from repro.bench.scaling import run_scaling

        return run_scaling(seed=args.seed).render()
    raise AssertionError(name)  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    names = (
        ["table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4",
         "ablation-partitioning", "ablation-bootstrap", "ablation-nrp",
         "ablation-smoother", "ablation-simultaneous", "comm-volume",
         "scaling"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        print(_run_one(name, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
