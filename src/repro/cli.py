"""Command-line entry point: regenerate any paper artifact, or serve a model.

Usage::

    python -m repro table1 [--scale 0.02] [--repeats 3] [--ranks 8]
    python -m repro table2
    python -m repro table3
    python -m repro fig1 | fig2 | fig3 | fig4
    python -m repro ablation-partitioning | ablation-bootstrap | ablation-nrp
    python -m repro comm-volume
    python -m repro all            # everything, small scale

    python -m repro serve --model model.json [--port 8765]
    python -m repro serve-bench --demo --requests 2000 --clients 16
    python -m repro fleet --model model.json --replicas 3 [--port 8900]
    python -m repro fleet-bench [--sizes 1,2,4] [--check]
    python -m repro fleet-recover --journal-dir DIR --endpoints r0=H:P,...
    python -m repro kernels-bench [--backend numpy] [--check]
    python -m repro drift-bench [--backend numpy] [--check]
    python -m repro obs-report [--ranks 3] [--frames 160] [--json]
    python -m repro obs-trace traces/*.jsonl [--trace ID] [--json]
    python -m repro obs-dashboard --target r0=127.0.0.1:8765 [--once|--demo]
    python -m repro obs-collect --target r0=127.0.0.1:8765 [--port 9800]

``--scale 1.0`` runs paper-sized experiments (hours on a workstation);
the defaults finish in minutes on a laptop and preserve the shape of
every conclusion. ``serve`` exposes a fitted model over the
:mod:`repro.serve` TCP/JSON protocol; ``serve-bench`` spins up an
in-process server and measures it with the load generator;
``obs-report`` runs an instrumented in-situ workload and renders the
per-phase time and comm-volume breakdowns from the telemetry registry.
``fleet`` runs N replica subprocesses behind a capacity-aware router on
one endpoint (same wire protocol — existing clients work unchanged);
``fleet-bench`` measures goodput scaling at 1→2→4 replicas and a staged
zero-downtime reload under load, recording ``BENCH_serve_fleet.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.runner import ExperimentScale

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate KeyBin2 (ICPP'18) evaluation artifacts.",
        epilog=(
            "Serving commands (own flags; see `python -m repro serve --help`): "
            "serve, serve-bench, fleet, fleet-bench, fleet-recover. "
            "Telemetry: obs-report."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "table3",
            "fig1", "fig2", "fig3", "fig4",
            "ablation-partitioning", "ablation-bootstrap", "ablation-nrp",
            "ablation-smoother", "ablation-simultaneous",
            "comm-volume", "scaling", "all",
        ],
    )
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of the paper's data sizes (1.0 = full)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="independent runs per design point (paper: 20)")
    parser.add_argument("--ranks", type=int, default=None,
                        help="rank count (table1) / max ranks (table2)")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _run_one(name: str, args) -> str:
    scale = ExperimentScale.from_factor(
        args.scale, repeats=args.repeats, max_ranks=args.ranks
    )
    if name == "table1":
        from repro.bench.experiments import run_table1

        n_ranks = args.ranks if args.ranks else 8
        return run_table1(scale=scale, n_ranks=n_ranks, seed=args.seed).render()
    if name == "table2":
        from repro.bench.experiments import run_table2

        return run_table2(scale=scale, seed=args.seed).render()
    if name == "table3":
        from repro.bench.experiments import run_table3

        return run_table3().render()
    if name == "fig1":
        from repro.bench.experiments import run_fig1

        return run_fig1(seed=args.seed or 1).render()
    if name == "fig2":
        from repro.bench.experiments import run_fig2

        return run_fig2(seed=args.seed or 5).render()
    if name == "fig3":
        from repro.bench.experiments import run_fig3

        return run_fig3(scale=max(args.scale, 0.02)).render()
    if name == "fig4":
        from repro.bench.experiments import run_fig4

        return run_fig4(scale=max(args.scale * 10, 0.2)).render()
    if name == "ablation-partitioning":
        from repro.bench.experiments import run_ablation_partitioning

        return run_ablation_partitioning(seed=args.seed).render()
    if name == "ablation-bootstrap":
        from repro.bench.experiments import run_ablation_bootstrap

        return run_ablation_bootstrap(seed=args.seed).render()
    if name == "ablation-nrp":
        from repro.bench.experiments import run_ablation_nrp

        return run_ablation_nrp(seed=args.seed).render()
    if name == "ablation-smoother":
        from repro.bench.experiments import run_ablation_smoother

        return run_ablation_smoother(seed=args.seed).render()
    if name == "ablation-simultaneous":
        from repro.bench.experiments import run_ablation_simultaneous

        return run_ablation_simultaneous(seed=args.seed).render()
    if name == "comm-volume":
        from repro.bench.experiments import run_comm_volume

        return run_comm_volume(seed=args.seed).render()
    if name == "scaling":
        from repro.bench.scaling import run_scaling

        return run_scaling(seed=args.seed).render()
    raise AssertionError(name)  # pragma: no cover


def _load_or_demo_model(args):
    """Resolve --model / --demo into a fitted KeyBin2Model."""
    from repro.core.model import KeyBin2Model

    if args.model is not None:
        return KeyBin2Model.load(args.model)
    if not args.demo:
        raise SystemExit("need --model PATH or --demo (fit a toy model)")
    from repro.core.estimator import KeyBin2
    from repro.data.gaussians import gaussian_mixture

    x, _ = gaussian_mixture(n_points=2000, n_dims=16, n_clusters=4, seed=args.seed)
    model = KeyBin2(n_projections=4, seed=args.seed).fit(x).model_
    model.meta["demo"] = True
    return model


def _serve_common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default=None,
                        help="path to a model JSON written by KeyBin2Model.save")
    parser.add_argument("--demo", action="store_true",
                        help="fit a small synthetic model instead of loading one")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch flush size")
    parser.add_argument("--window-ms", type=float, default=5.0,
                        help="micro-batch max linger (milliseconds)")
    parser.add_argument("--queue", type=int, default=10_000,
                        help="pending-row bound before backpressure rejections")
    parser.add_argument("--admit-rate", type=float, default=None,
                        help="token-bucket sustained admission rate "
                             "(predicts/s; default: unlimited)")
    parser.add_argument("--admit-burst", type=int, default=100,
                        help="token-bucket burst size above --admit-rate")
    parser.add_argument("--max-in-flight", type=int, default=None,
                        help="bound on concurrently admitted predicts "
                             "(default: unlimited)")
    parser.add_argument("--default-deadline-ms", type=float, default=None,
                        help="deadline applied to predicts that carry no "
                             "deadline_ms (default: none)")
    parser.add_argument("--drain-s", type=float, default=5.0,
                        help="graceful-drain hard cutoff on shutdown (seconds)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export request-trace spans to this JSONL file "
                             "('{pid}' expands per process); absent = tracing "
                             "disabled, zero request overhead")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        help="head-based sample rate for traces started here "
                             "(error spans always export)")
    parser.add_argument("--seed", type=int, default=0)


def _admission_from_args(args) -> "object":
    from repro.serve.admission import AdmissionPolicy

    return AdmissionPolicy(
        rate=args.admit_rate,
        burst=args.admit_burst,
        max_in_flight=args.max_in_flight,
        default_deadline_ms=args.default_deadline_ms,
    )


def _run_serve(argv: List[str]) -> int:
    import asyncio

    from repro.serve.batcher import BatchPolicy
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import ModelServer

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a fitted KeyBin2 model over TCP/JSON.",
    )
    _serve_common_flags(parser)
    parser.add_argument("--allow-admin", action="store_true",
                        help="serve reload/shutdown ops even on a non-loopback "
                             "--host (default: loopback binds only)")
    parser.add_argument("--metrics-log", default=None, metavar="PATH",
                        help="append periodic JSON telemetry snapshots to "
                             "this file while serving")
    parser.add_argument("--metrics-every", type=float, default=30.0,
                        help="seconds between --metrics-log snapshots")
    args = parser.parse_args(argv)
    if args.trace_out is not None:
        from repro.obs import configure_tracer

        configure_tracer(args.trace_out, sample_rate=args.trace_sample)

    registry = ModelRegistry()
    version = registry.publish(_load_or_demo_model(args), tag="serve-startup")
    policy = BatchPolicy(max_batch=args.max_batch,
                         max_delay_s=args.window_ms / 1000.0,
                         max_queue=args.queue)
    server = ModelServer(registry, host=args.host, port=args.port, policy=policy,
                         allow_admin=True if args.allow_admin else None,
                         admission=_admission_from_args(args),
                         drain_s=args.drain_s)

    async def _run():
        await server.start()
        info = registry.current().info()
        print(f"serving model v{version} (fingerprint {info['fingerprint']}, "
              f"{info['n_clusters']} clusters) on "
              f"{server.host}:{server.bound_port}")
        ops = "predict, model-info, stats, metrics, healthz"
        if server.allow_admin:
            ops += ", reload, shutdown"
        else:
            ops += "  (reload/shutdown disabled; pass --allow-admin)"
        print(f"ops: {ops}")
        await server.serve_until_shutdown()

    def _serve_forever():
        try:
            asyncio.run(_run())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    if args.metrics_log is not None:
        from repro.obs import SnapshotLogger, default_registry

        with SnapshotLogger(
            args.metrics_log,
            interval_s=args.metrics_every,
            registries=[server.stats.registry, default_registry()],
        ):
            _serve_forever()
    else:
        _serve_forever()
    return 0


def _run_serve_bench(argv: List[str]) -> int:
    from repro.data.gaussians import gaussian_mixture
    from repro.serve.batcher import BatchPolicy
    from repro.serve.loadgen import run_closed_loop, run_open_loop
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import serve_in_thread

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-bench",
        description="Measure serving throughput with the load generator.",
    )
    _serve_common_flags(parser)
    parser.add_argument("--requests", type=int, default=2000,
                        help="closed-loop request count")
    parser.add_argument("--clients", type=int, default=16,
                        help="closed-loop concurrent clients / open-loop conns")
    parser.add_argument("--mode", choices=["closed", "open"], default="closed")
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="open-loop arrival rate (req/s)")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="open-loop duration (seconds)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="attach this latency budget to every request")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="client-side per-request timeout (seconds); "
                             "expiries count as 'timeout' outcomes")
    args = parser.parse_args(argv)

    registry = ModelRegistry()
    registry.publish(_load_or_demo_model(args), tag="bench")
    policy = BatchPolicy(max_batch=args.max_batch,
                         max_delay_s=args.window_ms / 1000.0,
                         max_queue=args.queue)
    points, _ = gaussian_mixture(n_points=512, n_dims=registry.current()
                                 .info()["n_features"], n_clusters=4,
                                 seed=args.seed + 1)
    with serve_in_thread(registry, host=args.host, port=args.port,
                         policy=policy,
                         admission=_admission_from_args(args),
                         drain_s=args.drain_s) as handle:
        host, port = handle.address
        if args.mode == "closed":
            report = run_closed_loop(host, port, points,
                                     n_requests=args.requests,
                                     n_clients=args.clients,
                                     deadline_ms=args.deadline_ms,
                                     request_timeout_s=args.request_timeout)
        else:
            report = run_open_loop(host, port, points, rate=args.rate,
                                   duration_s=args.duration,
                                   n_connections=args.clients,
                                   deadline_ms=args.deadline_ms,
                                   request_timeout_s=args.request_timeout)
        stats = handle.server.stats.snapshot()
        cache = handle.server.cache.snapshot()
    print(report.render())
    print(f"  server: mean batch {stats['mean_batch_size']} "
          f"(max {stats['max_batch_seen']}), "
          f"batch hist {stats['batch_size_hist']}")
    if stats["shed_total"] or stats["deadline_expired_total"]:
        print(f"  server: shed {stats['shed_by_reason']}  "
              f"deadline-expired {stats['deadline_expired_total']}  "
              f"queue wait mean {stats['queue_wait']['mean_ms']}ms")
    print(f"  cache: hit rate {cache['hit_rate']:.2%} "
          f"({cache['hits']} hits / {cache['misses']} misses)")
    # Explicit sheds are intended degradation, not benchmark failure.
    return 0 if report.requests_failed == report.shed_total else 1


def _parse_quota(spec: str):
    """``rate`` or ``rate:burst`` → TenantQuotaPolicy."""
    from repro.fleet.quotas import TenantQuotaPolicy

    rate, _, burst = spec.partition(":")
    return TenantQuotaPolicy(
        rate=float(rate), burst=float(burst) if burst else 10.0
    )


def _run_fleet(argv: List[str]) -> int:
    import tempfile
    import time

    from repro.core.model import KeyBin2Model
    from repro.fleet.quotas import TenantQuotas
    from repro.fleet.replica import ReplicaSupervisor
    from repro.fleet.router import router_in_thread

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Serve a model from N replica subprocesses behind a "
                    "capacity-aware router (same TCP/JSON wire protocol).",
    )
    _serve_common_flags(parser)
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--allow-admin", action="store_true",
                        help="serve reload (staged rollout), rollback and "
                             "shutdown even on a non-loopback --host")
    parser.add_argument("--no-shard", action="store_true",
                        help="disable bin-key sharding (pure power-of-two-"
                             "choices routing)")
    parser.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per replica on the shard ring")
    parser.add_argument("--quota", action="append", default=[],
                        metavar="TENANT=RATE[:BURST]",
                        help="per-tenant token-bucket quota (repeatable)")
    parser.add_argument("--quota-default", default=None,
                        metavar="RATE[:BURST]",
                        help="quota for tenants without an explicit --quota "
                             "(and for anonymous traffic)")
    parser.add_argument("--monitor-every", type=float, default=2.0,
                        help="seconds between supervisor liveness sweeps "
                             "(dead replicas are restarted and re-routed)")
    parser.add_argument("--journal-dir", default=None, metavar="DIR",
                        help="directory for the crash-safe rollout journal; "
                             "rollouts are write-ahead journaled, restarted "
                             "replicas reconcile to the journal's artifact, "
                             "and startup replays any interrupted rollout")
    parser.add_argument("--run-for", type=float, default=None, metavar="SECS",
                        help="exit (code 0) after SECS once the fleet serves "
                             "a single fingerprint — CI smoke mode")
    parser.add_argument("--chaos-kill", type=float, default=None,
                        metavar="SECS",
                        help="SIGKILL one replica (round-robin) every SECS "
                             "to exercise restart reconciliation")
    args = parser.parse_args(argv)
    if args.port == 8765:
        args.port = 8900  # don't default onto the single-server port
    if args.trace_out is not None:
        # The router process traces its route/forward hops; each replica
        # subprocess gets the same --trace-out (with {pid} so N processes
        # write N files obs-trace reads back together).
        from repro.obs import configure_tracer

        trace_path = args.trace_out
        if "{pid}" not in trace_path:
            trace_path += ".{pid}"
        configure_tracer(trace_path, sample_rate=args.trace_sample)

    # Process replicas load from disk; --demo fits once and saves a temp
    # artifact every replica (and the shard model) shares.
    tmp = None
    model_path = args.model
    if model_path is None:
        model = _load_or_demo_model(args)
        tmp = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", prefix="fleet-demo-", delete=False)
        tmp.close()
        model.save(tmp.name)
        model_path = tmp.name
    else:
        model = KeyBin2Model.load(model_path)

    quotas = TenantQuotas(
        quotas={name: _parse_quota(spec) for name, _, spec in
                (q.partition("=") for q in args.quota)},
        default=None if args.quota_default is None
        else _parse_quota(args.quota_default),
    )
    extra = []
    if args.admit_rate is not None:
        extra += ["--admit-rate", str(args.admit_rate),
                  "--admit-burst", str(args.admit_burst)]
    if args.max_in_flight is not None:
        extra += ["--max-in-flight", str(args.max_in_flight)]
    if args.default_deadline_ms is not None:
        extra += ["--default-deadline-ms", str(args.default_deadline_ms)]
    extra += ["--max-batch", str(args.max_batch),
              "--window-ms", str(args.window_ms),
              "--queue", str(args.queue), "--drain-s", str(args.drain_s)]
    if args.trace_out is not None:
        extra += ["--trace-out", trace_path,
                  "--trace-sample", str(args.trace_sample)]

    journal = None
    if args.journal_dir is not None:
        from repro.fleet.journal import RolloutJournal

        journal = RolloutJournal(args.journal_dir)
        if journal.current_artifact() is None:
            # First boot: the starting model is the fleet's baseline.
            journal.set_artifact(model_path, model.fingerprint())

    sup = ReplicaSupervisor(model_path, n_replicas=args.replicas,
                            mode="process", extra_args=extra,
                            journal=journal)
    try:
        endpoints = sup.start()
        if journal is not None:
            from repro.fleet.journal import recover_fleet

            summary = recover_fleet(endpoints, journal)
            if summary["action"] != "noop":
                print(f"journal recovery: {summary['action']} -> "
                      f"{summary['target_fingerprint']} "
                      f"(reloaded: {', '.join(summary['reloaded']) or 'none'})",
                      flush=True)
        handle = router_in_thread(
            endpoints, host=args.host, port=args.port,
            shard=not args.no_shard, shard_model=model,
            vnodes=args.vnodes, quotas=quotas,
            allow_admin=True if args.allow_admin else None,
            seed=args.seed, journal=journal,
        )
        with handle:
            print(f"fleet router over {len(endpoints)} replicas "
                  f"({', '.join(f'{r}={h}:{p}' for r, h, p in endpoints)}) "
                  f"on {handle.address[0]}:{handle.address[1]}")
            print("ops: predict, model-info, stats, metrics, healthz, "
                  "fleet-status"
                  + (", reload (staged rollout), rollback, shutdown"
                     if handle.router.allow_admin else ""))
            exit_code = 0
            try:
                started = time.monotonic()
                last_sweep = started
                last_kill = started
                kill_ids = sorted(r for r, _, _ in endpoints)
                kill_idx = 0
                while handle.thread.is_alive():
                    time.sleep(0.1)
                    now = time.monotonic()
                    if args.run_for is not None and now - started >= args.run_for:
                        break
                    if (args.chaos_kill is not None
                            and now - last_kill >= args.chaos_kill):
                        last_kill = now
                        victim = kill_ids[kill_idx % len(kill_ids)]
                        kill_idx += 1
                        if sup.is_alive(victim):
                            sup.kill(victim)
                            print(f"chaos: killed replica {victim}",
                                  flush=True)
                    if now - last_sweep < args.monitor_every:
                        continue
                    last_sweep = now
                    for rid in sup.check_and_restart():
                        rhost, rport = next(
                            (h, p) for r, h, p in sup.endpoints() if r == rid
                        )
                        handle.set_endpoint(rid, rhost, rport)
                        print(f"restarted dead replica {rid} "
                              f"-> {rhost}:{rport}", flush=True)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
            if args.run_for is not None:
                # Smoke-mode exit gate: after the chaos window the fleet
                # must serve exactly one fingerprint on every replica
                # that is up (a final sweep revives any recent victim).
                for rid in sup.check_and_restart():
                    rhost, rport = next(
                        (h, p) for r, h, p in sup.endpoints() if r == rid
                    )
                    handle.set_endpoint(rid, rhost, rport)
                from repro.fleet.journal import _probe_fingerprints

                final = _probe_fingerprints(sup.endpoints(), timeout=5.0)
                served = {fp for fp in final.values() if fp is not None}
                print(f"final fingerprints: {final}", flush=True)
                if not served or len(served) > 1 or None in final.values():
                    exit_code = 1
    finally:
        sup.stop()
        if tmp is not None:
            import os

            os.unlink(tmp.name)
    return exit_code


def _run_fleet_recover(argv: List[str]) -> int:
    import json

    from repro.fleet.journal import RolloutJournal, recover_fleet

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet-recover",
        description="Replay a rollout journal against a running fleet and "
                    "drive every replica to a single model fingerprint "
                    "(finish a committed rollout, roll back an uncommitted "
                    "one, reconcile strays).",
    )
    parser.add_argument("--journal-dir", required=True, metavar="DIR",
                        help="the fleet's --journal-dir")
    parser.add_argument("--endpoints", required=True,
                        metavar="ID=HOST:PORT[,...]",
                        help="replica endpoints, e.g. "
                             "r0=127.0.0.1:9001,r1=127.0.0.1:9002")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-replica probe/reload timeout (seconds)")
    args = parser.parse_args(argv)

    endpoints = []
    for part in filter(None, (p.strip() for p in args.endpoints.split(","))):
        rid, eq, addr = part.partition("=")
        host, colon, port = addr.rpartition(":")
        if not (eq and colon and rid and host and port.isdigit()):
            parser.error(f"bad endpoint {part!r} (want ID=HOST:PORT)")
        endpoints.append((rid, host, int(port)))

    journal = RolloutJournal(args.journal_dir)
    summary = recover_fleet(endpoints, journal, timeout=args.timeout)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["converged"] else 1


def _run_fleet_bench(argv: List[str]) -> int:
    from repro.fleet.bench import DEFAULT_OUT_PATH, run_fleet_bench

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet-bench",
        description="Measure fleet goodput scaling (1->2->4 replicas) and a "
                    "staged zero-downtime reload under load.",
    )
    parser.add_argument("--model", default=None,
                        help="model to serve (default: fit a demo model)")
    parser.add_argument("--out", default=DEFAULT_OUT_PATH,
                        help="results JSON path ('' = don't write)")
    parser.add_argument("--sizes", default="1,2,4",
                        help="comma-separated fleet sizes for the scaling runs")
    parser.add_argument("--admit-rate", type=float, default=250.0,
                        help="per-replica admission budget (predicts/s); the "
                             "explicit capacity each replica contributes")
    parser.add_argument("--demand-factor", type=float, default=1.35,
                        help="open-loop demand as a multiple of aggregate "
                             "fleet capacity")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds of load per scaling point")
    parser.add_argument("--reload-replicas", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every acceptance threshold "
                             "passes (2-replica scaling >= 1.6x, 4-replica "
                             ">= 3x, zero hard failures during reload)")
    args = parser.parse_args(argv)

    results = run_fleet_bench(
        model_path=args.model,
        out_path=args.out or None,
        fleet_sizes=tuple(int(s) for s in args.sizes.split(",") if s),
        admit_rate=args.admit_rate,
        demand_factor=args.demand_factor,
        duration_s=args.duration,
        reload_replicas=args.reload_replicas,
        seed=args.seed,
    )
    if args.check and not results["passed"]:
        return 1
    return 0


def _run_kernels_bench(argv: List[str]) -> int:
    from repro.kernels.bench import (
        DEFAULT_OUT_PATH,
        DEFAULT_SPEEDUP_FLOOR,
        run_kernels_bench,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro kernels-bench",
        description="Measure fused-vs-reference partial_fit throughput per "
                    "kernel backend (and verify bit-identical state).",
    )
    parser.add_argument("--backend", action="append", default=None,
                        metavar="NAME",
                        help="backend to measure (repeatable; default: every "
                             "available backend)")
    parser.add_argument("--points", type=int, default=50_000)
    parser.add_argument("--features", type=int, default=128)
    parser.add_argument("--projections", type=int, default=8)
    parser.add_argument("--depths", default="4,5,6,7",
                        help="comma-separated candidate depths")
    parser.add_argument("--clusters", type=int, default=64,
                        help="gaussian-mixture components in the benchmark "
                             "batch (clusterable data is the representative "
                             "workload)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed partial_fit calls per path (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--floor", type=float, default=DEFAULT_SPEEDUP_FLOOR,
                        help="speedup acceptance floor for --check (default "
                             f"{DEFAULT_SPEEDUP_FLOOR}x; CI uses a lower "
                             "explicit floor for throttled shared runners)")
    parser.add_argument("--out", default=DEFAULT_OUT_PATH,
                        help="results JSON path ('' = don't write)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the best backend meets "
                             "--floor and fused state is bit-identical to "
                             "the reference")
    args = parser.parse_args(argv)

    results = run_kernels_bench(
        backends=args.backend,
        n_points=args.points,
        n_features=args.features,
        n_projections=args.projections,
        depths=tuple(int(d) for d in args.depths.split(",") if d),
        n_clusters=args.clusters,
        repeats=args.repeats,
        seed=args.seed,
        floor=args.floor,
        out_path=args.out or None,
    )
    if args.check and not results["passed"]:
        return 1
    return 0


def _run_drift_bench(argv: List[str]) -> int:
    from repro.kernels.bench import (
        DEFAULT_ADAPTIVE_OVERHEAD_CEILING,
        DEFAULT_DRIFT_OUT_PATH,
        run_drift_bench,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro drift-bench",
        description="Measure the adaptive range-tracking overhead of "
                    "partial_fit on a stationary in-range stream (and verify "
                    "adaptive state is bit-identical to fixed-range).",
    )
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="kernel backend (default: best available)")
    parser.add_argument("--points", type=int, default=50_000)
    parser.add_argument("--features", type=int, default=128)
    parser.add_argument("--projections", type=int, default=8)
    parser.add_argument("--depths", default="4,5,6,7",
                        help="comma-separated candidate depths")
    parser.add_argument("--clusters", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed partial_fit calls per path (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-overhead", type=float,
                        default=DEFAULT_ADAPTIVE_OVERHEAD_CEILING,
                        help="overhead acceptance ceiling for --check "
                             f"(default {DEFAULT_ADAPTIVE_OVERHEAD_CEILING})")
    parser.add_argument("--out", default=DEFAULT_DRIFT_OUT_PATH,
                        help="results JSON path ('' = don't write)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless overhead is within "
                             "--max-overhead and state is bit-identical")
    args = parser.parse_args(argv)

    results = run_drift_bench(
        backend=args.backend,
        n_points=args.points,
        n_features=args.features,
        n_projections=args.projections,
        depths=tuple(int(d) for d in args.depths.split(",") if d),
        n_clusters=args.clusters,
        repeats=args.repeats,
        seed=args.seed,
        max_overhead=args.max_overhead,
        out_path=args.out or None,
    )
    if args.check and not results["passed"]:
        return 1
    return 0


def _run_obs_report(argv: List[str]) -> int:
    from repro.obs import run_obs_report

    parser = argparse.ArgumentParser(
        prog="python -m repro obs-report",
        description="Run an instrumented in-situ workload; report per-phase "
                    "time and consolidation comm volume from telemetry.",
    )
    parser.add_argument("--ranks", type=int, default=3,
                        help="SPMD ranks (one synthetic trajectory each)")
    parser.add_argument("--frames", type=int, default=160,
                        help="frames per rank")
    parser.add_argument("--chunk", type=int, default=40,
                        help="frames per in-situ chunk")
    parser.add_argument("--every", type=int, default=2,
                        help="chunks between consolidations")
    parser.add_argument("--reduce", choices=["linear", "ring"],
                        default="linear", help="histogram allreduce topology")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="emit the raw registry snapshot as JSON")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault plan for chaos runs, e.g. "
                             "'kill:1@1' or 'kill:2@1,slow:0:0.002' "
                             "(kill:R@K, drop:S>D@N, delay:S>D@N:SECS, "
                             "slow:R:SECS); enables recovery and reports the "
                             "survivors' recovery counters")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write per-rank checkpoints after every "
                             "consolidation; an existing directory resumes "
                             "the run from its last complete round")
    parser.add_argument("--suspicion", type=float, default=None,
                        metavar="SECS",
                        help="soft suspicion deadline below the hard receive "
                             "timeout: stalled receives ping the peer and "
                             "wait it out if alive (slow != dead)")
    args = parser.parse_args(argv)
    print(run_obs_report(
        n_ranks=args.ranks, n_frames=args.frames, chunk_size=args.chunk,
        consolidate_every=args.every, seed=args.seed,
        reduce_algo=args.reduce, as_json=args.json, faults=args.faults,
        checkpoint_dir=args.checkpoint_dir, suspicion=args.suspicion,
    ))
    return 0


def _run_obs_trace(argv: List[str]) -> int:
    import json as _json

    from repro.obs import build_traces, load_spans, render_trace, trace_summary
    from repro.obs.report import trace_table

    parser = argparse.ArgumentParser(
        prog="python -m repro obs-trace",
        description="Reconstruct distributed request traces from span JSONL "
                    "files (written via --trace-out) and render each tree "
                    "with per-hop latency and a paper-§3 critical path.",
    )
    parser.add_argument("files", nargs="+",
                        help="span JSONL file(s) or globs, e.g. "
                             "'traces/*.jsonl'")
    parser.add_argument("--trace", default=None, metavar="ID",
                        help="render only this 16-hex trace id")
    parser.add_argument("--limit", type=int, default=10,
                        help="max traces to render (newest first)")
    parser.add_argument("--json", action="store_true",
                        help="emit trace summaries as JSON instead of trees")
    args = parser.parse_args(argv)

    records = load_spans(args.files)
    trees = build_traces(records)
    if args.trace is not None:
        trees = {k: v for k, v in trees.items() if k == args.trace}
    if not trees:
        print("no trace spans found", file=sys.stderr)
        return 1
    ordered = sorted(
        trees.values(),
        key=lambda t: max(
            (s.get("start", 0.0) for s in t.spans.values()), default=0.0
        ),
        reverse=True,
    )[:max(1, args.limit)]
    if args.json:
        print(_json.dumps([trace_summary(t) for t in ordered], sort_keys=True))
        return 0
    shown = 0
    for tree in ordered:
        if shown:
            print()
        print(render_trace(tree))
        print(trace_table(trace_summary(tree)))
        shown += 1
    print(f"\n{len(trees)} trace(s) in {len(records)} spans"
          + (f"; showing {shown}" if shown < len(trees) else ""))
    return 0


def _parse_collect_targets(specs: List[str]):
    """``id=host:port`` (or bare ``host:port``) specs → collector targets."""
    targets = []
    for spec in specs:
        name, eq, addr = spec.rpartition("=")
        host, _, port = addr.rpartition(":")
        if not host or not port:
            raise SystemExit(f"bad --target {spec!r} (want [id=]host:port)")
        targets.append((name if eq else addr, host, int(port)))
    return targets


def _collector_from_args(args):
    from repro.obs import MetricsCollector

    snapshot_files = []
    for spec in getattr(args, "snapshots", None) or []:
        name, eq, path = spec.partition("=")
        snapshot_files.append((name if eq else path, path if eq else name))
    return MetricsCollector(
        targets=_parse_collect_targets(args.target),
        snapshot_files=snapshot_files,
        interval_s=args.interval,
    )


def _obs_demo_fleet(args):
    """In-process replica + traffic for --demo dashboard/collector runs."""
    from repro.serve.batcher import BatchPolicy
    from repro.serve.client import ServeClient
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import serve_in_thread

    registry = ModelRegistry()
    args.model = None
    args.demo = True
    model = _load_or_demo_model(args)
    registry.publish(model, tag="obs-demo")
    handle = serve_in_thread(
        registry, policy=BatchPolicy(max_batch=64, max_delay_s=0.002)
    )
    host, port = handle.address
    with ServeClient(host, port) as client:
        rng_row = [0.0] * model.projection.shape[0]
        for _ in range(40):
            client.predict(rng_row)
    return handle, [("demo-replica", host, port)]


def _run_obs_dashboard(argv: List[str]) -> int:
    from repro.obs import MetricsCollector, run_dashboard

    parser = argparse.ArgumentParser(
        prog="python -m repro obs-dashboard",
        description="Live terminal dashboard over a fleet: per-replica QPS, "
                    "queue depth, p99, cache hits, breaker state, and firing "
                    "SLO burn-rate alerts.",
    )
    parser.add_argument("--target", action="append", default=[],
                        metavar="[ID=]HOST:PORT",
                        help="replica/router metrics endpoint (repeatable)")
    parser.add_argument("--snapshots", action="append", default=[],
                        metavar="[ID=]PATH",
                        help="SnapshotLogger JSONL file to fold in "
                             "(repeatable; SPMD ranks)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="collector pull + refresh cadence (seconds)")
    parser.add_argument("--window", type=float, default=10.0,
                        help="rate/quantile window (seconds)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit (CI check)")
    parser.add_argument("--demo", action="store_true",
                        help="spin up an in-process demo replica with traffic "
                             "(no fleet required)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    demo_handle = None
    if args.demo:
        demo_handle, targets = _obs_demo_fleet(args)
        args.target = [f"{i}={h}:{p}" for i, h, p in targets]
    elif not args.target and not args.snapshots:
        raise SystemExit("need --target, --snapshots, or --demo")
    collector = _collector_from_args(args)
    try:
        collector.poll_once()
        if args.once:
            run_dashboard(collector, once=True, window_s=args.window)
            return 0
        with collector:
            run_dashboard(collector, interval_s=args.interval,
                          window_s=args.window)
    finally:
        if demo_handle is not None:
            demo_handle.stop()
    return 0


def _run_obs_collect(argv: List[str]) -> int:
    import time as _time

    from repro.obs import collector_in_thread

    parser = argparse.ArgumentParser(
        prog="python -m repro obs-collect",
        description="Run the fleet metrics collector: pull every target, "
                    "evaluate SLO burn-rate alerts, and serve one merged "
                    "metrics/alerts endpoint (newline-JSON protocol).",
    )
    parser.add_argument("--target", action="append", default=[],
                        metavar="[ID=]HOST:PORT",
                        help="replica/router metrics endpoint (repeatable)")
    parser.add_argument("--snapshots", action="append", default=[],
                        metavar="[ID=]PATH",
                        help="SnapshotLogger JSONL file to fold in")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9800,
                        help="merged endpoint port (0 = ephemeral)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="pull cadence (seconds)")
    args = parser.parse_args(argv)
    if not args.target and not args.snapshots:
        raise SystemExit("need at least one --target or --snapshots")

    collector = _collector_from_args(args)
    handle = collector_in_thread(collector, host=args.host, port=args.port)
    with handle:
        host, port = handle.address
        print(f"collector pulling {len(collector.targets)} target(s) + "
              f"{len(collector.snapshot_files)} snapshot file(s) every "
              f"{args.interval}s; merged endpoint on {host}:{port}")
        print("ops: metrics, alerts, healthz")
        try:
            while True:
                _time.sleep(1.0)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "serve-bench":
        return _run_serve_bench(argv[1:])
    if argv and argv[0] == "fleet":
        return _run_fleet(argv[1:])
    if argv and argv[0] == "fleet-bench":
        return _run_fleet_bench(argv[1:])
    if argv and argv[0] == "fleet-recover":
        return _run_fleet_recover(argv[1:])
    if argv and argv[0] == "kernels-bench":
        return _run_kernels_bench(argv[1:])
    if argv and argv[0] == "drift-bench":
        return _run_drift_bench(argv[1:])
    if argv and argv[0] == "obs-report":
        return _run_obs_report(argv[1:])
    if argv and argv[0] == "obs-trace":
        return _run_obs_trace(argv[1:])
    if argv and argv[0] == "obs-dashboard":
        return _run_obs_dashboard(argv[1:])
    if argv and argv[0] == "obs-collect":
        return _run_obs_collect(argv[1:])
    args = _build_parser().parse_args(argv)
    names = (
        ["table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4",
         "ablation-partitioning", "ablation-bootstrap", "ablation-nrp",
         "ablation-smoother", "ablation-simultaneous", "comm-volume",
         "scaling"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        print(_run_one(name, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
