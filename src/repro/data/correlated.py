"""Correlated, projection-overlapping clusters (paper Figure 1).

Two (or more) elongated clusters whose principal axes are parallel and
offset *perpendicular* to the elongation: each original coordinate axis
sees the clusters' 1-D projections overlap almost completely, which is
exactly the case KeyBin1 could not separate and random rotations fix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.util.rng import SeedLike, as_generator

__all__ = ["correlated_clusters"]


def correlated_clusters(
    n_points: int,
    n_clusters: int = 2,
    n_dims: int = 2,
    elongation: float = 8.0,
    gap: float = 3.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Elongated parallel clusters offset along their minor axis.

    Parameters
    ----------
    elongation:
        Sigma along the shared major axis relative to the minor axes (1.0).
    gap:
        Centre offset along the minor axis, in minor-sigma units. With
        ``gap`` of a few sigma the clusters are clearly separated in 2-D
        but their projections onto *both* original axes overlap heavily
        (the major axis is the diagonal).

    Returns
    -------
    ``(X, y)``.
    """
    if n_dims < 2:
        raise ValidationError("correlated clusters need n_dims >= 2")
    if n_clusters < 2:
        raise ValidationError("need at least 2 clusters to overlap")
    rng = as_generator(seed)
    counts = np.full(n_clusters, n_points // n_clusters)
    counts[: n_points % n_clusters] += 1

    # Major axis: the all-ones diagonal (maximally anti-aligned with every
    # coordinate axis). Minor axis: first orthogonal direction.
    major = np.ones(n_dims) / np.sqrt(n_dims)
    minor = np.zeros(n_dims)
    minor[0], minor[1] = 1.0, -1.0
    minor /= np.linalg.norm(minor)

    x = np.empty((n_points, n_dims))
    y = np.empty(n_points, dtype=np.int64)
    offset = 0
    for k in range(n_clusters):
        c = counts[k]
        center = minor * (k - (n_clusters - 1) / 2) * gap
        along = rng.standard_normal(c) * elongation
        across = rng.standard_normal((c, n_dims))
        # Remove the major-axis component of the isotropic noise, then add
        # the elongated component back explicitly.
        across -= np.outer(across @ major, major)
        x[offset : offset + c] = center + np.outer(along, major) + across
        y[offset : offset + c] = k
        offset += c
    perm = rng.permutation(n_points)
    return x[perm], y[perm]
