"""Non-Gaussian cluster shapes.

Motivated by the paper's related-work discussion: k-means mislabels the
corners of *box-shaped* clusters (diagonal points sit closer to a foreign
centroid), and density methods are needed for *non-convex* shapes such as
rings and moons. These generators exercise those regimes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.util.rng import SeedLike, as_generator

__all__ = ["box_clusters", "ring_clusters", "moons"]


def box_clusters(
    n_points: int,
    n_dims: int = 2,
    n_clusters: int = 4,
    side: float = 4.0,
    spacing: float = 10.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform hyper-box clusters laid out on a diagonal lattice.

    Corner points of a box are the paper's canonical k-means failure case.
    """
    if n_clusters < 1 or n_points < n_clusters:
        raise ValidationError("need n_clusters >= 1 and n_points >= n_clusters")
    if side <= 0 or spacing <= side:
        raise ValidationError("need 0 < side < spacing so boxes do not touch")
    rng = as_generator(seed)
    counts = np.full(n_clusters, n_points // n_clusters)
    counts[: n_points % n_clusters] += 1
    x = np.empty((n_points, n_dims))
    y = np.empty(n_points, dtype=np.int64)
    offset = 0
    for k in range(n_clusters):
        center = np.full(n_dims, k * spacing, dtype=np.float64)
        c = counts[k]
        x[offset : offset + c] = center + rng.uniform(-side / 2, side / 2, (c, n_dims))
        y[offset : offset + c] = k
        offset += c
    perm = rng.permutation(n_points)
    return x[perm], y[perm]


def ring_clusters(
    n_points: int,
    n_rings: int = 2,
    radius_step: float = 5.0,
    noise: float = 0.15,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Concentric 2-D rings — the classic non-convex case."""
    if n_rings < 1 or n_points < n_rings:
        raise ValidationError("need n_rings >= 1 and n_points >= n_rings")
    rng = as_generator(seed)
    counts = np.full(n_rings, n_points // n_rings)
    counts[: n_points % n_rings] += 1
    x = np.empty((n_points, 2))
    y = np.empty(n_points, dtype=np.int64)
    offset = 0
    for k in range(n_rings):
        c = counts[k]
        r = (k + 1) * radius_step + rng.standard_normal(c) * noise
        theta = rng.uniform(0, 2 * np.pi, c)
        x[offset : offset + c, 0] = r * np.cos(theta)
        x[offset : offset + c, 1] = r * np.sin(theta)
        y[offset : offset + c] = k
        offset += c
    perm = rng.permutation(n_points)
    return x[perm], y[perm]


def moons(
    n_points: int,
    noise: float = 0.08,
    separation: float = 0.5,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two interleaved half-moons in 2-D."""
    if n_points < 2:
        raise ValidationError("need at least 2 points")
    rng = as_generator(seed)
    n_a = n_points // 2
    n_b = n_points - n_a
    theta_a = rng.uniform(0, np.pi, n_a)
    theta_b = rng.uniform(0, np.pi, n_b)
    a = np.stack([np.cos(theta_a), np.sin(theta_a)], axis=1)
    b = np.stack([1.0 - np.cos(theta_b), separation - np.sin(theta_b)], axis=1)
    x = np.concatenate([a, b]) + rng.standard_normal((n_points, 2)) * noise
    y = np.concatenate([np.zeros(n_a, np.int64), np.ones(n_b, np.int64)])
    perm = rng.permutation(n_points)
    return x[perm], y[perm]
