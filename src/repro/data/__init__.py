"""Synthetic dataset generators used throughout the evaluation.

The paper's scalability experiments draw from "4 mixed Gaussian
distributions with a diagonal covariance matrix"; the related-work
discussion additionally motivates box-shaped clusters (where k-means
mislabels corners) and Figure 1 uses correlated clusters whose 1-D
projections overlap. All generators return ``(X, y)`` with ground-truth
labels so clustering accuracy can be quantified, and all are seeded.
"""

from __future__ import annotations

from repro.data.gaussians import gaussian_mixture, GaussianMixtureSpec
from repro.data.shapes import box_clusters, ring_clusters, moons
from repro.data.correlated import correlated_clusters
from repro.data.streams import BatchStream, DriftingStream, distributed_partitions

__all__ = [
    "gaussian_mixture",
    "GaussianMixtureSpec",
    "box_clusters",
    "ring_clusters",
    "moons",
    "correlated_clusters",
    "BatchStream",
    "DriftingStream",
    "distributed_partitions",
]
