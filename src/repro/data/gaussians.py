"""Mixed diagonal-covariance Gaussian clusters (the paper's workload).

Cluster centres are placed with a guaranteed minimum pairwise separation
(in units of the largest cluster sigma), because the paper's experiments
assume clusters that are separable in principle — the interesting question
is whether an algorithm finds them, not whether they exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.util.rng import SeedLike, as_generator

__all__ = ["GaussianMixtureSpec", "gaussian_mixture"]


@dataclass(frozen=True)
class GaussianMixtureSpec:
    """Generator parameters for a reproducible mixture."""

    n_points: int
    n_dims: int
    n_clusters: int = 4
    separation: float = 6.0
    sigma_range: Tuple[float, float] = (0.8, 1.2)
    weight_concentration: float = 10.0


def _separated_centers(
    n_clusters: int, n_dims: int, separation: float, rng: np.random.Generator
) -> np.ndarray:
    """Rejection-sample cluster centres at least ``separation`` apart.

    Centres live in a box scaled so the expected nearest-neighbour distance
    comfortably exceeds the requirement; rejection rarely loops more than a
    few times. Distances are enforced in the full space, so projections may
    still overlap — exactly the hard case KeyBin2's rotations address.
    """
    box = separation * max(2.0, n_clusters ** (1.0 / min(n_dims, 3)))
    centers = np.empty((n_clusters, n_dims))
    count = 0
    attempts = 0
    max_attempts = 1000 * n_clusters
    while count < n_clusters:
        candidate = rng.uniform(-box, box, size=n_dims)
        if count == 0 or np.all(
            np.linalg.norm(centers[:count] - candidate, axis=1) >= separation
        ):
            centers[count] = candidate
            count += 1
        attempts += 1
        if attempts > max_attempts:
            # Give up on rejection and fall back to a deterministic lattice
            # along the first axis — always valid.
            for i in range(count, n_clusters):
                centers[i] = rng.uniform(-box, box, size=n_dims)
                centers[i, 0] = (i - n_clusters / 2) * separation * 1.5
            break
    return centers


def gaussian_mixture(
    n_points: int,
    n_dims: int,
    n_clusters: int = 4,
    separation: float = 6.0,
    sigma_range: Tuple[float, float] = (0.8, 1.2),
    weight_concentration: float = 10.0,
    seed: SeedLike = None,
    shuffle: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a mixture of axis-aligned Gaussian clusters.

    Parameters
    ----------
    n_points, n_dims, n_clusters:
        Dataset shape. The paper uses ``n_clusters = 4`` throughout §4.
    separation:
        Minimum centre-to-centre distance in sigma units.
    sigma_range:
        Per-dimension standard deviations are drawn uniformly from this
        interval (diagonal covariance).
    weight_concentration:
        Dirichlet concentration for cluster weights; large values give
        near-equal cluster sizes.
    shuffle:
        Shuffle rows so cluster membership is not positional.

    Returns
    -------
    ``(X, y)`` — (M × N) float64 data and (M,) int64 ground-truth labels.
    """
    if n_points < n_clusters:
        raise ValidationError("need at least one point per cluster")
    if n_clusters < 1:
        raise ValidationError("n_clusters must be >= 1")
    rng = as_generator(seed)
    sigma_lo, sigma_hi = sigma_range
    if not (0 < sigma_lo <= sigma_hi):
        raise ValidationError("sigma_range must satisfy 0 < lo <= hi")

    centers = _separated_centers(n_clusters, n_dims, separation * sigma_hi, rng)
    weights = rng.dirichlet(np.full(n_clusters, weight_concentration))
    counts = rng.multinomial(n_points - n_clusters, weights) + 1  # >=1 per cluster

    x = np.empty((n_points, n_dims))
    y = np.empty(n_points, dtype=np.int64)
    offset = 0
    for k in range(n_clusters):
        c = counts[k]
        sigmas = rng.uniform(sigma_lo, sigma_hi, size=n_dims)
        x[offset : offset + c] = centers[k] + rng.standard_normal((c, n_dims)) * sigmas
        y[offset : offset + c] = k
        offset += c

    if shuffle:
        perm = rng.permutation(n_points)
        x, y = x[perm], y[perm]
    return x, y
