"""Stream and distributed-partition generators.

KeyBin2 extrapolates to streams (``M = 1`` batches) and to distributed
datasets (multiple ``D``'s). :class:`BatchStream` replays a dataset in
batches; :class:`DriftingStream` adds slow concept drift to exercise the
streaming range-clipping path; the open-world stressors
:class:`RangeGrowthStream` (geometric scale growth — defeats any fixed
range), :class:`MeanShiftStream` (linear covariate shift), and
:class:`RegimeChangeStream` (abrupt regime switch) exercise adaptive
binning and drift detection; :func:`distributed_partitions` deals a
dataset across ranks either i.i.d. or with skewed cluster ownership (the
hard case for histogram merging).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.util.chunking import chunk_slices
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "BatchStream",
    "DriftingStream",
    "MeanShiftStream",
    "RangeGrowthStream",
    "RegimeChangeStream",
    "distributed_partitions",
]


class BatchStream:
    """Replay ``(X, y)`` in fixed-size batches.

    Iterating yields ``(x_batch, y_batch)`` tuples in order; the stream can
    be replayed (each ``__iter__`` starts over).
    """

    def __init__(self, x: np.ndarray, y: Optional[np.ndarray], batch_size: int):
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        self.x = np.asarray(x)
        self.y = None if y is None else np.asarray(y)
        if self.y is not None and self.y.shape[0] != self.x.shape[0]:
            raise ValidationError("X and y lengths differ")
        self.batch_size = int(batch_size)

    def __len__(self) -> int:
        return -(-self.x.shape[0] // self.batch_size)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
        for start in range(0, self.x.shape[0], self.batch_size):
            stop = start + self.batch_size
            yb = None if self.y is None else self.y[start:stop]
            yield self.x[start:stop], yb


class DriftingStream:
    """Gaussian clusters whose centres drift slowly between batches.

    Parameters
    ----------
    n_batches, batch_size, n_dims, n_clusters:
        Stream shape.
    drift:
        Per-batch centre displacement (fraction of cluster separation).
    """

    def __init__(
        self,
        n_batches: int,
        batch_size: int,
        n_dims: int,
        n_clusters: int = 4,
        separation: float = 8.0,
        drift: float = 0.02,
        seed: SeedLike = None,
    ):
        if n_batches < 1 or batch_size < 1:
            raise ValidationError("n_batches and batch_size must be >= 1")
        self.n_batches = int(n_batches)
        self.batch_size = int(batch_size)
        self.n_dims = int(n_dims)
        self.n_clusters = int(n_clusters)
        self.separation = float(separation)
        self.drift = float(drift)
        self.seed = seed

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = as_generator(self.seed)
        from repro.data.gaussians import _separated_centers

        centers = _separated_centers(self.n_clusters, self.n_dims, self.separation, rng)
        step = self.separation * self.drift
        for _ in range(self.n_batches):
            ks = rng.integers(self.n_clusters, size=self.batch_size)
            x = centers[ks] + rng.standard_normal((self.batch_size, self.n_dims))
            yield x, ks.astype(np.int64)
            centers = centers + rng.standard_normal(centers.shape) * step


class RangeGrowthStream:
    """Gaussian clusters whose *scale* grows geometrically between batches.

    The open-world range stressor: batch ``k`` draws from clusters whose
    centre distances and spreads are multiplied by ``growth**k``, so any
    a-priori binning range is eventually exceeded no matter how generous.
    Exercises the adaptive range-doubling path (every few batches force
    another grid level) and, in fixed-range mode, drives edge-bin
    saturation monotonically upward.
    """

    def __init__(
        self,
        n_batches: int,
        batch_size: int,
        n_dims: int,
        n_clusters: int = 4,
        separation: float = 4.0,
        growth: float = 1.5,
        seed: SeedLike = None,
    ):
        if n_batches < 1 or batch_size < 1:
            raise ValidationError("n_batches and batch_size must be >= 1")
        if growth <= 0:
            raise ValidationError("growth must be > 0")
        self.n_batches = int(n_batches)
        self.batch_size = int(batch_size)
        self.n_dims = int(n_dims)
        self.n_clusters = int(n_clusters)
        self.separation = float(separation)
        self.growth = float(growth)
        self.seed = seed

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = as_generator(self.seed)
        from repro.data.gaussians import _separated_centers

        centers = _separated_centers(
            self.n_clusters, self.n_dims, self.separation, rng
        )
        scale = 1.0
        for _ in range(self.n_batches):
            ks = rng.integers(self.n_clusters, size=self.batch_size)
            x = scale * centers[ks] + scale * rng.standard_normal(
                (self.batch_size, self.n_dims)
            )
            yield x, ks.astype(np.int64)
            scale *= self.growth


class MeanShiftStream:
    """Gaussian clusters whose common mean translates linearly per batch.

    The classic covariate-shift stressor: cluster geometry (separations,
    spreads, memberships) is stationary, but the whole distribution walks
    along a fixed random direction by ``shift`` units per batch — drift a
    windowed divergence detector sees as a steadily nonzero score, and a
    range tracker sees as one-sided growth.
    """

    def __init__(
        self,
        n_batches: int,
        batch_size: int,
        n_dims: int,
        n_clusters: int = 4,
        separation: float = 8.0,
        shift: float = 1.0,
        seed: SeedLike = None,
    ):
        if n_batches < 1 or batch_size < 1:
            raise ValidationError("n_batches and batch_size must be >= 1")
        self.n_batches = int(n_batches)
        self.batch_size = int(batch_size)
        self.n_dims = int(n_dims)
        self.n_clusters = int(n_clusters)
        self.separation = float(separation)
        self.shift = float(shift)
        self.seed = seed

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = as_generator(self.seed)
        from repro.data.gaussians import _separated_centers

        centers = _separated_centers(
            self.n_clusters, self.n_dims, self.separation, rng
        )
        direction = rng.standard_normal(self.n_dims)
        direction /= max(float(np.linalg.norm(direction)), 1e-12)
        offset = np.zeros(self.n_dims)
        for _ in range(self.n_batches):
            ks = rng.integers(self.n_clusters, size=self.batch_size)
            x = centers[ks] + offset + rng.standard_normal(
                (self.batch_size, self.n_dims)
            )
            yield x, ks.astype(np.int64)
            offset = offset + direction * self.shift


class RegimeChangeStream:
    """Two stationary cluster regimes with an abrupt switch between them.

    Batches before ``change_at`` draw from one set of clusters, batches
    at or after it from an independently placed set (optionally with a
    different cluster count) — the abrupt concept-drift case a windowed
    detector must flag within one window of the switch. Labels of the
    second regime are offset by the first regime's cluster count so the
    two regimes never share a label.
    """

    def __init__(
        self,
        n_batches: int,
        batch_size: int,
        n_dims: int,
        change_at: int,
        n_clusters: int = 4,
        n_clusters_after: Optional[int] = None,
        separation: float = 8.0,
        seed: SeedLike = None,
    ):
        if n_batches < 1 or batch_size < 1:
            raise ValidationError("n_batches and batch_size must be >= 1")
        if not 0 < change_at < n_batches:
            raise ValidationError(
                f"change_at must fall inside the stream, got {change_at} "
                f"of {n_batches} batches"
            )
        self.n_batches = int(n_batches)
        self.batch_size = int(batch_size)
        self.n_dims = int(n_dims)
        self.change_at = int(change_at)
        self.n_clusters = int(n_clusters)
        self.n_clusters_after = int(
            n_clusters if n_clusters_after is None else n_clusters_after
        )
        self.separation = float(separation)
        self.seed = seed

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = as_generator(self.seed)
        from repro.data.gaussians import _separated_centers

        before = _separated_centers(
            self.n_clusters, self.n_dims, self.separation, rng
        )
        after = _separated_centers(
            self.n_clusters_after, self.n_dims, self.separation, rng
        ) + self.separation  # disjoint placement: a genuinely new regime
        for batch_idx in range(self.n_batches):
            if batch_idx < self.change_at:
                centers, base = before, 0
            else:
                centers, base = after, self.n_clusters
            ks = rng.integers(centers.shape[0], size=self.batch_size)
            x = centers[ks] + rng.standard_normal(
                (self.batch_size, self.n_dims)
            )
            yield x, (ks + base).astype(np.int64)


def distributed_partitions(
    x: np.ndarray,
    y: Optional[np.ndarray],
    n_ranks: int,
    skew: float = 0.0,
    seed: SeedLike = None,
) -> list:
    """Deal a dataset across ``n_ranks`` sites.

    ``skew = 0`` deals rows round-robin after a shuffle (i.i.d. shards).
    ``skew = 1`` sorts by label first, so each rank sees a biased subset of
    clusters — the regime where naive per-site clustering fails but
    histogram merging still recovers the global structure.

    Returns a list of ``(x_i, y_i)`` tuples (``y_i`` is None when y is None).
    """
    if not (0.0 <= skew <= 1.0):
        raise ValidationError("skew must be in [0, 1]")
    if n_ranks < 1:
        raise ValidationError("n_ranks must be >= 1")
    x = np.asarray(x)
    m = x.shape[0]
    rng = as_generator(seed)
    if skew > 0 and y is not None:
        # Interpolate between shuffled (skew 0) and label-sorted (skew 1)
        # orderings by sorting labels perturbed with noise whose scale
        # shrinks as skew grows.
        y_arr = np.asarray(y, dtype=np.float64)
        spread = float(np.ptp(y_arr)) if m else 1.0
        noise_scale = (1.0 - skew) * max(spread, 1.0) * 2.0
        order = np.argsort(y_arr + rng.standard_normal(m) * noise_scale, kind="stable")
    else:
        order = rng.permutation(m)
    parts = []
    slices = chunk_slices(m, n_ranks)
    for start, stop in slices:
        idx = order[start:stop]
        yi = None if y is None else np.asarray(y)[idx]
        parts.append((x[idx], yi))
    return parts
