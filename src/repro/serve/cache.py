"""LRU cell-code → label cache for the serving hot path.

KeyBin2 inference is a pure function of the grid cell a point lands in:
every point with the same cell code gets the same label. Online traffic
is heavily repetitive in cell space (real queries cluster — that is the
whole premise), so a small LRU over ``(model version, cell code)`` pairs
short-circuits the cluster-table lookup for the common case and, more
importantly, gives operators a direct *cell-locality* signal: the hit
rate reported by ``stats`` tells you how concentrated live traffic is.

Keys include the model version so a registry hot-swap needs no
invalidation handshake — entries from the old version simply age out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.errors import ValidationError

__all__ = ["LabelCache"]


class LabelCache:
    """Bounded LRU mapping ``(version, cell_code) -> label``.

    Thread-safe: the serving loop and a stats scraper may touch it
    concurrently. ``maxsize=0`` disables caching (every get misses, puts
    are dropped) while keeping the call sites unconditional.
    """

    def __init__(self, maxsize: int = 65536):
        if maxsize < 0:
            raise ValidationError("maxsize must be >= 0")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, version: int, code: int) -> Optional[int]:
        """Cached label, or ``None`` (labels themselves are never None)."""
        key = (version, code)
        with self._lock:
            try:
                label = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return label

    def put(self, version: int, code: int, label: int) -> None:
        if self.maxsize == 0:
            return
        key = (version, code)
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = label
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def _hit_rate_locked(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        with self._lock:
            return self._hit_rate_locked()

    def snapshot(self) -> Dict[str, Any]:
        # All counters read under one lock acquisition so a scraper never
        # observes a torn view (e.g. a hit counted but not yet in hit_rate).
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self._hit_rate_locked(), 4),
            }

    def export_metrics(self, registry) -> None:
        """Publish one consistent snapshot as ``serve_cache_*`` gauges.

        The cache keeps its own lock-guarded counters (the hot path must
        not pay a registry hop per get); exposition surfaces call this at
        scrape time, so the gauges are as fresh as the scrape and still
        un-torn (they all come from one :meth:`snapshot`).
        """
        snap = self.snapshot()
        for key in ("size", "maxsize", "hits", "misses", "evictions", "hit_rate"):
            registry.gauge(
                f"serve_cache_{key}", f"Label cache {key} at last scrape."
            ).set(snap[key])
