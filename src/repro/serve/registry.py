"""Versioned in-process model registry with atomic hot-swap.

The registry is the serving layer's single source of truth for "which
model answers requests right now". Publishing a new model is atomic with
respect to readers: :meth:`ModelRegistry.current` returns one immutable
:class:`ModelRecord`, so a request batch that grabbed record *v* keeps
labeling with *v* even if *v+1* lands mid-batch — every response is
labeled by exactly one version, old or new, never a mixture.

Writers (a :meth:`StreamingKeyBin2.refresh` consolidation thread, a
``reload`` RPC re-reading an atomically-saved model file) serialize on an
internal lock; readers never block.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.model import KeyBin2Model
from repro.errors import ServeError, ValidationError

__all__ = ["ModelRecord", "ModelRegistry"]


@dataclass(frozen=True)
class ModelRecord:
    """One published model version (immutable snapshot).

    Attributes
    ----------
    version:
        Monotonically increasing integer, starting at 1.
    model:
        The fitted :class:`KeyBin2Model`. Treated as read-only once
        published.
    fingerprint:
        Content hash of the model's predictive state (see
        :meth:`KeyBin2Model.fingerprint`).
    published_at:
        Wall-clock publish time (``time.time()``).
    tag:
        Optional human label ("nightly", "refresh-42", ...).
    """

    version: int
    model: KeyBin2Model
    fingerprint: str
    published_at: float
    tag: Optional[str] = None

    @property
    def n_features(self) -> int:
        """Raw input dimensionality this model expects from ``predict``."""
        m = self.model
        return (
            int(m.projection.shape[0]) if m.projection is not None
            else int(m.kept_dims.size)
        )

    def info(self) -> Dict[str, Any]:
        """JSON-friendly summary (what the ``model-info`` RPC returns)."""
        m = self.model
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "tag": self.tag,
            "published_at": self.published_at,
            "n_clusters": int(m.n_clusters),
            "n_features": self.n_features,
            "n_projected_dims": int(m.n_projected_dims),
            "depth": int(m.depth),
            "score": float(m.score),
            "n_points_fit": int(m.n_points_fit),
        }


class ModelRegistry:
    """Thread-safe versioned registry of :class:`KeyBin2Model` instances.

    Parameters
    ----------
    max_history:
        How many superseded records to retain (for ``rollback`` and
        debugging). The current record is always retained.

    Usage::

        reg = ModelRegistry()
        v1 = reg.publish(model)                  # -> 1
        rec = reg.current()                      # snapshot; never blocks
        skb.refresh(publish_to=reg)              # streaming hot-swap
    """

    def __init__(self, max_history: int = 8):
        if max_history < 0:
            raise ValidationError("max_history must be >= 0")
        self.max_history = int(max_history)
        self._lock = threading.Lock()
        self._current: Optional[ModelRecord] = None
        self._history: List[ModelRecord] = []
        self._next_version = 1
        self._subscribers: List[Callable[[ModelRecord], None]] = []
        self.swaps = 0
        self.subscriber_errors = 0

    # -- write side ----------------------------------------------------------

    def publish(self, model: KeyBin2Model, tag: Optional[str] = None) -> int:
        """Install ``model`` as the new current version; returns the version.

        The swap itself is a single reference assignment under the lock, so
        concurrent readers see either the old record or the new one in
        full — never a partially constructed state.
        """
        if not isinstance(model, KeyBin2Model):
            raise ValidationError(
                f"registry only serves KeyBin2Model, got {type(model).__name__}"
            )
        fingerprint = model.fingerprint()  # hash outside the lock; it is slow-ish
        with self._lock:
            record = ModelRecord(
                version=self._next_version,
                model=model,
                fingerprint=fingerprint,
                published_at=time.time(),
                tag=tag,
            )
            self._next_version += 1
            if self._current is not None:
                self._history.append(self._current)
                if len(self._history) > self.max_history:
                    del self._history[: len(self._history) - self.max_history]
                self.swaps += 1
            self._current = record
            subscribers = list(self._subscribers)
        for callback in subscribers:
            # A raising subscriber must not wedge publication: the swap
            # already happened (readers see the new record), the remaining
            # subscribers still deserve their notification, and the
            # publisher (a refresh thread, a reload RPC) must get its
            # version back. Failures are counted, not propagated.
            try:
                callback(record)
            except Exception:
                with self._lock:
                    self.subscriber_errors += 1
        return record.version

    def rollback(self, version: Optional[int] = None) -> int:
        """Republish a retained older version (default: the previous one).

        The rolled-back model gets a *new* version number — versions only
        move forward, which keeps "which model labeled this response"
        unambiguous in logs.
        """
        with self._lock:
            candidates = list(self._history)
        if not candidates:
            raise ServeError("no superseded versions retained; cannot roll back")
        if version is None:
            target = candidates[-1]
        else:
            matches = [r for r in candidates if r.version == version]
            if not matches:
                raise ServeError(
                    f"version {version} not in retained history "
                    f"{[r.version for r in candidates]}"
                )
            target = matches[0]
        return self.publish(target.model, tag=f"rollback-of-v{target.version}")

    def subscribe(self, callback: Callable[[ModelRecord], None]) -> None:
        """Register ``callback(record)`` to run after every publish."""
        with self._lock:
            self._subscribers.append(callback)

    # -- read side -----------------------------------------------------------

    def current(self) -> ModelRecord:
        """The live record. Raises :class:`ServeError` before first publish."""
        record = self._current  # single read; GIL-atomic reference load
        if record is None:
            raise ServeError("registry is empty; publish a model first")
        return record

    def current_or_none(self) -> Optional[ModelRecord]:
        return self._current

    def get(self, version: int) -> ModelRecord:
        """Look up a specific retained version (current or history)."""
        with self._lock:
            if self._current is not None and self._current.version == version:
                return self._current
            for record in reversed(self._history):
                if record.version == version:
                    return record
        raise ServeError(f"version {version} is not retained")

    def versions(self) -> List[int]:
        """Retained version numbers, oldest first (current last)."""
        with self._lock:
            out = [r.version for r in self._history]
            if self._current is not None:
                out.append(self._current.version)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._history) + (self._current is not None)

    def info(self) -> Dict[str, Any]:
        """JSON-friendly registry summary."""
        record = self._current
        return {
            "current": None if record is None else record.info(),
            "retained_versions": self.versions(),
            "swaps": self.swaps,
        }
