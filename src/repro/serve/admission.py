"""Admission control and overload protection for the serving front-end.

Backpressure (the micro-batcher's bounded queue) alone is a blunt
instrument: under sustained overload every queued request eventually
times out, each one having burned queue space and model time first. This
module adds the three mechanisms a production front-end layers *ahead of*
the queue so overload degrades into fast, explicit rejections:

* :class:`AdmissionController` — a token bucket (sustained request rate +
  burst) and a max-in-flight bound. A request that cannot be admitted is
  *shed* immediately with :class:`~repro.errors.ShedError`, before it
  costs anything. Draining (graceful shutdown) is just a third shed
  reason.
* deadline resolution (:func:`resolve_deadline`) — turns a request's
  relative ``deadline_ms`` budget into an absolute monotonic deadline the
  batcher can shed against.
* :class:`CircuitBreaker` — trips open after ``threshold`` *consecutive*
  model errors, fails predicts fast while open, and half-opens after a
  cooldown to probe with a single request. A broken hot-swapped model
  turns into immediate ``circuit_open`` rejections instead of a pile-up
  of queued requests all discovering the same failure.

Priority is expressed by *which operations consult the controller*: the
server only gates ``predict``; ``healthz``, ``metrics``, ``stats``,
``model-info`` and the admin ops always bypass shedding so operators can
observe and manage an overloaded server.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import CircuitOpenError, ShedError, ValidationError
from repro.serve.stats import ServeStats

__all__ = [
    "AdmissionPolicy",
    "AdmissionController",
    "CircuitBreaker",
    "RetryBudget",
    "resolve_deadline",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Admission knobs. The default admits everything (no behavior change).

    Attributes
    ----------
    rate:
        Sustained admitted-request rate (requests/second) of the token
        bucket. ``None`` disables rate limiting.
    burst:
        Bucket capacity: how many requests above the sustained rate a
        short spike may land before shedding starts. Ignored when
        ``rate`` is ``None``.
    max_in_flight:
        Bound on concurrently admitted predicts (admitted but not yet
        answered). ``None`` disables the bound.
    default_deadline_ms:
        Deadline applied to requests that carry none. ``None`` means
        requests without a deadline never expire server-side.
    max_deadline_ms:
        Clamp on client-supplied deadlines, so one client cannot park
        work in the queue for minutes.
    """

    rate: Optional[float] = None
    burst: int = 100
    max_in_flight: Optional[int] = None
    default_deadline_ms: Optional[float] = None
    max_deadline_ms: float = 60_000.0

    def __post_init__(self):
        if self.rate is not None and self.rate <= 0:
            raise ValidationError("admission rate must be > 0 (or None)")
        if self.burst < 1:
            raise ValidationError("admission burst must be >= 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValidationError("max_in_flight must be >= 1 (or None)")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValidationError("default_deadline_ms must be > 0 (or None)")
        if self.max_deadline_ms <= 0:
            raise ValidationError("max_deadline_ms must be > 0")


class AdmissionController:
    """Token bucket + in-flight bound + drain flag, with shed accounting.

    Thread-safe (one tiny lock) so a drain initiated from another thread
    races cleanly with the event loop admitting requests. ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        stats: Optional[ServeStats] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or AdmissionPolicy()
        self.stats = stats
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(self.policy.burst)
        self._last_refill = clock()
        self._in_flight = 0
        self._draining = False
        self._shed: Dict[str, int] = {}

    # -- state -----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def shed_counts(self) -> Dict[str, int]:
        """Sheds so far by reason (``draining`` / ``rate`` / ``in_flight``)."""
        with self._lock:
            return dict(self._shed)

    def start_draining(self) -> None:
        """Stop admitting new predicts; already-admitted work keeps flowing."""
        self._draining = True

    # -- admission -------------------------------------------------------

    def _refill(self, now: float) -> None:
        # Called under the lock. rate is not None here.
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                float(self.policy.burst), self._tokens + elapsed * self.policy.rate
            )
            self._last_refill = now

    def _shed_with(self, reason: str) -> None:
        self._shed[reason] = self._shed.get(reason, 0) + 1
        if self.stats is not None:
            self.stats.record_shed(reason)
        raise ShedError(
            f"request shed ({reason}): server is "
            + ("draining" if reason == "draining" else "over capacity")
        )

    def try_admit(self) -> None:
        """Admit one predict or raise :class:`~repro.errors.ShedError`.

        On success the caller owns one in-flight slot and MUST pair this
        with :meth:`release` (try/finally) once a terminal response is
        produced.
        """
        with self._lock:
            if self._draining:
                self._shed_with("draining")
            if (
                self.policy.max_in_flight is not None
                and self._in_flight >= self.policy.max_in_flight
            ):
                self._shed_with("in_flight")
            if self.policy.rate is not None:
                self._refill(self._clock())
                if self._tokens < 1.0:
                    self._shed_with("rate")
                self._tokens -= 1.0
            self._in_flight += 1
            if self.stats is not None:
                self.stats.set_in_flight(self._in_flight)

    def release(self) -> None:
        """Return the in-flight slot taken by a successful :meth:`try_admit`."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            if self.stats is not None:
                self.stats.set_in_flight(self._in_flight)


class CircuitBreaker:
    """Trip on consecutive model errors; fail fast; half-open to probe.

    States: *closed* (normal), *open* (every :meth:`allow` raises
    :class:`~repro.errors.CircuitOpenError` until ``cooldown_s`` passes),
    *half-open* (exactly one probe request is admitted; its outcome closes
    or re-opens the breaker). Only genuine model failures should be
    recorded — validation errors and sheds say nothing about model health.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        stats: Optional[ServeStats] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValidationError("circuit threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValidationError("circuit cooldown_s must be > 0")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.stats = stats
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> None:
        """Gate one predict; raises :class:`~repro.errors.CircuitOpenError`."""
        with self._lock:
            if self._state == "closed":
                return
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_s:
                    raise CircuitOpenError(
                        f"circuit open after {self._consecutive_failures} "
                        f"consecutive model errors; retrying in "
                        f"{self.cooldown_s - (now - self._opened_at):.2f}s"
                    )
                self._state = "half_open"
                self._probe_in_flight = False
                self._export_state()
            # half-open: admit exactly one probe at a time.
            if self._probe_in_flight:
                raise CircuitOpenError("circuit half-open; probe in flight")
            self._probe_in_flight = True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != "closed":
                self._state = "closed"
                self._export_state()

    def record_neutral(self) -> None:
        """Outcome that says nothing about model health (validation, shed).

        Frees a half-open probe slot without closing or re-opening the
        breaker, so a garbage request arriving during the probe window
        cannot wedge the breaker in half-open forever.
        """
        with self._lock:
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            tripped = (
                self._state == "half_open"
                or (
                    self._state == "closed"
                    and self._consecutive_failures >= self.threshold
                )
            )
            if tripped:
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1
                if self.stats is not None:
                    self.stats.record_circuit_trip()
                self._export_state()

    def _export_state(self) -> None:
        # Called under the lock; 0=closed, 1=half-open, 2=open.
        if self.stats is not None:
            code = {"closed": 0, "half_open": 1, "open": 2}[self._state]
            self.stats.set_circuit_state(code)


class RetryBudget:
    """Windowed retry budget: retries may cost at most a fraction of load.

    During a partition every failed request turns into ``max_failovers``
    router retries plus the client's own retry loop — the classic retry
    storm, where the *recovery* traffic is what keeps the fleet down. The
    budget caps aggregate retries at ``ratio`` × the windowed request
    rate (plus a small ``min_retries`` floor so a single failure on an
    idle fleet can still retry). Beyond that, callers shed instead of
    amplifying.

    Accounting uses two fixed buckets of ``window_s`` each: the current
    bucket fills, the previous one decays linearly as the window slides —
    constant memory, no timestamp deque, same shape Envoy's retry budget
    uses. Thread-safe; ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        ratio: float = 0.2,
        min_retries: int = 3,
        window_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not (0 <= ratio <= 1):
            raise ValidationError("retry budget ratio must be in [0, 1]")
        if min_retries < 0:
            raise ValidationError("retry budget min_retries must be >= 0")
        if window_s <= 0:
            raise ValidationError("retry budget window_s must be > 0")
        self.ratio = float(ratio)
        self.min_retries = int(min_retries)
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._epoch = clock()
        self._requests = [0.0, 0.0]   # [previous bucket, current bucket]
        self._retries = [0.0, 0.0]
        self.exhausted = 0

    def _roll(self, now: float) -> float:
        # Called under the lock. Returns the current bucket's fill
        # fraction; slides buckets forward as whole windows elapse.
        elapsed = now - self._epoch
        while elapsed >= self.window_s:
            self._requests = [self._requests[1], 0.0]
            self._retries = [self._retries[1], 0.0]
            self._epoch += self.window_s
            elapsed -= self.window_s
            if elapsed >= self.window_s:
                # More than two whole windows elapsed: nothing the
                # buckets held is still inside the sliding window.
                self._requests = [0.0, 0.0]
                self._retries = [0.0, 0.0]
                self._epoch = now
                elapsed = 0.0
        return elapsed / self.window_s

    def _windowed(self, buckets, frac: float) -> float:
        # Previous bucket decays as the current one fills: a smooth
        # sliding-window estimate from two counters.
        return buckets[0] * (1.0 - frac) + buckets[1]

    def note_request(self, n: int = 1) -> None:
        """Count ``n`` first-attempt requests toward the window."""
        with self._lock:
            self._roll(self._clock())
            self._requests[1] += n

    def try_spend(self) -> bool:
        """Reserve one retry; ``False`` means shed instead of retrying."""
        with self._lock:
            frac = self._roll(self._clock())
            retries = self._windowed(self._retries, frac)
            allowed = max(
                float(self.min_retries),
                self.ratio * self._windowed(self._requests, frac),
            )
            if retries >= allowed:
                self.exhausted += 1
                return False
            self._retries[1] += 1
            return True

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            frac = self._roll(self._clock())
            return {
                "requests": round(self._windowed(self._requests, frac), 2),
                "retries": round(self._windowed(self._retries, frac), 2),
                "exhausted": self.exhausted,
            }


def resolve_deadline(
    request: Dict[str, Any],
    policy: AdmissionPolicy,
    now: Optional[float] = None,
) -> Optional[float]:
    """Absolute monotonic deadline for one request, or ``None``.

    Reads the request's relative ``deadline_ms`` budget (falling back to
    the policy default), clamps it to ``max_deadline_ms``, and anchors it
    at ``now``. Raises :class:`~repro.errors.ValidationError` on a
    non-numeric or non-positive budget — a garbage deadline is a client
    bug, not an overload signal.
    """
    ms = request.get("deadline_ms", policy.default_deadline_ms)
    if ms is None:
        return None
    if isinstance(ms, bool) or not isinstance(ms, (int, float)):
        raise ValidationError("'deadline_ms' must be a positive number")
    ms = float(ms)
    if not ms > 0:
        raise ValidationError("'deadline_ms' must be a positive number")
    ms = min(ms, policy.max_deadline_ms)
    anchor = time.monotonic() if now is None else now
    return anchor + ms / 1000.0
