"""Online model serving for fitted KeyBin2 models.

A fitted :class:`~repro.core.model.KeyBin2Model` is a few-KB artifact
that labels points by key → cell lookup without touching training data —
cheap enough to serve online. This subpackage turns that property into a
deployable service:

registry    versioned in-process model registry with atomic hot-swap
batcher     micro-batching queue coalescing single-point predicts
admission   token-bucket admission control, deadlines, circuit breaker
cache       LRU cell-code → label cache (version-keyed)
server      stdlib-only asyncio TCP/JSON server + inference pipeline
client      blocking and asyncio clients for the wire protocol
loadgen     closed/open-loop load generator + per-outcome report
stats       serving metrics (throughput, batch histogram, hit rate)

Quickstart::

    from repro.serve import ModelRegistry, serve_in_thread, ServeClient

    registry = ModelRegistry()
    registry.publish(model)                      # or skb.refresh(publish_to=registry)
    with serve_in_thread(registry) as handle:
        with ServeClient(*handle.address) as client:
            print(client.predict(x[0]).label)

or from the command line: ``python -m repro serve --model model.json``.
"""

from __future__ import annotations

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    resolve_deadline,
)
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.cache import LabelCache
from repro.serve.client import (
    AsyncServeClient,
    PredictResult,
    ServeClient,
    async_probe,
    probe,
)
from repro.serve.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.server import (
    InferenceService,
    ModelServer,
    ServerHandle,
    serve_in_thread,
)
from repro.serve.stats import ServeStats

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CircuitBreaker",
    "resolve_deadline",
    "BatchPolicy",
    "MicroBatcher",
    "LabelCache",
    "AsyncServeClient",
    "PredictResult",
    "ServeClient",
    "async_probe",
    "probe",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "ModelRecord",
    "ModelRegistry",
    "InferenceService",
    "ModelServer",
    "ServerHandle",
    "serve_in_thread",
    "ServeStats",
]
