"""Closed- and open-loop load generation against a model server.

Two canonical traffic shapes from the serving literature:

* **closed loop** — ``n_clients`` virtual users, each waiting for its
  response before sending the next request. Throughput is
  concurrency-limited; this is what "N threads hammering the service"
  looks like and what gives micro-batching its coalescing opportunity.
* **open loop** — requests fired on a fixed schedule (``rate`` per
  second) regardless of completions, the right model for independent
  external arrivals; latency degrades visibly when the server saturates
  instead of the load silently self-throttling.

Both record per-request latency, failures, and the set of model versions
observed, so a hot-swap test can assert "zero failed requests and every
response labeled by exactly one version, old or new".

Failures are bucketed by *outcome* — ``shed``, ``deadline_exceeded``,
``circuit_open``, ``queue_full``, ``timeout``, ``error`` — because an
overload benchmark needs to assert that the server degraded the intended
way (explicit shedding) rather than the pathological way (client
timeouts). A report that lumped them together could not tell the two
apart.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ShedError,
)
from repro.serve.client import AsyncServeClient
from repro.serve.stats import quantiles
from repro.util.validation import check_array_2d

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]

#: Outcome buckets, in render order. ``ok`` first; the rest are failures.
OUTCOMES = (
    "ok", "shed", "deadline_exceeded", "circuit_open", "queue_full",
    "timeout", "error",
)


def _classify(exc: BaseException) -> str:
    """Map one request failure to its outcome bucket."""
    if isinstance(exc, ShedError):
        return "shed"
    if isinstance(exc, DeadlineExceededError):
        return "deadline_exceeded"
    if isinstance(exc, CircuitOpenError):
        return "circuit_open"
    if isinstance(exc, QueueFullError):
        return "queue_full"
    if isinstance(exc, asyncio.TimeoutError):
        return "timeout"
    return "error"


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    requests_sent: int = 0
    requests_ok: int = 0
    requests_failed: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    versions_seen: Set[int] = field(default_factory=set)
    errors: List[str] = field(default_factory=list)
    outcomes: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in OUTCOMES}
    )

    @property
    def throughput_rps(self) -> float:
        return self.requests_ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shed_total(self) -> int:
        """Explicit server-side rejections (the *intended* overload path)."""
        return (
            self.outcomes["shed"]
            + self.outcomes["deadline_exceeded"]
            + self.outcomes["circuit_open"]
            + self.outcomes["queue_full"]
        )

    def latency_quantiles(self) -> Dict[str, float]:
        return quantiles(self.latencies_s)

    def render(self) -> str:
        q = self.latency_quantiles()
        shown = {k: v for k, v in self.outcomes.items() if v}
        lines = [
            f"loadgen ({self.mode} loop)",
            f"  requests: {self.requests_ok} ok / {self.requests_failed} failed "
            f"of {self.requests_sent} in {self.duration_s:.3f}s",
            f"  outcomes: "
            + "  ".join(f"{k}={shown[k]}" for k in OUTCOMES if k in shown),
            f"  throughput: {self.throughput_rps:,.0f} req/s",
            f"  latency: p50={q['p50'] * 1e3:.2f}ms  p90={q['p90'] * 1e3:.2f}ms  "
            f"p99={q['p99'] * 1e3:.2f}ms",
            f"  model versions seen: {sorted(self.versions_seen)}",
        ]
        if self.errors:
            lines.append(f"  first errors: {self.errors[:3]}")
        return "\n".join(lines)

    def _record_ok(self, latency_s: float, version: int) -> None:
        self.requests_ok += 1
        self.outcomes["ok"] += 1
        self.latencies_s.append(latency_s)
        self.versions_seen.add(version)

    def _record_failure(self, exc: BaseException) -> None:
        self.requests_failed += 1
        self.outcomes[_classify(exc)] += 1
        self.errors.append(str(exc) or type(exc).__name__)


def _request_pool(points: np.ndarray) -> np.ndarray:
    points = check_array_2d(points, "points")
    if points.shape[0] == 0:
        raise ServeError("loadgen needs at least one point to send")
    return np.asarray(points, dtype=np.float64)


async def _send_one(
    client: AsyncServeClient,
    row: np.ndarray,
    report: LoadReport,
    deadline_ms: Optional[float],
    request_timeout_s: Optional[float],
) -> None:
    """One request → exactly one report entry (ok or bucketed failure)."""
    report.requests_sent += 1
    t0 = time.perf_counter()
    try:
        coro = client.predict(row, deadline_ms=deadline_ms)
        if request_timeout_s is not None:
            result = await asyncio.wait_for(coro, request_timeout_s)
        else:
            result = await coro
    except asyncio.TimeoutError as exc:
        report._record_failure(exc)
        # The response may still arrive later and desync this pipelined
        # connection; drop it and reconnect before the next request.
        await client.close()
        try:
            await client.connect()
        except ServeError:
            pass  # next send will fail and be bucketed as "error"
    except (ConnectionLostError, OSError) as exc:
        # Transport died under us (e.g. the server hard-closed during a
        # drain cutoff, or a replica was killed). The client surfaces it
        # typed; either way: exactly one terminal outcome per request,
        # then reconnect so the next request gets a fresh verdict.
        report._record_failure(exc)
        await client.close()
        try:
            await client.connect()
        except ServeError:
            pass
    except ServeError as exc:
        report._record_failure(exc)
    else:
        report._record_ok(time.perf_counter() - t0, result.version)


async def _closed_loop_async(
    host: str,
    port: int,
    points: np.ndarray,
    n_requests: int,
    n_clients: int,
    deadline_ms: Optional[float],
    request_timeout_s: Optional[float],
) -> LoadReport:
    report = LoadReport(mode="closed")
    pool = _request_pool(points)
    counter = {"next": 0}

    async def worker(client_idx: int) -> None:
        client = AsyncServeClient(host, port)
        await client.connect()
        try:
            while True:
                i = counter["next"]
                if i >= n_requests:
                    return
                counter["next"] = i + 1
                row = pool[i % pool.shape[0]]
                await _send_one(client, row, report, deadline_ms,
                                request_timeout_s)
        finally:
            await client.close()

    t_start = time.perf_counter()
    await asyncio.gather(*(worker(c) for c in range(max(1, n_clients))))
    report.duration_s = time.perf_counter() - t_start
    return report


async def _open_loop_async(
    host: str,
    port: int,
    points: np.ndarray,
    rate: float,
    duration_s: float,
    n_connections: int,
    deadline_ms: Optional[float],
    request_timeout_s: Optional[float],
) -> LoadReport:
    report = LoadReport(mode="open")
    pool = _request_pool(points)
    if rate <= 0:
        raise ServeError("open-loop rate must be > 0 requests/s")
    clients = [AsyncServeClient(host, port) for _ in range(max(1, n_connections))]
    for client in clients:
        await client.connect()
    in_flight: List[asyncio.Task] = []

    interval = 1.0 / rate
    t_start = time.perf_counter()
    i = 0
    try:
        while True:
            now = time.perf_counter()
            if now - t_start >= duration_s:
                break
            # Arrival schedule is fixed a priori — the defining open-loop
            # property: we do NOT wait for completions before the next send.
            target = t_start + i * interval
            delay = target - now
            if delay > 0:
                await asyncio.sleep(delay)
            row = pool[i % pool.shape[0]]
            client = clients[i % len(clients)]
            in_flight.append(asyncio.ensure_future(
                _send_one(client, row, report, deadline_ms, request_timeout_s)
            ))
            i += 1
        if in_flight:
            await asyncio.gather(*in_flight)
    finally:
        for client in clients:
            await client.close()
    report.duration_s = time.perf_counter() - t_start
    return report


def run_closed_loop(
    host: str,
    port: int,
    points: np.ndarray,
    n_requests: int = 1000,
    n_clients: int = 16,
    deadline_ms: Optional[float] = None,
    request_timeout_s: Optional[float] = None,
) -> LoadReport:
    """Closed-loop run: ``n_clients`` users, one outstanding request each.

    ``deadline_ms`` attaches a latency budget to every request (the server
    sheds expired work explicitly); ``request_timeout_s`` is the client's
    own patience, after which the request counts as ``timeout`` — a
    healthy overload run has many ``shed`` and zero ``timeout`` outcomes.
    """
    return asyncio.run(
        _closed_loop_async(host, port, points, n_requests, n_clients,
                           deadline_ms, request_timeout_s)
    )


def run_open_loop(
    host: str,
    port: int,
    points: np.ndarray,
    rate: float = 2000.0,
    duration_s: float = 1.0,
    n_connections: int = 16,
    deadline_ms: Optional[float] = None,
    request_timeout_s: Optional[float] = None,
) -> LoadReport:
    """Open-loop run: fire ``rate`` req/s for ``duration_s`` seconds."""
    return asyncio.run(
        _open_loop_async(host, port, points, rate, duration_s, n_connections,
                         deadline_ms, request_timeout_s)
    )
