"""Closed- and open-loop load generation against a model server.

Two canonical traffic shapes from the serving literature:

* **closed loop** — ``n_clients`` virtual users, each waiting for its
  response before sending the next request. Throughput is
  concurrency-limited; this is what "N threads hammering the service"
  looks like and what gives micro-batching its coalescing opportunity.
* **open loop** — requests fired on a fixed schedule (``rate`` per
  second) regardless of completions, the right model for independent
  external arrivals; latency degrades visibly when the server saturates
  instead of the load silently self-throttling.

Both record per-request latency, failures, and the set of model versions
observed, so a hot-swap test can assert "zero failed requests and every
response labeled by exactly one version, old or new".
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import ServeError
from repro.serve.client import AsyncServeClient
from repro.serve.stats import quantiles
from repro.util.validation import check_array_2d

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    requests_sent: int = 0
    requests_ok: int = 0
    requests_failed: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    versions_seen: Set[int] = field(default_factory=set)
    errors: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests_ok / self.duration_s if self.duration_s > 0 else 0.0

    def latency_quantiles(self) -> Dict[str, float]:
        return quantiles(self.latencies_s)

    def render(self) -> str:
        q = self.latency_quantiles()
        lines = [
            f"loadgen ({self.mode} loop)",
            f"  requests: {self.requests_ok} ok / {self.requests_failed} failed "
            f"of {self.requests_sent} in {self.duration_s:.3f}s",
            f"  throughput: {self.throughput_rps:,.0f} req/s",
            f"  latency: p50={q['p50'] * 1e3:.2f}ms  p90={q['p90'] * 1e3:.2f}ms  "
            f"p99={q['p99'] * 1e3:.2f}ms",
            f"  model versions seen: {sorted(self.versions_seen)}",
        ]
        if self.errors:
            lines.append(f"  first errors: {self.errors[:3]}")
        return "\n".join(lines)


def _request_pool(points: np.ndarray) -> np.ndarray:
    points = check_array_2d(points, "points")
    if points.shape[0] == 0:
        raise ServeError("loadgen needs at least one point to send")
    return np.asarray(points, dtype=np.float64)


async def _closed_loop_async(
    host: str,
    port: int,
    points: np.ndarray,
    n_requests: int,
    n_clients: int,
) -> LoadReport:
    report = LoadReport(mode="closed")
    pool = _request_pool(points)
    counter = {"next": 0}

    async def worker(client_idx: int) -> None:
        client = AsyncServeClient(host, port)
        await client.connect()
        try:
            while True:
                i = counter["next"]
                if i >= n_requests:
                    return
                counter["next"] = i + 1
                row = pool[i % pool.shape[0]]
                report.requests_sent += 1
                t0 = time.perf_counter()
                try:
                    result = await client.predict(row)
                except ServeError as exc:
                    report.requests_failed += 1
                    report.errors.append(str(exc))
                else:
                    report.requests_ok += 1
                    report.latencies_s.append(time.perf_counter() - t0)
                    report.versions_seen.add(result.version)
        finally:
            await client.close()

    t_start = time.perf_counter()
    await asyncio.gather(*(worker(c) for c in range(max(1, n_clients))))
    report.duration_s = time.perf_counter() - t_start
    return report


async def _open_loop_async(
    host: str,
    port: int,
    points: np.ndarray,
    rate: float,
    duration_s: float,
    n_connections: int,
) -> LoadReport:
    report = LoadReport(mode="open")
    pool = _request_pool(points)
    if rate <= 0:
        raise ServeError("open-loop rate must be > 0 requests/s")
    clients = [AsyncServeClient(host, port) for _ in range(max(1, n_connections))]
    for client in clients:
        await client.connect()
    in_flight: List[asyncio.Task] = []

    async def fire(row: np.ndarray, client: AsyncServeClient) -> None:
        report.requests_sent += 1
        t0 = time.perf_counter()
        try:
            result = await client.predict(row)
        except ServeError as exc:
            report.requests_failed += 1
            report.errors.append(str(exc))
        else:
            report.requests_ok += 1
            report.latencies_s.append(time.perf_counter() - t0)
            report.versions_seen.add(result.version)

    interval = 1.0 / rate
    t_start = time.perf_counter()
    i = 0
    try:
        while True:
            now = time.perf_counter()
            if now - t_start >= duration_s:
                break
            # Arrival schedule is fixed a priori — the defining open-loop
            # property: we do NOT wait for completions before the next send.
            target = t_start + i * interval
            delay = target - now
            if delay > 0:
                await asyncio.sleep(delay)
            row = pool[i % pool.shape[0]]
            client = clients[i % len(clients)]
            in_flight.append(asyncio.ensure_future(fire(row, client)))
            i += 1
        if in_flight:
            await asyncio.gather(*in_flight)
    finally:
        for client in clients:
            await client.close()
    report.duration_s = time.perf_counter() - t_start
    return report


def run_closed_loop(
    host: str,
    port: int,
    points: np.ndarray,
    n_requests: int = 1000,
    n_clients: int = 16,
) -> LoadReport:
    """Closed-loop run: ``n_clients`` users, one outstanding request each."""
    return asyncio.run(
        _closed_loop_async(host, port, points, n_requests, n_clients)
    )


def run_open_loop(
    host: str,
    port: int,
    points: np.ndarray,
    rate: float = 2000.0,
    duration_s: float = 1.0,
    n_connections: int = 16,
) -> LoadReport:
    """Open-loop run: fire ``rate`` req/s for ``duration_s`` seconds."""
    return asyncio.run(
        _open_loop_async(host, port, points, rate, duration_s, n_connections)
    )
