"""Online model server: asyncio TCP front-end over the serve pipeline.

Stdlib-only (asyncio + json) newline-delimited JSON protocol. One request
per line, one response per line::

    {"op": "predict", "x": [0.1, 0.2, ...]}          # single point
    {"op": "predict", "x": [[...], [...]]}           # batch of points
    {"op": "predict", "x": [...], "deadline_ms": 50} # with latency budget
    {"op": "model-info"}
    {"op": "stats"}
    {"op": "metrics"}                                # Prometheus text + JSON
    {"op": "healthz"}
    {"op": "reload", "path": "model.json", "tag": "nightly"}   # admin
    {"op": "rollback"}                                         # admin
    {"op": "rollback", "version": 3}                           # admin
    {"op": "shutdown"}                                         # admin

Admin ops (``reload``, ``rollback``, ``shutdown``) are served only on
loopback binds unless ``allow_admin=True`` — anyone who can reach the
socket could otherwise load arbitrary files, swap models, or stop the
process. ``rollback`` republishes a retained older registry version
(fresh version number, old weights) — the fleet rollout manager's
escape hatch when a canary regresses.

Responses always carry ``"ok"``; predict responses carry ``"labels"``,
``"version"`` and ``"fingerprint"`` — the exact model version that
labeled the points, which stays meaningful across hot-swaps. Failure
responses from the overload machinery additionally carry a short ``"err"``
code (``shed`` / ``deadline_exceeded`` / ``circuit_open`` /
``queue_full``) so clients classify outcomes without parsing messages.

Only ``predict`` consults admission control; every other op is a priority
lane that bypasses shedding, so health checks, metric scrapes and admin
intervention keep working on a server that is actively shedding load.

Single-point predicts flow through the :class:`MicroBatcher`, so many
concurrent clients coalesce into vectorized model calls. Multi-point
predicts are already batches and go straight to the service. The split
matters: micro-batching buys ~an order of magnitude of throughput for
the single-point case (see ``benchmarks/test_serve_throughput.py``)
while adding nothing but latency to requests that arrive pre-batched.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.model import KeyBin2Model
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ShedError,
    ValidationError,
)
from repro.obs import (
    default_registry,
    ensure_core_series,
    render_json,
    render_prometheus,
    trace,
)
from repro.obs.reqtrace import get_tracer
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    resolve_deadline,
)
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.cache import LabelCache
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.stats import ServeStats

__all__ = ["InferenceService", "ModelServer", "ServerHandle", "serve_in_thread"]


class InferenceService:
    """Registry + cache + stats composed into the predict pipeline.

    This is the transport-free core the TCP server, the in-process
    benchmarks, and the CI smoke test all share. A whole batch is labeled
    by ONE registry snapshot, taken at the top of :meth:`predict_rows` —
    the hot-swap consistency guarantee lives on that line.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        cache: Optional[LabelCache] = None,
        stats: Optional[ServeStats] = None,
    ):
        self.registry = registry
        self.cache = cache if cache is not None else LabelCache()
        self.stats = stats if stats is not None else ServeStats()
        #: Cache accounting of the most recent predict_rows call; read by
        #: the micro-batcher's flush_info hook so traced model-call spans
        #: can report batch size and cache efficacy. Plain dict replace
        #: (atomic under the GIL) — no lock on the hot path.
        self.last_flush_info: Dict[str, int] = {}

    def predict_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, ModelRecord]:
        """Label a (B × N) batch; returns ``(labels, record)``.

        The label of a point is a pure function of its grid cell, so the
        cluster-table lookup is served from the LRU per unique cell code;
        only codes never seen under this model version hit the table.
        """
        with trace.span("predict"):
            record = self.registry.current()  # one consistent snapshot per batch
            model = record.model
            with trace.span("codes"):
                codes = model.cell_codes_for(rows)
            uniq, inverse = np.unique(codes, return_inverse=True)
            uniq_labels = np.empty(uniq.size, dtype=np.int64)
            miss_positions = []
            for i, code in enumerate(uniq):
                hit = self.cache.get(record.version, int(code))
                if hit is None:
                    miss_positions.append(i)
                else:
                    uniq_labels[i] = hit
            if miss_positions:
                with trace.span("table_lookup"):
                    fresh = model.table.lookup(uniq[miss_positions])
                for pos, label in zip(miss_positions, fresh):
                    uniq_labels[pos] = label
                    self.cache.put(record.version, int(uniq[pos]), int(label))
            self.last_flush_info = {
                "unique_codes": int(uniq.size),
                "unique_misses": len(miss_positions),
            }
            return uniq_labels[inverse], record

    def predict_single(self, row: np.ndarray) -> Tuple[int, ModelRecord]:
        """One point per call — the naive loop the batcher is measured against."""
        labels, record = self.predict_rows(np.asarray(row, dtype=np.float64)[None, :])
        return int(labels[0]), record


class ModelServer:
    """Asyncio TCP server exposing a registry-backed model.

    Parameters
    ----------
    registry:
        Shared :class:`ModelRegistry`. Publishing to it (from streaming
        refresh, another thread, or the ``reload`` RPC) hot-swaps what
        this server answers with, without dropping in-flight requests.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`bound_port` after :meth:`start`).
    policy:
        Micro-batching knobs (:class:`BatchPolicy`).
    cache_size:
        LRU label-cache entries (0 disables).
    allow_admin:
        Whether the ``reload`` and ``shutdown`` ops are served. They let
        any client that can reach the socket read an arbitrary filesystem
        path or stop the process, so the default (``None``) enables them
        only on loopback binds; pass ``True`` to enable them on an
        exposed ``host`` (put real auth in front first) or ``False`` to
        disable them everywhere.
    admission:
        :class:`AdmissionPolicy` gating ``predict`` requests (rate,
        in-flight bound, deadline defaults). The default admits
        everything. Only ``predict`` consults admission — ``healthz``,
        ``metrics``, ``stats``, ``model-info`` and the admin ops always
        bypass shedding, so an overloaded server stays observable and
        manageable.
    circuit_threshold, circuit_cooldown_s:
        Circuit-breaker knobs: trip open after this many *consecutive*
        model errors; half-open one probe after the cooldown.
    drain_s:
        Hard cutoff on the graceful drain in :meth:`stop`: after this
        long, remaining in-flight requests are abandoned and the batcher
        is stopped anyway.
    """

    _LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[BatchPolicy] = None,
        cache_size: int = 65536,
        allow_admin: Optional[bool] = None,
        admission: Optional[AdmissionPolicy] = None,
        circuit_threshold: int = 5,
        circuit_cooldown_s: float = 1.0,
        drain_s: float = 5.0,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self.allow_admin = (
            host in self._LOOPBACK_HOSTS if allow_admin is None else allow_admin
        )
        self.policy = policy or BatchPolicy()
        self.stats = ServeStats()
        self.cache = LabelCache(cache_size)
        self.service = InferenceService(registry, cache=self.cache, stats=self.stats)
        self.batcher = MicroBatcher(
            self.service.predict_rows, self.policy, stats=self.stats,
            flush_info=lambda: self.service.last_flush_info,
        )
        self.admission = AdmissionController(admission, stats=self.stats)
        self.circuit = CircuitBreaker(
            circuit_threshold, circuit_cooldown_s, stats=self.stats
        )
        self.drain_s = float(drain_s)
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._writers: set = set()
        self._busy = 0  # requests between dispatch start and response write
        self.bound_port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("server already started")
        self._shutdown = asyncio.Event()
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` RPC arrives or :meth:`stop` is called."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.stop()

    async def stop(self, drain_s: Optional[float] = None) -> None:
        """Graceful drain: stop admitting, finish in-flight work, close.

        New ``predict`` requests are shed with reason ``draining`` the
        moment this is called; requests already admitted keep flowing and
        get their terminal responses. After ``drain_s`` (hard cutoff) the
        remaining work is abandoned: the batcher's own stop still flushes
        whatever it queued, so futures never hang — their responses just
        race the connection close.
        """
        if self._server is None:
            return
        self.admission.start_draining()
        self._server.close()  # no new connections
        await self._server.wait_closed()
        cutoff = time.monotonic() + (self.drain_s if drain_s is None else drain_s)
        while (
            (self.admission.in_flight > 0 or self._busy > 0)
            and time.monotonic() < cutoff
        ):
            await asyncio.sleep(0.005)
        await self.batcher.stop()  # flushes anything still pending
        for writer in list(self._writers):
            writer.close()
        self._server = None
        if self._shutdown is not None:
            self._shutdown.set()

    # -- request handling ------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                # _busy covers dispatch through response write, so a drain
                # only proceeds once every accepted request has had its
                # terminal response flushed to the socket.
                self._busy += 1
                try:
                    response = await self._dispatch(line)
                    stop_after = response.pop("_shutdown", False)
                    writer.write(json.dumps(response).encode("utf-8") + b"\n")
                    await writer.drain()
                finally:
                    self._busy -= 1
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):  # client vanished
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            self.stats.record_error()
            return {"ok": False, "error": f"malformed JSON request: {exc}"}
        if not isinstance(request, dict):
            self.stats.record_error()
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "predict":
                return await self._op_predict(request)
            if op == "model-info":
                return {"ok": True, **self.registry.current().info()}
            if op == "stats":
                return {"ok": True, **self._stats_payload()}
            if op == "metrics":
                return {"ok": True, **self._metrics_payload()}
            if op == "healthz":
                return self._op_healthz()
            if op in ("reload", "rollback", "shutdown") and not self.allow_admin:
                self.stats.record_error()
                return {
                    "ok": False,
                    "error": f"admin op {op!r} is disabled on this server "
                             "(non-loopback bind without allow_admin)",
                }
            if op == "reload":
                return await self._op_reload(request)
            if op == "rollback":
                return self._op_rollback(request)
            if op == "shutdown":
                assert self._shutdown is not None
                self._shutdown.set()
                return {"ok": True, "stopping": True, "_shutdown": True}
            self.stats.record_error()
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (QueueFullError, ShedError, CircuitOpenError) as exc:
            # Overload rejections: explicit, typed, retryable (against a
            # replica or after backoff) — and deliberately NOT counted as
            # server errors; shedding is the intended behavior.
            return {
                "ok": False,
                "error": str(exc),
                "err": exc.code,
                "retryable": True,
            }
        except DeadlineExceededError as exc:
            # Not retryable as-is: the client's budget is spent. A fresh
            # request with a fresh deadline is the client's call.
            return {"ok": False, "error": str(exc), "err": exc.code}
        except (ServeError, ValidationError) as exc:
            self.stats.record_error()
            return {"ok": False, "error": str(exc)}

    async def _op_predict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # from_wire is a no-op span unless the request carried a trace
        # context *and* this process has a tracer configured; the span's
        # exit converts any typed overload/deadline exception into an
        # error status, which the tracer always exports (sampled or not).
        t0 = time.perf_counter()
        with get_tracer().from_wire(request, "server/predict") as span:
            x = request.get("x")
            if x is None:
                raise ValidationError("predict request needs an 'x' field")
            try:
                rows = np.asarray(x, dtype=np.float64)
            except (ValueError, TypeError):
                raise ValidationError(
                    "'x' must be a numeric point or a batch of equal-length points"
                ) from None
            if rows.ndim == 1:
                rows = rows[None, :]
            if rows.ndim != 2 or rows.shape[0] == 0:
                raise ValidationError("'x' must be one point or a non-empty batch")
            # Deadline parsing happens before admission: a garbage deadline is
            # a client bug (ValidationError), not an overload signal, and must
            # not consume a token.
            deadline = resolve_deadline(request, self.admission.policy)
            with get_tracer().child_of(span, "server/admission"):
                self.admission.try_admit()  # ShedError under overload / drain
            try:
                self.stats.record_request(rows.shape[0])
                self.circuit.allow()  # CircuitOpenError while tripped
                try:
                    labels, record = await self._predict_admitted(
                        rows, deadline, span
                    )
                except (ValidationError, DeadlineExceededError, QueueFullError):
                    # Says nothing about model health — free any probe slot
                    # without moving the breaker.
                    self.circuit.record_neutral()
                    raise
                except Exception:
                    self.circuit.record_failure()
                    raise
                self.circuit.record_success()
            finally:
                self.admission.release()
            span.set_attr("rows", int(rows.shape[0]))
            span.set_attr("version", record.version)
            self.stats.record_request_latency(time.perf_counter() - t0)
            return {
                "ok": True,
                "labels": labels,
                "version": record.version,
                "fingerprint": record.fingerprint,
            }

    async def _predict_admitted(self, rows: np.ndarray, deadline, span):
        """Model-call half of predict; runs with an admission slot held."""
        if rows.shape[0] == 1:
            # Validate the lone row before it enters the micro-batcher: it
            # shares a flush (one stacked matrix, one model call) with other
            # clients' rows, and one bad row must not fail their requests.
            expected = self.registry.current().n_features
            if rows.shape[1] != expected:
                raise ValidationError(
                    f"model expects {expected} features, got {rows.shape[1]}"
                )
            if not np.all(np.isfinite(rows)):
                raise ValidationError(
                    "'x' contains non-finite value(s) (NaN/Inf)"
                )
            label, record = await self.batcher.submit(
                rows[0], deadline=deadline, trace_ctx=span.context
            )
            return [label], record
        # Pre-batched request: vectorize directly, skip the linger. The
        # batcher never sees it, so check the deadline here at dispatch.
        if deadline is not None and time.monotonic() > deadline:
            self.stats.record_deadline_expired("arrival")
            raise DeadlineExceededError("deadline expired before dispatch")
        t0 = time.perf_counter()
        arr, record = self.service.predict_rows(rows)
        service_s = time.perf_counter() - t0
        self.stats.record_batch(rows.shape[0], service_s, record.version)
        get_tracer().emit_timed(
            "server/model_call", span, service_s,
            attrs={"batch_size": int(rows.shape[0]),
                   **self.service.last_flush_info},
        )
        return [int(v) for v in arr], record

    def _op_healthz(self) -> Dict[str, Any]:
        record = self.registry.current_or_none()
        # version + fingerprint let a scraper correlate health samples with
        # metrics series across hot-swaps (the registry tracks versions).
        status = "serving" if record is not None else "no-model"
        if self.admission.draining:
            status = "draining"
        return {
            "ok": True,
            "status": status,
            "version": None if record is None else record.version,
            "fingerprint": None if record is None else record.fingerprint,
            "uptime_s": round(self.stats.uptime_s, 3),
            "queue_depth": self.batcher.queue_depth,
            "in_flight": self.admission.in_flight,
            "circuit": self.circuit.state,
        }

    async def _op_reload(self, request: Dict[str, Any]) -> Dict[str, Any]:
        path = request.get("path")
        if not path:
            raise ValidationError("reload request needs a 'path' field")
        tag = request.get("tag")

        def _load_and_publish() -> int:
            model = KeyBin2Model.load(path)
            return self.registry.publish(model, tag=tag)

        try:
            # File IO + fingerprint hashing are slow; run them off the event
            # loop so in-flight predicts keep flowing during a reload.
            version = await asyncio.to_thread(_load_and_publish)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A missing/corrupt file must not kill the connection — the
            # currently published model keeps serving.
            raise ServeError(f"reload failed for {path!r}: {exc}") from None
        return {"ok": True, "version": version}

    def _op_rollback(self, request: Dict[str, Any]) -> Dict[str, Any]:
        version = request.get("version")
        if version is not None and (
            isinstance(version, bool) or not isinstance(version, int)
        ):
            raise ValidationError("'version' must be an integer when given")
        new_version = self.registry.rollback(version)
        record = self.registry.current()
        return {
            "ok": True,
            "version": new_version,
            "fingerprint": record.fingerprint,
        }

    def _stats_payload(self) -> Dict[str, Any]:
        payload = self.stats.snapshot()
        payload["cache"] = self.cache.snapshot()
        payload["queue_depth"] = self.batcher.queue_depth
        payload["in_flight"] = self.admission.in_flight
        payload["draining"] = self.admission.draining
        payload["circuit_state"] = self.circuit.state
        payload["registry"] = self.registry.info()
        record = self.registry.current_or_none()
        payload["model_version"] = None if record is None else record.version
        payload["model_fingerprint"] = (
            None if record is None else record.fingerprint
        )
        return payload

    def _metrics_payload(self) -> Dict[str, Any]:
        """Both exposition forms over the serve + process-global registries."""
        ensure_core_series(default_registry())
        reg = self.stats.registry
        self.stats.snapshot()  # refreshes the uptime gauge
        self.cache.export_metrics(reg)
        reg.gauge(
            "serve_queue_depth", "Rows waiting in the micro-batcher."
        ).set(self.batcher.queue_depth)
        record = self.registry.current_or_none()
        reg.gauge(
            "serve_model_version", "Currently published model version."
        ).set(0 if record is None else record.version)
        reg.gauge(
            "serve_model_swaps_total", "Hot-swaps performed by the registry."
        ).set(self.registry.swaps)
        registries = [reg, default_registry()]
        return {
            "prometheus": render_prometheus(registries),
            "metrics": render_json(registries),
        }


class ServerHandle:
    """A :class:`ModelServer` running on a daemon thread (test/bench helper)."""

    def __init__(self, server: ModelServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.server = server
        self.thread = thread
        self._loop = loop

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server.bound_port is not None
        return self.server.host, self.server.bound_port

    def stop(self, timeout: float = 10.0) -> None:
        if self.thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
            except RuntimeError:  # loop already closing on its own
                pass
            self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - watchdog only
            raise ServeError("server thread failed to stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    registry: ModelRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    policy: Optional[BatchPolicy] = None,
    cache_size: int = 65536,
    startup_timeout: float = 10.0,
    allow_admin: Optional[bool] = None,
    admission: Optional[AdmissionPolicy] = None,
    circuit_threshold: int = 5,
    circuit_cooldown_s: float = 1.0,
    drain_s: float = 5.0,
) -> ServerHandle:
    """Start a :class:`ModelServer` on a background thread; block until bound.

    The returned handle is a context manager::

        with serve_in_thread(registry) as handle:
            client = ServeClient(*handle.address)
            ...
    """
    server = ModelServer(registry, host=host, port=port, policy=policy,
                         cache_size=cache_size, allow_admin=allow_admin,
                         admission=admission,
                         circuit_threshold=circuit_threshold,
                         circuit_cooldown_s=circuit_cooldown_s,
                         drain_s=drain_s)
    started = threading.Event()
    failure: Dict[str, BaseException] = {}
    loop_holder: Dict[str, asyncio.AbstractEventLoop] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def _main():
            await server.start()
            started.set()  # only after a successful bind
            await server.serve_until_shutdown()

        try:
            loop.run_until_complete(_main())
        except BaseException as exc:  # surface bind errors to the caller
            failure["exc"] = exc
        finally:
            # Released only after any failure is recorded, so the waiting
            # caller can never observe "started" with a failed-but-silent
            # bind (it would hand back a handle whose bound_port is None).
            started.set()
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise ServeError("server failed to start within timeout")
    if "exc" in failure:
        raise ServeError(f"server failed to start: {failure['exc']}")
    return ServerHandle(server, thread, loop_holder["loop"])
