"""Serving-side operational metrics.

One :class:`ServeStats` instance is shared by the micro-batcher and the
server front-end. Everything here is cheap increment-only counting on
the hot path; aggregation (throughput, histograms, quantiles) happens at
:meth:`ServeStats.snapshot` time, which is what the ``stats`` RPC
returns.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List

__all__ = ["ServeStats", "quantiles"]


def _bucket(n: int) -> int:
    """Power-of-two bucket floor for the batch-size histogram."""
    b = 1
    while b * 2 <= n:
        b *= 2
    return b


class ServeStats:
    """Counters + batch-size histogram for one serving process."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.requests_total = 0
        self.points_total = 0
        self.errors_total = 0
        self.rejected_total = 0  # backpressure rejections (queue full)
        self.batches_total = 0
        self.batched_points_total = 0
        self.service_time_s = 0.0  # time inside model predict calls
        self.batch_size_hist: Dict[int, int] = {}
        self.max_batch_seen = 0
        self.versions_served: Dict[int, int] = {}  # version -> points labeled

    # -- hot-path recording --------------------------------------------------

    def record_request(self, n_points: int) -> None:
        with self._lock:
            self.requests_total += 1
            self.points_total += int(n_points)

    def record_error(self) -> None:
        with self._lock:
            self.errors_total += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def record_batch(self, size: int, service_s: float, version: int) -> None:
        b = _bucket(max(int(size), 1))
        with self._lock:
            self.batches_total += 1
            self.batched_points_total += int(size)
            self.service_time_s += float(service_s)
            self.batch_size_hist[b] = self.batch_size_hist.get(b, 0) + 1
            if size > self.max_batch_seen:
                self.max_batch_seen = int(size)
            self.versions_served[version] = (
                self.versions_served.get(version, 0) + int(size)
            )

    # -- reporting -------------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def mean_batch_size(self) -> float:
        return (
            self.batched_points_total / self.batches_total
            if self.batches_total else 0.0
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary (the ``stats`` RPC payload)."""
        with self._lock:
            uptime = self.uptime_s
            hist = {str(k): v for k, v in sorted(self.batch_size_hist.items())}
            return {
                "uptime_s": round(uptime, 3),
                "requests_total": self.requests_total,
                "points_total": self.points_total,
                "errors_total": self.errors_total,
                "rejected_total": self.rejected_total,
                "throughput_rps": round(self.requests_total / uptime, 1)
                if uptime > 0 else 0.0,
                "batches_total": self.batches_total,
                "mean_batch_size": round(self.mean_batch_size, 2),
                "max_batch_seen": self.max_batch_seen,
                "batch_size_hist": hist,
                "service_time_s": round(self.service_time_s, 4),
                "versions_served": {
                    str(k): v for k, v in sorted(self.versions_served.items())
                },
            }


def quantiles(samples: List[float], qs=(0.5, 0.9, 0.99)) -> Dict[str, float]:
    """Empirical quantiles of a latency sample list (seconds)."""
    if not samples:
        return {f"p{int(q * 100)}": 0.0 for q in qs}
    ordered = sorted(samples)
    out = {}
    for q in qs:
        idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        out[f"p{int(q * 100)}"] = ordered[idx]
    return out
