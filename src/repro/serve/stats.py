"""Serving-side operational metrics, backed by the obs metrics registry.

One :class:`ServeStats` instance is shared by the micro-batcher and the
server front-end. Recording is cheap registry-counter increments on the
hot path; aggregation (throughput, histograms, quantiles) happens at
:meth:`ServeStats.snapshot` time, which is what the ``stats`` RPC
returns.

Since the telemetry PR, every series lives in a
:class:`~repro.obs.registry.MetricsRegistry` (private to the instance by
default, so two servers in one process never cross-count), which is what
the ``{"op": "metrics"}`` RPC renders as Prometheus text. The legacy
attribute surface (``stats.requests_total``, ``stats.versions_served``,
``snapshot()``) is preserved on top as properties.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["ServeStats", "quantiles"]

#: Power-of-two batch-size buckets: floor bucket ``b`` counts flushes of
#: size in [b, 2b); 8192 comfortably covers any sane ``max_batch``.
_BATCH_BUCKET_FLOORS = tuple(1 << i for i in range(14))


def _bucket(n: int) -> int:
    """Power-of-two bucket floor for the batch-size histogram.

    Defensive on ``n <= 0`` (empty flushes cannot happen, but a stats
    layer must never loop or throw on garbage): everything below 1 lands
    in the smallest bucket.
    """
    n = int(n)
    if n <= 1:
        return 1
    b = 1
    while b * 2 <= n:
        b *= 2
    return b


def bucket_upper_bound(floor: int) -> int:
    """Inclusive upper bound of the floor bucket (``[b, 2b)`` → ``2b − 1``)."""
    return 2 * int(floor) - 1


class ServeStats:
    """Counters + batch-size histogram for one serving process.

    Parameters
    ----------
    registry:
        Backing :class:`MetricsRegistry`. Default: a fresh private one,
        so each server instance reports only its own traffic. Pass a
        shared registry to aggregate several pipelines into one scrape
        (series then sum across instances).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._requests = reg.counter(
            "serve_requests_total", "Predict requests accepted by the front-end."
        )
        self._points = reg.counter(
            "serve_points_total", "Points contained in accepted predict requests."
        )
        self._errors = reg.counter(
            "serve_errors_total", "Requests rejected or failed with an error."
        )
        self._rejected = reg.counter(
            "serve_rejected_total", "Backpressure rejections (queue full)."
        )
        self._batches = reg.counter(
            "serve_batches_total", "Vectorized model calls (flushes)."
        )
        self._batched_points = reg.counter(
            "serve_batched_points_total", "Points labeled across all flushes."
        )
        self._service_seconds = reg.counter(
            "serve_service_seconds_total", "Seconds spent inside model predict calls."
        )
        self._batch_bucket = reg.counter(
            "serve_batch_size_batches_total",
            "Flushes per power-of-two batch-size bucket (label = bucket floor).",
            ("bucket",),
        )
        self._max_batch = reg.gauge(
            "serve_max_batch_size", "Largest flush observed (high-water mark)."
        )
        self._by_version = reg.counter(
            "serve_points_by_version_total",
            "Points labeled per model version (correlates across hot-swaps).",
            ("version",),
        )
        self._shed = reg.counter(
            "serve_shed_total",
            "Predict requests shed by admission control, by reason "
            "(rate / in_flight / draining).",
            ("reason",),
        )
        self._deadline_expired = reg.counter(
            "serve_deadline_expired_total",
            "Predict requests whose deadline expired before labeling, by "
            "where the expiry was detected (arrival / queue).",
            ("where",),
        )
        self._queue_wait = reg.histogram(
            "serve_queue_wait_seconds",
            "Time a row spent in the micro-batch queue between submit and "
            "flush (or deadline shed).",
        )
        self._request_latency = reg.histogram(
            "serve_request_seconds",
            "End-to-end server-side latency of successful predict requests "
            "(admission through labels ready). The fleet collector derives "
            "per-replica p99 from this family's bucket deltas.",
        )
        self._circuit_trips = reg.counter(
            "serve_circuit_open_total",
            "Times the server-side circuit breaker tripped open.",
        )
        reg.gauge(
            "serve_circuit_state",
            "Circuit breaker state (0=closed, 1=half-open, 2=open).",
        )
        reg.gauge(
            "serve_in_flight",
            "Admitted predict requests currently being served.",
        )
        reg.gauge("serve_uptime_seconds", "Seconds since this stats instance started.")

    # -- hot-path recording --------------------------------------------------

    def record_request(self, n_points: int) -> None:
        self._requests.inc()
        self._points.inc(int(n_points))

    def record_error(self) -> None:
        self._errors.inc()

    def record_rejected(self) -> None:
        self._rejected.inc()

    def record_batch(self, size: int, service_s: float, version: int) -> None:
        size = int(size)
        self._batches.inc()
        self._batched_points.inc(size)
        self._service_seconds.inc(float(service_s))
        self._batch_bucket.labels(bucket=_bucket(size)).inc()
        self._max_batch.set_max(size)
        self._by_version.labels(version=version).inc(size)

    def record_shed(self, reason: str) -> None:
        self._shed.labels(reason=reason).inc()

    def record_deadline_expired(self, where: str) -> None:
        self._deadline_expired.labels(where=where).inc()

    def record_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(float(seconds))

    def record_request_latency(self, seconds: float) -> None:
        self._request_latency.observe(float(seconds))

    def record_circuit_trip(self) -> None:
        self._circuit_trips.inc()

    def set_circuit_state(self, code: int) -> None:
        self.registry.gauge("serve_circuit_state").set(code)

    def set_in_flight(self, n: int) -> None:
        self.registry.gauge("serve_in_flight").set(n)

    # -- legacy attribute surface ---------------------------------------------

    @property
    def requests_total(self) -> int:
        return int(self._requests.value)

    @property
    def points_total(self) -> int:
        return int(self._points.value)

    @property
    def errors_total(self) -> int:
        return int(self._errors.value)

    @property
    def rejected_total(self) -> int:
        return int(self._rejected.value)

    @property
    def shed_total(self) -> int:
        samples = self._shed.snapshot()["samples"]
        return int(sum(s["value"] for s in samples))

    @property
    def shed_by_reason(self) -> Dict[str, int]:
        samples = self._shed.snapshot()["samples"]
        return {
            s["labels"]["reason"]: int(s["value"])
            for s in samples if s["value"]
        }

    @property
    def deadline_expired_total(self) -> int:
        samples = self._deadline_expired.snapshot()["samples"]
        return int(sum(s["value"] for s in samples))

    @property
    def batches_total(self) -> int:
        return int(self._batches.value)

    @property
    def batched_points_total(self) -> int:
        return int(self._batched_points.value)

    @property
    def service_time_s(self) -> float:
        return float(self._service_seconds.value)

    @property
    def max_batch_seen(self) -> int:
        return int(self._max_batch.value)

    @property
    def batch_size_hist(self) -> Dict[int, int]:
        """Flush counts by power-of-two bucket floor (legacy shape)."""
        samples = self._batch_bucket.snapshot()["samples"]
        return {
            int(s["labels"]["bucket"]): int(s["value"])
            for s in samples if s["value"]
        }

    @property
    def versions_served(self) -> Dict[int, int]:
        """Model version → points labeled by it."""
        samples = self._by_version.snapshot()["samples"]
        return {
            int(s["labels"]["version"]): int(s["value"])
            for s in samples if s["value"]
        }

    # -- reporting -------------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def mean_batch_size(self) -> float:
        batches = self.batches_total
        return self.batched_points_total / batches if batches else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary (the ``stats`` RPC payload)."""
        uptime = self.uptime_s
        self.registry.gauge("serve_uptime_seconds").set(uptime)
        hist = self.batch_size_hist
        wait = self._queue_wait.snapshot()["samples"][0]
        wait_count = int(wait["count"])
        return {
            "uptime_s": round(uptime, 3),
            "requests_total": self.requests_total,
            "points_total": self.points_total,
            "errors_total": self.errors_total,
            "rejected_total": self.rejected_total,
            "shed_total": self.shed_total,
            "shed_by_reason": self.shed_by_reason,
            "deadline_expired_total": self.deadline_expired_total,
            "queue_wait": {
                "count": wait_count,
                "mean_ms": round(wait["sum"] / wait_count * 1e3, 3)
                if wait_count else 0.0,
            },
            "circuit_trips_total": int(self._circuit_trips.value),
            "throughput_rps": round(self.requests_total / uptime, 1)
            if uptime > 0 else 0.0,
            "batches_total": self.batches_total,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_seen": self.max_batch_seen,
            "batch_size_hist": {str(k): v for k, v in sorted(hist.items())},
            # Inclusive upper bound per occupied bucket, so exposition
            # layers can render real histogram edges ([b, 2b) → 2b − 1).
            "batch_size_bucket_bounds": {
                str(k): bucket_upper_bound(k) for k in sorted(hist)
            },
            "service_time_s": round(self.service_time_s, 4),
            "versions_served": {
                str(k): v for k, v in sorted(self.versions_served.items())
            },
        }


def quantiles(samples: List[float], qs=(0.5, 0.9, 0.99)) -> Dict[str, float]:
    """Empirical quantiles of a latency sample list (seconds)."""
    if not samples:
        return {f"p{int(q * 100)}": 0.0 for q in qs}
    ordered = sorted(samples)
    out = {}
    for q in qs:
        idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        out[f"p{int(q * 100)}"] = ordered[idx]
    return out
