"""Clients for the :mod:`repro.serve` TCP/JSON protocol.

Two flavors over the same newline-delimited JSON wire format:

* :class:`ServeClient` — blocking socket client for scripts, notebooks
  and tests;
* :class:`AsyncServeClient` — asyncio client the load generator uses to
  keep hundreds of concurrent connections cheap.

Both raise :class:`ServeError` on protocol-level failures and surface
server-side errors as :class:`ServeError` with the server's message.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    DeadlineExceededError,
    FleetUnavailableError,
    QueueFullError,
    ServeError,
    ShedError,
)
from repro.obs import default_registry
from repro.obs.reqtrace import get_tracer, inject

__all__ = ["ServeClient", "AsyncServeClient", "PredictResult", "probe",
           "async_probe", "PROBE_TIMEOUT_S"]

#: Default budget for liveness probes: tight on purpose. A probe that
#: cannot complete a healthz round trip this fast is evidence of trouble,
#: and the router's ejection logic must not stall behind a slow probe.
PROBE_TIMEOUT_S = 1.0

#: Operations that are safe to retry on a broken connection: they do not
#: mutate server state, so replaying one after an ambiguous failure (the
#: request may or may not have been processed) is harmless. ``reload`` and
#: ``shutdown`` are deliberately absent — replaying those could swap a
#: model twice or kill a server that already restarted.
IDEMPOTENT_OPS = frozenset({"predict", "model-info", "stats", "healthz",
                            "metrics"})


# Historic internal name; the typed error now lives in repro.errors so
# the fleet router and tests can catch it without importing a private.
_ConnectionLost = ConnectionLostError


def _lost_reason(exc: OSError) -> str:
    if isinstance(exc, socket.timeout):
        return "timeout"
    if isinstance(exc, (ConnectionResetError, BrokenPipeError)):
        return "reset"
    if isinstance(exc, ConnectionRefusedError):
        return "refused"
    return "reset"


class PredictResult:
    """Labels plus the identity of the model version that produced them."""

    __slots__ = ("labels", "version", "fingerprint")

    def __init__(self, labels: List[int], version: int, fingerprint: str):
        self.labels = labels
        self.version = version
        self.fingerprint = fingerprint

    @property
    def label(self) -> int:
        """The label, for single-point predicts."""
        return self.labels[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PredictResult(labels={self.labels!r}, version={self.version}, "
            f"fingerprint={self.fingerprint!r})"
        )


def _as_payload(x: Union[np.ndarray, Sequence[float]]) -> Any:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim not in (1, 2):
        raise ServeError("predict expects one point (1-D) or a batch (2-D)")
    return arr.tolist()


#: Wire ``err`` code → typed client-side exception. Codes the client does
#: not know fall through to the generic handling below, so old clients
#: keep working against newer servers.
_ERR_TYPES = {
    "queue_full": QueueFullError,
    "shed": ShedError,
    "deadline_exceeded": DeadlineExceededError,
    "circuit_open": CircuitOpenError,
    "unavailable": FleetUnavailableError,
}


def _raise_on_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        message = response.get("error", "unknown server error")
        exc_type = _ERR_TYPES.get(response.get("err"))
        if exc_type is not None:
            raise exc_type(message)
        if response.get("retryable"):
            raise QueueFullError(message)
        raise ServeError(message)
    return response


def _predict_result(response: Dict[str, Any]) -> PredictResult:
    return PredictResult(
        labels=list(response["labels"]),
        version=int(response["version"]),
        fingerprint=str(response["fingerprint"]),
    )


class ServeClient:
    """Blocking client; one TCP connection, requests pipelined in order.

    Usable as a context manager::

        with ServeClient("127.0.0.1", 8765) as client:
            print(client.predict([0.1] * 16).label)

    With ``retries > 0``, *idempotent* operations (:data:`IDEMPOTENT_OPS`)
    transparently reconnect and retry on connection-refused / reset /
    timed-out / server-closed failures — including a connection that dies
    *mid-response*, which is safe precisely because these ops are
    idempotent. ``reload`` and ``shutdown`` are never retried: after an
    ambiguous failure the request may already have been applied, and
    replaying a mutation is worse than surfacing the error. Retries are
    counted in the obs registry
    (``serve_client_retries_total{op,reason}``), with timeouts and resets
    under distinct ``reason`` values.

    ``retry_budget`` optionally shares a
    :class:`~repro.serve.admission.RetryBudget` across clients: when a
    process runs many clients (the load generator, a batch worker pool),
    per-client retry loops multiply during an outage exactly like router
    failovers do. A budgeted client counts each first attempt and asks
    the budget before every retry; a refused retry re-raises the
    connection error immediately instead of piling on.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 30.0, retries: int = 0,
                 backoff: float = 0.05, backoff_max: float = 2.0,
                 jitter: float = 0.25, retry_seed: Optional[int] = None,
                 retry_budget=None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self.jitter = float(jitter)
        self.retry_budget = retry_budget
        if self.retries < 0 or self.backoff < 0 or not 0 <= self.jitter < 1:
            raise ServeError(
                "retries/backoff must be >= 0 and jitter in [0, 1)"
            )
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        if self.retries:
            self._with_retries("connect", self._connect)
        else:
            self._connect()

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
        except OSError as exc:
            raise _ConnectionLost(
                f"cannot connect to {self.host}:{self.port}: {exc}",
                reason=_lost_reason(exc),
            ) from exc
        self._file = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        try:
            self.close()
        except OSError:  # pragma: no cover - already dead
            pass
        self._sock = None
        self._file = None

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request dict, return the raw response dict.

        No retry at this layer: callers that want retry semantics go
        through the idempotent operation methods.
        """
        if self._file is None:
            self._connect()
        try:
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self._teardown()
            raise _ConnectionLost(
                f"connection to server lost: {exc}", reason=_lost_reason(exc)
            ) from exc
        if not line:
            self._teardown()
            raise _ConnectionLost("server closed the connection",
                                  reason="closed")
        if not line.endswith(b"\n"):
            # A partial line means the connection died mid-response —
            # feeding the fragment to json.loads would surface a decode
            # error and (worse) skip the retry path on idempotent ops.
            self._teardown()
            raise _ConnectionLost("server closed the connection mid-response",
                                  reason="reset")
        return json.loads(line)

    def _backoff_sleep(self, attempt: int) -> None:
        delay = min(self.backoff_max, self.backoff * (2.0 ** attempt))
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        if delay > 0:
            time.sleep(delay)

    def _with_retries(self, op: str, call: Any) -> Any:
        """Run ``call`` with up to ``self.retries`` reconnect-and-retry."""
        attempt = 0
        if self.retry_budget is not None:
            self.retry_budget.note_request()
        while True:
            try:
                return call()
            except _ConnectionLost as exc:
                if attempt >= self.retries:
                    raise
                if (self.retry_budget is not None
                        and not self.retry_budget.try_spend()):
                    # Budget spent: fail fast with the original error —
                    # during an outage the recovery traffic must not
                    # become the thing keeping the server down.
                    raise
                self._backoff_sleep(attempt)
                attempt += 1
                reg = default_registry()
                if reg.enabled:
                    reg.counter(
                        "serve_client_retries_total",
                        "Idempotent serve-client requests retried after a "
                        "connection failure, by operation and failure kind.",
                        ("op", "reason"),
                    ).labels(op=op, reason=exc.reason).inc()

    def _request_idempotent(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = str(payload["op"])
        assert op in IDEMPOTENT_OPS, f"{op} is not safe to retry"
        if not self.retries:
            return self.request(payload)
        return self._with_retries(op, lambda: self.request(payload))

    def close(self) -> None:
        if self._file is None:
            return
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ------------------------------------------------------------

    def predict(
        self,
        x: Union[np.ndarray, Sequence[float]],
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> PredictResult:
        payload: Dict[str, Any] = {"op": "predict", "x": _as_payload(x)}
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        if tenant is not None:
            payload["tenant"] = str(tenant)
        # Root span of the distributed trace. With no tracer configured
        # this is a shared no-op object and the payload goes out
        # byte-identical to the untraced protocol; typed server errors
        # (shed / deadline / circuit-open) carry a ``.code`` the span's
        # exit records as its status, and error spans are always exported
        # regardless of the head-based sampling decision.
        with get_tracer().root("client/predict") as span:
            if span.context is not None:
                inject(payload, span)
            response = _raise_on_error(self._request_idempotent(payload))
            result = _predict_result(response)
            span.set_attr("version", result.version)
            return result

    def model_info(self) -> Dict[str, Any]:
        return _raise_on_error(self._request_idempotent({"op": "model-info"}))

    def stats(self) -> Dict[str, Any]:
        return _raise_on_error(self._request_idempotent({"op": "stats"}))

    def metrics(self) -> Dict[str, Any]:
        """Scrape telemetry: ``{"prometheus": <text>, "metrics": <json>}``."""
        return _raise_on_error(self._request_idempotent({"op": "metrics"}))

    def healthz(self) -> Dict[str, Any]:
        return _raise_on_error(self._request_idempotent({"op": "healthz"}))

    def probe(self, timeout: float = PROBE_TIMEOUT_S) -> Dict[str, Any]:
        """Tight-deadline liveness probe on a *fresh* connection.

        Unlike :meth:`healthz` this does not reuse (or disturb) this
        client's pipelined connection and never waits ``self.timeout`` —
        a dead replica answers in at most ``timeout`` seconds with a
        typed :class:`~repro.errors.ConnectionLostError`. See
        :func:`probe`.
        """
        # Resolves to the module-level probe(): class attributes are not
        # in scope inside a method body.
        return probe(self.host, self.port, timeout=timeout)

    def reload(self, path: str, tag: Optional[str] = None) -> int:
        """Ask the server to hot-swap in a model file; returns new version."""
        response = _raise_on_error(self.request({"op": "reload", "path": str(path),
                                                 "tag": tag}))
        return int(response["version"])

    def rollback(self, version: Optional[int] = None) -> int:
        """Ask the server to republish a retained older model version.

        ``version=None`` rolls back to the previously published record;
        an explicit version must still be in the registry's history.
        Admin-gated like ``reload``. Returns the *new* version number
        (versions only move forward, even for a rollback).
        """
        payload: Dict[str, Any] = {"op": "rollback"}
        if version is not None:
            payload["version"] = int(version)
        response = _raise_on_error(self.request(payload))
        return int(response["version"])

    def shutdown(self) -> None:
        """Request a clean server shutdown (response confirms it is stopping)."""
        _raise_on_error(self.request({"op": "shutdown"}))


class AsyncServeClient:
    """Asyncio client for high-concurrency use (one connection per instance)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        # Responses come back in request order on one connection, so
        # concurrent callers must not interleave their write/read pairs.
        self._lock = asyncio.Lock()

    async def connect(self) -> "AsyncServeClient":
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ServeError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        return self

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._reader is None or self._writer is None:
            raise ServeError("client is not connected; call connect() first")
        # A replica that died between health probes must surface as a
        # typed ConnectionLostError here, never as a raw
        # ConnectionResetError / BrokenPipeError from the socket layer.
        try:
            async with self._lock:
                writer, reader = self._writer, self._reader
                if writer is None or reader is None:
                    # Another task tore this connection down (timeout
                    # recovery closes + reconnects) between our check
                    # above and acquiring the lock.
                    raise ConnectionLostError(
                        "connection closed while request was queued",
                        reason="closed",
                    )
                writer.write(json.dumps(payload).encode("utf-8") + b"\n")
                await writer.drain()
                line = await reader.readline()
        except OSError as exc:
            raise ConnectionLostError(
                f"connection to server lost: {exc}", reason=_lost_reason(exc)
            ) from exc
        if not line or not line.endswith(b"\n"):
            reason = "closed" if not line else "reset"
            raise ConnectionLostError(
                "server closed the connection"
                + ("" if not line else " mid-response"),
                reason=reason,
            )
        return json.loads(line)

    async def predict(
        self,
        x: Union[np.ndarray, Sequence[float]],
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> PredictResult:
        payload: Dict[str, Any] = {"op": "predict", "x": _as_payload(x)}
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        if tenant is not None:
            payload["tenant"] = str(tenant)
        # Same root-span discipline as the blocking client; see
        # ServeClient.predict for the sampling / error-status contract.
        with get_tracer().root("client/predict") as span:
            if span.context is not None:
                inject(payload, span)
            response = _raise_on_error(await self.request(payload))
            result = _predict_result(response)
            span.set_attr("version", result.version)
            return result

    async def healthz(self) -> Dict[str, Any]:
        return _raise_on_error(await self.request({"op": "healthz"}))

    async def stats(self) -> Dict[str, Any]:
        return _raise_on_error(await self.request({"op": "stats"}))

    async def metrics(self) -> Dict[str, Any]:
        return _raise_on_error(await self.request({"op": "metrics"}))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()


def probe(host: str, port: int,
          timeout: float = PROBE_TIMEOUT_S) -> Dict[str, Any]:
    """One tight-deadline liveness probe: connect, healthz, disconnect.

    The shared building block for the fleet router's health loop, the
    replica supervisor, and tests — one definition of "is this replica
    alive", with one timeout discipline. Uses a fresh connection on
    purpose: a cached connection can look healthy while the listener is
    gone, and accepting a new connection is part of what "alive" means.

    Returns the healthz payload. Raises :class:`ConnectionLostError`
    (``reason`` = ``refused`` / ``timeout`` / ``reset`` / ``closed``) on
    a dead or wedged server and :class:`ServeError` on a healthz-level
    failure — never a raw socket exception.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            fh = sock.makefile("rwb")
            fh.write(b'{"op": "healthz"}\n')
            fh.flush()
            line = fh.readline()
    except OSError as exc:
        raise ConnectionLostError(
            f"probe of {host}:{port} failed: {exc}", reason=_lost_reason(exc)
        ) from exc
    if not line or not line.endswith(b"\n"):
        raise ConnectionLostError(
            f"probe of {host}:{port}: server closed the connection",
            reason="closed" if not line else "reset",
        )
    return _raise_on_error(json.loads(line))


async def async_probe(host: str, port: int,
                      timeout: float = PROBE_TIMEOUT_S) -> Dict[str, Any]:
    """Asyncio twin of :func:`probe` (same semantics, same typed errors).

    The whole probe — connect, healthz round trip, close — shares one
    ``timeout`` budget, so a wedged replica costs the router's health
    loop a bounded, predictable amount of time.
    """

    async def _run() -> Dict[str, Any]:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise ConnectionLostError(
                f"probe of {host}:{port} failed: {exc}",
                reason=_lost_reason(exc),
            ) from exc
        try:
            writer.write(b'{"op": "healthz"}\n')
            await writer.drain()
            line = await reader.readline()
        except OSError as exc:
            raise ConnectionLostError(
                f"probe of {host}:{port} failed: {exc}",
                reason=_lost_reason(exc),
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - already dead
                pass
        if not line or not line.endswith(b"\n"):
            raise ConnectionLostError(
                f"probe of {host}:{port}: server closed the connection",
                reason="closed" if not line else "reset",
            )
        return _raise_on_error(json.loads(line))

    try:
        return await asyncio.wait_for(_run(), timeout)
    except asyncio.TimeoutError:
        raise ConnectionLostError(
            f"probe of {host}:{port} timed out after {timeout}s",
            reason="timeout",
        ) from None
