"""Micro-batching request queue for online inference.

The serving economics of KeyBin2 are extreme: labeling one point costs
~70 µs (a dozen small numpy calls, all fixed dispatch overhead) while
labeling 500 points in one vectorized call costs ~0.2 µs *per point*.
The :class:`MicroBatcher` exploits this by coalescing concurrent
single-point ``predict`` requests into one vectorized model call, under a
two-knob policy:

* ``max_batch`` — flush as soon as this many rows are pending;
* ``max_delay_s`` — otherwise flush after this long, bounding the latency
  a lone request can pay waiting for company.

Backpressure is a bounded pending queue: beyond ``max_queue`` waiting
rows, :meth:`submit` fails fast with :class:`QueueFullError` instead of
letting memory grow without limit during an overload.

Rows may carry an absolute monotonic *deadline*: at every flush, entries
whose deadline has passed are shed from the batch — their futures resolve
to :class:`~repro.errors.DeadlineExceededError` — *before* the model is
called, so expired requests never burn model time and never hang. The
time each row spent queued is recorded in the
``serve_queue_wait_seconds`` histogram, whether it was labeled or shed.

The batcher is transport-agnostic — the TCP server feeds it, but so do
in-process benchmarks — and model-agnostic: it calls a supplied
``predict_rows(matrix) -> (labels, record)`` function, so one consistent
model version labels every row of a flush (hot-swap safety lives in the
registry snapshot taken inside that function).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ValidationError,
)
from repro.obs import trace
from repro.obs.reqtrace import TraceContext, get_tracer
from repro.serve.stats import ServeStats

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy knobs.

    Attributes
    ----------
    max_batch:
        Flush once this many rows are pending (also the vectorization
        width the model call sees).
    max_delay_s:
        Longest a pending row waits for co-travelers before a flush is
        forced. ``0`` degenerates to one-call-per-wakeup (no added
        latency, little coalescing under light load).
    max_queue:
        Bound on rows waiting to be batched; beyond it, submissions are
        rejected with :class:`QueueFullError`.
    quiescence_s:
        Early-flush probe: while lingering, if the queue stops growing for
        this long the batch flushes immediately instead of waiting out the
        window. Under closed-loop traffic every client that will send has
        sent within a probe or two, so lone windows stop dominating
        latency. ``0`` disables the early exit (always linger the full
        window).
    """

    max_batch: int = 256
    max_delay_s: float = 0.005
    max_queue: int = 10_000
    quiescence_s: float = 0.0002

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.max_delay_s < 0:
            raise ValidationError("max_delay_s must be >= 0")
        if self.quiescence_s < 0:
            raise ValidationError("quiescence_s must be >= 0")
        if self.max_queue < self.max_batch:
            raise ValidationError("max_queue must be >= max_batch")


class MicroBatcher:
    """Coalesce awaitable single-row predictions into vectorized calls.

    Parameters
    ----------
    predict_rows:
        ``f(matrix) -> (labels, extra)`` where ``matrix`` is (B × N) and
        ``labels`` is length B. ``extra`` (e.g. a registry
        :class:`~repro.serve.registry.ModelRecord`) is handed back to every
        awaiting caller of the flush, so responses can carry the version
        that labeled them.
    policy:
        :class:`BatchPolicy` knobs.
    stats:
        Optional shared :class:`ServeStats`; per-flush batch sizes and
        service times are recorded there.

    Must be started from within a running asyncio event loop::

        batcher = MicroBatcher(service.predict_rows, BatchPolicy())
        batcher.start()
        label, record = await batcher.submit(row)
        ...
        await batcher.stop()
    """

    def __init__(
        self,
        predict_rows: Callable[[np.ndarray], Tuple[np.ndarray, Any]],
        policy: Optional[BatchPolicy] = None,
        stats: Optional[ServeStats] = None,
        flush_info: Optional[Callable[[], Dict[str, Any]]] = None,
    ):
        self.predict_rows = predict_rows
        self.policy = policy or BatchPolicy()
        self.stats = stats
        # Optional post-flush introspection hook (the server wires it to
        # the inference service's last-flush cache accounting) so traced
        # model-call spans can say whether the flush was a pure cache hit.
        self.flush_info = flush_info
        # Entries are (row, future, deadline, enqueue_time, trace_ctx);
        # deadline is an absolute time.monotonic() instant or None (never
        # expires), trace_ctx the request's wire TraceContext or None.
        self._pending: List[Tuple[np.ndarray, asyncio.Future,
                                  Optional[float], float,
                                  Optional[TraceContext]]] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        self._crashed: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "MicroBatcher":
        if self._task is not None:
            raise ServeError("batcher already started")
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._stopping = False
        self._crashed = None
        self._task = self._loop.create_task(self._worker())
        return self

    async def stop(self) -> None:
        """Drain pending work, then stop the worker."""
        if self._task is None:
            return
        self._stopping = True
        assert self._wakeup is not None
        self._wakeup.set()
        await self._task
        self._task = None

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    # -- submission ------------------------------------------------------------

    def submit_nowait(
        self, row: np.ndarray, deadline: Optional[float] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> asyncio.Future:
        """Queue one point; return the future resolving to ``(label, extra)``.

        The no-coroutine fast path: callers fanning out many rows at once
        (load generators, in-process benchmarks) avoid one coroutine object
        and one scheduling hop per request. Raises :class:`QueueFullError`
        immediately when the pending queue is at capacity (backpressure),
        and :class:`ServeError` if the batcher is not running. ``deadline``
        is an absolute ``time.monotonic()`` instant after which the row is
        shed at flush time instead of labeled.
        """
        if self._task is None or self._stopping:
            raise ServeError("batcher is not running")
        if self._crashed is not None:
            raise ServeError(
                f"batcher worker crashed and can no longer serve: "
                f"{self._crashed!r}"
            )
        if len(self._pending) >= self.policy.max_queue:
            if self.stats is not None:
                self.stats.record_rejected()
            raise QueueFullError(
                f"serving queue at capacity ({self.policy.max_queue} rows)"
            )
        assert self._loop is not None and self._wakeup is not None
        fut = self._loop.create_future()
        self._pending.append((row, fut, deadline, time.monotonic(), trace_ctx))
        self._wakeup.set()
        return fut

    async def submit(self, row: np.ndarray, deadline: Optional[float] = None,
                     trace_ctx: Optional[TraceContext] = None):
        """Queue one point; await ``(label, extra)`` from its flush."""
        return await self.submit_nowait(row, deadline=deadline,
                                        trace_ctx=trace_ctx)

    # -- worker ---------------------------------------------------------------

    async def _worker(self) -> None:
        try:
            # The worker task starts from whatever context start() ran in;
            # re-root its spans so flushes always trace as serve/flush/...
            with trace.propagate(("serve",)):
                await self._worker_loop()
        except Exception as exc:
            # _flush confines per-batch failures to that batch's futures, so
            # reaching here means the loop itself broke. Fail everything
            # pending (no client left hanging) and mark the batcher dead so
            # submit() raises instead of enqueueing rows nobody will flush.
            self._crashed = exc
            pending, self._pending = self._pending, []
            for _, fut, _, _, _ in pending:
                if not fut.done():
                    fut.set_exception(
                        ServeError(f"batcher worker crashed: {exc!r}")
                    )
            if self.stats is not None:
                self.stats.record_error()

    async def _worker_loop(self) -> None:
        assert self._wakeup is not None
        policy = self.policy
        while True:
            await self._wakeup.wait()
            if not self._pending:
                if self._stopping:
                    return
                self._wakeup.clear()
                continue
            # Linger briefly so concurrent submitters can pile on — unless
            # the batch is already full or we are draining for shutdown.
            if (
                policy.max_delay_s > 0
                and len(self._pending) < policy.max_batch
                and not self._stopping
            ):
                deadline = time.perf_counter() + policy.max_delay_s
                while (
                    len(self._pending) < policy.max_batch
                    and not self._stopping
                ):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    # Cap each nap so batch-full and stop() are noticed
                    # promptly even when the early-exit probe is disabled.
                    probe = min(
                        remaining,
                        policy.quiescence_s if policy.quiescence_s > 0 else 0.005,
                    )
                    before = len(self._pending)
                    await asyncio.sleep(probe)
                    if policy.quiescence_s > 0 and len(self._pending) == before:
                        break  # traffic went quiet — flush what we have
            batch = self._pending[: policy.max_batch]
            del self._pending[: policy.max_batch]
            if not self._pending:
                self._wakeup.clear()
                if self._stopping:
                    self._wakeup.set()  # let the loop observe the drain
            try:
                self._flush(batch)
            except Exception as exc:
                # _flush failing is a bug (it confines per-batch errors
                # itself) — but this batch is already popped, so fail its
                # futures here before the crash wrapper handles the rest.
                for _, fut, _, _, _ in batch:
                    if not fut.done():
                        fut.set_exception(
                            ServeError(f"batcher worker crashed: {exc!r}")
                        )
                raise

    def _shed_expired(self, batch: List[Tuple]) -> List[Tuple]:
        """Record queue-wait for every entry; shed the expired ones.

        Returns the still-live entries. Runs *before* the model call, so an
        expired row never burns model time and its caller gets an explicit
        :class:`DeadlineExceededError` instead of a label it no longer
        wants (or a hung future). Traced entries get their ``server/queue``
        span emitted here — for shed rows with status ``deadline_exceeded``,
        which the tracer always exports regardless of sampling.
        """
        now = time.monotonic()
        tracer = get_tracer()
        live = []
        for entry in batch:
            _, fut, deadline, t_enq, trace_ctx = entry
            wait = now - t_enq
            if self.stats is not None:
                self.stats.record_queue_wait(wait)
            if deadline is not None and now > deadline:
                if not fut.done():
                    fut.set_exception(
                        DeadlineExceededError(
                            "deadline expired while queued "
                            f"({wait * 1e3:.1f} ms in queue)"
                        )
                    )
                if self.stats is not None:
                    self.stats.record_deadline_expired("queue")
                if trace_ctx is not None and tracer.enabled:
                    tracer.emit_timed("server/queue", trace_ctx, wait,
                                      status="deadline_exceeded")
            else:
                if trace_ctx is not None and tracer.enabled:
                    tracer.emit_timed("server/queue", trace_ctx, wait)
                live.append(entry)
        return live

    def _flush(self, batch: List[Tuple]) -> None:
        batch = self._shed_expired(batch)
        if not batch:
            return
        t0 = time.perf_counter()
        try:
            # Stacking is inside the try: mismatched row lengths (callers
            # bypassing the server's per-row validation) must reject this
            # batch's futures, not kill the worker task.
            with trace.span("flush"):
                rows = np.asarray(
                    [row for row, _, _, _, _ in batch], dtype=np.float64
                )
                raw_labels, extra = self.predict_rows(rows)
                labels = [int(v) for v in raw_labels]
            if len(labels) != len(batch):
                raise ServeError(
                    f"predict_rows returned {len(labels)} labels "
                    f"for {len(batch)} rows"
                )
        except Exception as exc:
            tracer = get_tracer()
            for _, fut, _, _, trace_ctx in batch:
                if not fut.done():
                    fut.set_exception(exc)
                if trace_ctx is not None and tracer.enabled:
                    tracer.emit_timed(
                        "server/model_call", trace_ctx,
                        time.perf_counter() - t0, status="model_error",
                    )
            if self.stats is not None:
                self.stats.record_error()
            return
        service_s = time.perf_counter() - t0
        # Resolve futures before stats bookkeeping: a stats failure must
        # never strand a batch that was already labeled successfully.
        for (_, fut, _, _, _), label in zip(batch, labels):
            if not fut.done():
                fut.set_result((label, extra))
        self._emit_model_spans(batch, service_s)
        if self.stats is not None:
            version = getattr(extra, "version", -1)
            self.stats.record_batch(len(batch), service_s, version)

    def _emit_model_spans(self, batch: List[Tuple], service_s: float) -> None:
        """One ``server/model_call`` span per traced row of the flush.

        Every traced co-traveler shares the flush's service time and its
        batch/cache attributes — which is exactly the point: the trace
        shows a request's latency being amortized over the batch it rode
        in. A flush fully served from the label cache renames the hop
        ``server/cache_hit`` so cache efficacy is visible per trace.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        traced = [ctx for _, _, _, _, ctx in batch if ctx is not None]
        if not traced:
            return
        attrs: Dict[str, Any] = {"batch_size": len(batch)}
        name = "server/model_call"
        if self.flush_info is not None:
            try:
                info = dict(self.flush_info() or {})
            except Exception:  # introspection must never fail a flush
                info = {}
            attrs.update(info)
            if info.get("unique_misses") == 0:
                name = "server/cache_hit"
        for ctx in traced:
            tracer.emit_timed(name, ctx, service_s, attrs=attrs)
