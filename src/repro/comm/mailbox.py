"""Mailbox-based communicator core shared by the thread and process executors.

Each rank owns a single inbound queue. A message is the triple
``(source, tag, payload)``. ``recv(source, tag)`` drains the queue into a
local out-of-order store until a matching message appears, so messages from
different peers or with different tags can interleave arbitrarily without
deadlock — the semantics MPI programs expect.

Sends are *buffered*: ``put`` on both :class:`queue.SimpleQueue` and
:class:`multiprocessing.queues.Queue` returns without waiting for a matching
receive, which is what makes the default collectives in
:class:`~repro.comm.base.Communicator` deadlock-free.

Fault tolerance
---------------
Three extensions make the mailbox substrate recoverable:

* a receive that times out raises :class:`~repro.errors.RankFailedError`
  with ``confirmed=False`` (the peer *may* merely be slow) instead of a
  bare :class:`~repro.errors.CommError`, so one except clause catches both
  announced deaths and silent stalls;
* :meth:`MailboxComm.shrink` builds a survivor-only communicator over the
  same physical inboxes. Each shrink bumps an *epoch* that offsets every
  wire tag, so stragglers from an abandoned collective can never be
  mistaken for messages of the recovered one;
* :meth:`MailboxComm.recv_probe` is a non-raising receive with a local
  timeout, the primitive the survivor-agreement protocol
  (:mod:`repro.comm.membership`) is built from.

Straggler tolerance (slow ≠ dead)
---------------------------------
With ``suspicion_timeout`` set, a blocking receive splits its single
timeout into a soft *suspicion* deadline and the hard *failure* deadline:
on soft timeout the waiter sends a ``PING`` sentinel to the suspect and
keeps waiting; any rank that is itself blocked in a receive answers with
``PONG`` from inside its drain loop. A ``PONG`` from the awaited source
proves the peer alive and extends the hard deadline (a bounded number of
times, so a genuinely wedged peer still fails). Only the hard timeout —
or an announced death — enters survivor agreement. This is what prevents
*cascade* false positives: rank B waiting on rank A, while A is stuck
waiting on a genuinely slow rank C, would otherwise time B out against a
perfectly healthy A. A rank that is slow because it is *computing* cannot
answer pings — its direct waiters are governed by the hard deadline
alone, which is why the hard deadline must exceed the worst expected
compute stall.

PING/PONG are raw-tagged (epoch-independent) and delivered by direct
inbox puts, bypassing both traffic accounting and the fault injector:
liveness probes must not perturb deterministic chaos schedules or
communication-volume measurements. Straggler episodes are counted in
``insitu_straggler_waits_total`` / ``insitu_straggler_wait_seconds``.

An optional :class:`~repro.comm.faults.FaultInjector` hooks every send for
deterministic chaos testing (message drops, delays, slow ranks).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.comm.base import Communicator
from repro.comm.shm import ShmArrayRef, open_array, share_array, shareable
from repro.errors import CommError, RankFailedError

__all__ = ["MailboxComm"]

#: Sentinel tag announcing that a peer rank died before completing the program.
FAILURE_TAG = -999

#: Sentinel tag announcing that a peer rank abandoned the current epoch's
#: collective to run the recovery protocol. Without it, a survivor blocked
#: receiving from a *live* peer (e.g. waiting for the root's broadcast while
#: the root is off running survivor agreement) would only join the recovery
#: at its full receive timeout.
RECOVERY_TAG = -998

#: Liveness probe sent to a suspected straggler on soft (suspicion) timeout.
PING_TAG = -997

#: Liveness reply: "I am alive, merely waiting on someone else myself."
PONG_TAG = -996

#: Bound on hard-deadline extensions one receive grants a proven-alive
#: peer. Caps the livelock where a chain of mutually-waiting ranks keeps
#: extending each other forever: after this many extensions the hard
#: deadline is final even for a peer that still answers pings.
_MAX_STRAGGLER_EXTENSIONS = 8

#: Tag-space offset between epochs. Application and collective tags must
#: stay within (-_EPOCH_STRIDE/2, _EPOCH_STRIDE/2); the library's own tags
#: are all small negatives, and SPMD programs conventionally use small
#: non-negative tags.
_EPOCH_STRIDE = 1_000_000


class MailboxComm(Communicator):
    """Communicator whose backend is one inbound queue per rank.

    Parameters
    ----------
    rank, size:
        SPMD identity.
    inboxes:
        Sequence of queue-like objects (``put``/``get`` API), one per
        *physical* rank. ``inboxes[r]`` is the inbound queue of physical
        rank ``r``. All ranks share the same sequence.
    timeout:
        Seconds to wait in ``recv`` before declaring the peer lost — the
        *hard* failure deadline. ``None`` waits forever.
    injector:
        Optional :class:`~repro.comm.faults.FaultInjector` consulted on
        every send (chaos testing only).
    suspicion_timeout:
        Soft *suspicion* deadline: after this many seconds blocked in a
        receive, the waiter pings the suspect (and re-pings each further
        ``suspicion_timeout``). A ``PONG`` proves the peer alive and
        extends the hard deadline. ``None`` (default) disables probing —
        behavior is exactly the single-deadline protocol of earlier
        versions. Must be smaller than ``timeout`` to have any effect.
    shm_threshold:
        When set, top-level ndarray payloads of at least this many bytes
        travel through POSIX shared memory (:mod:`repro.comm.shm`): the
        queue carries only a tiny descriptor and the receiver maps the
        data zero-copy. ``None`` (default, and always for the threaded
        executor, which already shares an address space) keeps everything
        on the pickle path.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence[Any],
        timeout: Optional[float] = None,
        injector: Optional[Any] = None,
        suspicion_timeout: Optional[float] = None,
        shm_threshold: Optional[int] = None,
    ):
        super().__init__(rank, size)
        if len(inboxes) < size:
            raise CommError(f"need {size} inboxes, got {len(inboxes)}")
        if suspicion_timeout is not None and suspicion_timeout <= 0:
            raise CommError("suspicion_timeout must be > 0 (or None)")
        if shm_threshold is not None and shm_threshold < 1:
            raise CommError("shm_threshold must be >= 1 (or None)")
        self._inboxes = inboxes
        self._timeout = timeout
        self._suspicion_timeout = suspicion_timeout
        self._shm_threshold = shm_threshold
        # Shared (dict, not scalars) with shrunken views so straggler
        # accounting is cumulative across recovery epochs.
        self._straggler = {"waits": 0, "wait_s": 0.0}
        # Keyed by (physical source, wire tag); shared with shrunken views
        # so a message drained under one epoch is visible to the next.
        self._pending: Dict[Tuple[int, int], deque] = {}
        self.fault_injector = injector
        # Physical-rank bookkeeping. A fresh communicator is the identity
        # mapping; shrink() produces views with a sparse survivor map.
        self._physical: List[int] = list(range(size))
        self._my_physical = rank
        self._epoch = 0
        self._dead: Set[int] = set()           # physical ranks known dead
        self._failure_notices: Dict[int, str] = {}
        # epoch -> (blamed physical rank, confirmed, reason); first notice
        # per epoch wins. Shared with shrunken views so a notice drained
        # under one epoch survives into the next rank's bookkeeping.
        self._recovery_notices: Dict[int, Tuple[int, bool, str]] = {}

    # -- identity across shrinks ------------------------------------------

    @property
    def physical_rank(self) -> int:
        """This rank's index in the *original* communicator.

        Stable across :meth:`shrink`; what checkpoints and fault plans key
        on.
        """
        return self._my_physical

    @property
    def epoch(self) -> int:
        """Recovery generation: 0 at launch, +1 per survivor shrink."""
        return self._epoch

    @property
    def dead_ranks(self) -> frozenset:
        """Physical ranks confirmed dead so far."""
        return frozenset(self._dead)

    def _wire_tag(self, tag: int) -> int:
        return tag + self._epoch * _EPOCH_STRIDE

    # -- point to point ----------------------------------------------------

    def _send_impl(self, obj: Any, dest: int, tag: int) -> None:
        dest_phys = self._physical[dest]
        if self.fault_injector is not None:
            if not self.fault_injector.on_send(dest_phys, tag):
                return  # injected message drop (before shm: nothing to leak)
        if self._shm_threshold is not None and shareable(obj, self._shm_threshold):
            obj = share_array(obj)
        self._inboxes[dest_phys].put((self._my_physical, self._wire_tag(tag), obj))

    def _recv_impl(self, source: int, tag: int) -> Any:
        source_phys = self._physical[source]
        status, payload = self._drain_until(source_phys, self._wire_tag(tag),
                                            self._timeout, heed_recovery=True,
                                            allow_ping=True)
        if status == "ok":
            return payload
        if status == "recovery":
            blamed, confirmed, reason = payload
            raise RankFailedError(
                f"rank {self._my_physical}: a peer abandoned epoch "
                f"{self._epoch} to recover, blaming rank {blamed}: {reason}",
                rank=blamed,
                confirmed=confirmed,
            )
        if status == "failed":
            raise RankFailedError(
                f"rank {source_phys} failed while rank {self._my_physical} was "
                f"waiting for a message: {payload}",
                rank=source_phys,
                confirmed=True,
            )
        raise RankFailedError(
            f"rank {self._my_physical}: timed out after {self._timeout}s waiting "
            f"for a message from rank {source_phys} (tag {tag}); peer presumed "
            "failed or stalled",
            rank=source_phys,
            confirmed=False,
        )

    def recv_probe(
        self, source: int, tag: int, timeout: Optional[float]
    ) -> Tuple[str, Any]:
        """Non-raising receive with its own timeout.

        Returns ``("ok", payload)``, ``("timeout", None)``, or
        ``("failed", reason)`` when a failure sentinel *from source* (or a
        source already known dead) is seen. Failure sentinels from third
        parties are recorded in :meth:`drain_failure_notices` and do not
        abort the probe — the agreement protocol wants to keep collecting
        votes while learning about other deaths.
        """
        source_phys = self._physical[source]
        return self._drain_until(source_phys, self._wire_tag(tag), timeout)

    def _drain_until(
        self,
        source_phys: int,
        wire_tag: int,
        timeout: Optional[float],
        heed_recovery: bool = False,
        allow_ping: bool = False,
    ) -> Tuple[str, Any]:
        if heed_recovery and self._epoch in self._recovery_notices:
            # The current epoch is already abandoned: abort before blocking
            # so this rank joins the survivor agreement promptly.
            return "recovery", self._recovery_notices[self._epoch]
        key = (source_phys, wire_tag)
        box = self._pending.get(key)
        if box:
            return "ok", box.popleft()
        if source_phys in self._dead:
            return "failed", self._failure_notices.get(source_phys, "known dead")
        # Suspicion only applies to application receives (allow_ping) with
        # a finite hard deadline it can undercut; recv_probe waits belong
        # to the agreement protocol, which manages its own timeouts.
        suspicion = self._suspicion_timeout if allow_ping else None
        if suspicion is not None and (timeout is None or suspicion >= timeout):
            suspicion = None
        now = time.monotonic()
        deadline = None if timeout is None else now + timeout
        suspect_at = None if suspicion is None else now + suspicion
        suspicion_started: Optional[float] = None
        extensions = 0
        while True:
            now = time.monotonic()
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - now
                if remaining <= 0:
                    self._finish_straggler_episode(suspicion_started)
                    return "timeout", None
            wait = remaining
            if suspect_at is not None:
                to_suspect = suspect_at - now
                if to_suspect <= 0:
                    # Soft deadline passed: probe the suspect and keep
                    # waiting toward the hard deadline; re-ping each
                    # further suspicion window (the first PING may have
                    # landed while the peer was between receives).
                    self._put_raw(source_phys, PING_TAG, None)
                    if suspicion_started is None:
                        suspicion_started = now
                    suspect_at = now + suspicion
                    to_suspect = suspicion
                wait = to_suspect if wait is None else min(wait, to_suspect)
            try:
                src, msg_tag, payload = self._get(wait)
            except TimeoutError:
                continue  # re-evaluate suspicion / hard deadlines
            if isinstance(payload, ShmArrayRef):
                # Unwrap at the earliest possible moment — the attach also
                # unlinks the segment, so even a message parked in the
                # pending store can no longer leak its backing memory.
                payload = open_array(payload)
            if msg_tag == FAILURE_TAG:
                # Epoch-independent: a dying rank announces with the raw tag.
                if src not in self._dead:
                    self._dead.add(src)
                    self._failure_notices[src] = str(payload)
                if src == source_phys:
                    self._finish_straggler_episode(suspicion_started)
                    return "failed", str(payload)
                continue
            if msg_tag == RECOVERY_TAG:
                # Raw-tagged like FAILURE_TAG; the payload carries the epoch
                # the initiator abandoned. Notices for other epochs are
                # recorded but inert (a stale epoch can never come back).
                epoch, blamed, confirmed, reason = payload
                self._recovery_notices.setdefault(
                    epoch, (int(blamed), bool(confirmed), str(reason))
                )
                if heed_recovery and epoch == self._epoch:
                    self._finish_straggler_episode(suspicion_started)
                    return "recovery", self._recovery_notices[epoch]
                continue
            if msg_tag == PING_TAG:
                # Answering from inside the drain loop is the point: only a
                # rank that is itself alive-and-waiting can prove liveness.
                self._put_raw(src, PONG_TAG, None)
                continue
            if msg_tag == PONG_TAG:
                if (
                    src == source_phys
                    and suspicion_started is not None
                    and deadline is not None
                    and extensions < _MAX_STRAGGLER_EXTENSIONS
                ):
                    # The suspect is alive (blocked on someone else, not
                    # dead): grant it a fresh hard deadline.
                    extensions += 1
                    deadline = time.monotonic() + timeout
                continue  # stale pong from an earlier episode: drop
            if src == source_phys and msg_tag == wire_tag:
                self._finish_straggler_episode(suspicion_started)
                return "ok", payload
            self._pending.setdefault((src, msg_tag), deque()).append(payload)

    # -- straggler bookkeeping --------------------------------------------

    def _put_raw(self, dest_phys: int, tag: int, payload: Any) -> None:
        """Direct inbox put for liveness sentinels.

        Bypasses the fault injector (probes must not consume injected-fault
        schedule slots — chaos plans stay deterministic) and traffic
        accounting (probes are not application communication volume).
        """
        try:
            self._inboxes[dest_phys].put((self._my_physical, tag, payload))
        except Exception:  # pragma: no cover - queue already torn down
            pass

    def _finish_straggler_episode(self, started: Optional[float]) -> None:
        if started is None:
            return
        waited = time.monotonic() - started
        self._straggler["waits"] += 1
        self._straggler["wait_s"] += waited
        from repro.obs import default_registry  # local: avoid import cycle

        reg = default_registry()
        if reg.enabled:
            reg.counter(
                "insitu_straggler_waits_total",
                "Receives that passed their suspicion deadline and probed "
                "the peer before resolving.",
            ).inc()
            reg.counter(
                "insitu_straggler_wait_seconds",
                "Seconds spent waiting beyond suspicion deadlines.",
            ).inc(waited)

    @property
    def straggler_waits(self) -> int:
        """Receives that entered a suspicion episode (cumulative)."""
        return int(self._straggler["waits"])

    @property
    def straggler_wait_s(self) -> float:
        """Seconds waited beyond suspicion deadlines (cumulative)."""
        return float(self._straggler["wait_s"])

    def drain_failure_notices(self) -> Dict[int, str]:
        """Physical ranks whose failure sentinels this rank has observed."""
        return dict(self._failure_notices)

    def drain_shm_refs(self) -> int:
        """Teardown sweep: reclaim shm segments of never-received messages.

        Empties this rank's inbox (discarding the messages — call only
        when the SPMD program is over) and unlinks the segment behind any
        :class:`~repro.comm.shm.ShmArrayRef` found. Returns the number of
        segments reclaimed. Refs already drained into the pending store
        were unwrapped (and their segments unlinked) on arrival, so only
        the raw queue needs sweeping.
        """
        from repro.comm.shm import unlink_ref

        reclaimed = 0
        while True:
            try:
                _src, _tag, payload = self._get(timeout=0.01)
            except Exception:
                return reclaimed
            if isinstance(payload, ShmArrayRef) and unlink_ref(payload):
                reclaimed += 1

    def _get(self, timeout: Optional[float]) -> Tuple[int, int, Any]:
        queue = self._inboxes[self._my_physical]
        if timeout is None:
            return queue.get()
        try:
            return queue.get(timeout=timeout)
        except Exception as exc:  # queue.Empty / mp queue Empty
            raise TimeoutError from exc

    def announce_failure(self, message: str) -> None:
        """Best-effort notification to all peers that this rank is dying.

        Addressed to every *physical* rank (not just the current epoch's
        survivors): a rank that dies during recovery must still wake peers
        that have not shrunk yet.
        """
        for dest in range(len(self._inboxes)):
            if dest == self._my_physical:
                continue
            try:
                self._inboxes[dest].put((self._my_physical, FAILURE_TAG, message))
            except Exception:  # pragma: no cover - queue already torn down
                pass

    # -- recovery ----------------------------------------------------------

    def announce_recovery(
        self, blamed_phys: int, confirmed: bool, reason: str
    ) -> None:
        """Tell this epoch's peers the collective is abandoned for recovery.

        Sent before entering survivor agreement so that peers blocked in an
        application receive on a *live* rank abort immediately (their own
        blocking peer may be the very rank running the agreement) instead of
        burning their full receive timeout. Best-effort, like
        :meth:`announce_failure`.
        """
        notice = (self._epoch, int(blamed_phys), bool(confirmed), str(reason))
        for r in range(self._size):
            if r == self._rank:
                continue
            try:
                self._inboxes[self._physical[r]].put(
                    (self._my_physical, RECOVERY_TAG, notice)
                )
            except Exception:  # pragma: no cover - queue already torn down
                pass

    def shrink(self, survivors: Sequence[int]) -> "MailboxComm":
        """Survivor-only view of this communicator, one epoch later.

        ``survivors`` are ranks in *this* communicator's numbering; the new
        communicator renumbers them ``0..len(survivors)-1`` in ascending
        order (so every survivor derives identical numbering independently).
        The view shares the physical inboxes, the pending store, the known-
        dead set, and the traffic counters with its parent, but stamps all
        wire tags with the next epoch — messages of the abandoned epoch can
        never be confused with post-recovery traffic.
        """
        survivors = sorted(set(int(s) for s in survivors))
        if not survivors:
            raise CommError("cannot shrink to an empty communicator")
        for s in survivors:
            self._check_peer(s)
        if self._rank not in survivors:
            raise CommError(
                f"rank {self._rank} cannot shrink to a survivor set it is "
                f"not part of: {survivors}"
            )
        lost = [self._physical[r] for r in range(self._size)
                if r not in survivors]
        child = MailboxComm.__new__(MailboxComm)
        Communicator.__init__(child, survivors.index(self._rank), len(survivors))
        child._inboxes = self._inboxes
        child._timeout = self._timeout
        child._suspicion_timeout = self._suspicion_timeout
        child._shm_threshold = self._shm_threshold
        child._straggler = self._straggler
        child._pending = self._pending
        child.fault_injector = self.fault_injector
        child._physical = [self._physical[r] for r in survivors]
        child._my_physical = self._my_physical
        child._epoch = self._epoch + 1
        child._dead = self._dead
        child._dead.update(lost)
        child._failure_notices = self._failure_notices
        child._recovery_notices = self._recovery_notices
        child.traffic = self.traffic  # cumulative accounting across epochs
        return child
