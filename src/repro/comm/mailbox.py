"""Mailbox-based communicator core shared by the thread and process executors.

Each rank owns a single inbound queue. A message is the triple
``(source, tag, payload)``. ``recv(source, tag)`` drains the queue into a
local out-of-order store until a matching message appears, so messages from
different peers or with different tags can interleave arbitrarily without
deadlock — the semantics MPI programs expect.

Sends are *buffered*: ``put`` on both :class:`queue.SimpleQueue` and
:class:`multiprocessing.queues.Queue` returns without waiting for a matching
receive, which is what makes the default collectives in
:class:`~repro.comm.base.Communicator` deadlock-free.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.comm.base import Communicator
from repro.errors import CommError, RankFailedError

__all__ = ["MailboxComm"]

#: Sentinel tag announcing that a peer rank died before completing the program.
FAILURE_TAG = -999


class MailboxComm(Communicator):
    """Communicator whose backend is one inbound queue per rank.

    Parameters
    ----------
    rank, size:
        SPMD identity.
    inboxes:
        Sequence of ``size`` queue-like objects (``put``/``get`` API).
        ``inboxes[r]`` is the inbound queue of rank ``r``. All ranks share
        the same sequence.
    timeout:
        Seconds to wait in ``recv`` before declaring the peer lost. ``None``
        waits forever.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence[Any],
        timeout: Optional[float] = None,
    ):
        super().__init__(rank, size)
        if len(inboxes) != size:
            raise CommError(f"need {size} inboxes, got {len(inboxes)}")
        self._inboxes = inboxes
        self._timeout = timeout
        self._pending: Dict[Tuple[int, int], deque] = {}

    def _send_impl(self, obj: Any, dest: int, tag: int) -> None:
        self._inboxes[dest].put((self._rank, tag, obj))

    def _recv_impl(self, source: int, tag: int) -> Any:
        key = (source, tag)
        box = self._pending.get(key)
        if box:
            return box.popleft()
        deadline = None if self._timeout is None else time.monotonic() + self._timeout
        while True:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommError(
                        f"rank {self._rank}: timed out waiting for message "
                        f"from rank {source} (tag {tag})"
                    )
            try:
                src, msg_tag, payload = self._get(remaining)
            except TimeoutError:
                raise CommError(
                    f"rank {self._rank}: timed out waiting for message "
                    f"from rank {source} (tag {tag})"
                ) from None
            if msg_tag == FAILURE_TAG:
                raise RankFailedError(
                    f"rank {src} failed while rank {self._rank} was waiting "
                    f"for a message: {payload}",
                    rank=src,
                )
            if src == source and msg_tag == tag:
                return payload
            self._pending.setdefault((src, msg_tag), deque()).append(payload)

    def _get(self, timeout: Optional[float]) -> Tuple[int, int, Any]:
        queue = self._inboxes[self._rank]
        if timeout is None:
            return queue.get()
        try:
            return queue.get(timeout=timeout)
        except Exception as exc:  # queue.Empty / mp queue Empty
            raise TimeoutError from exc

    def announce_failure(self, message: str) -> None:
        """Best-effort notification to all peers that this rank is dying."""
        for dest in range(self._size):
            if dest == self._rank:
                continue
            try:
                self._inboxes[dest].put((self._rank, FAILURE_TAG, message))
            except Exception:  # pragma: no cover - queue already torn down
                pass
