"""Per-rank communication accounting.

Every :class:`~repro.comm.base.Communicator` owns a :class:`TrafficStats`
and records each point-to-point payload it sends and receives. Collectives
are built on point-to-point sends, so their cost shows up automatically.

Payload size is measured as the numpy buffer size when the payload is an
ndarray (the hot path in KeyBin2 — histograms and partition tables), or the
pickled length otherwise (small control messages only).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

__all__ = ["payload_nbytes", "TrafficStats"]


def payload_nbytes(obj: Any) -> int:
    """Best-effort wire size of a payload in bytes."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable control object
        return 0


@dataclass
class TrafficStats:
    """Counters for messages and bytes exchanged by one rank."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    by_peer_sent: Dict[int, int] = field(default_factory=dict)
    by_peer_received: Dict[int, int] = field(default_factory=dict)

    def record_send(self, peer: int, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += int(nbytes)
        self.by_peer_sent[peer] = self.by_peer_sent.get(peer, 0) + int(nbytes)

    def record_recv(self, peer: int, nbytes: int) -> None:
        self.messages_received += 1
        self.bytes_received += int(nbytes)
        self.by_peer_received[peer] = self.by_peer_received.get(peer, 0) + int(nbytes)

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.by_peer_sent.clear()
        self.by_peer_received.clear()

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict summary suitable for gathering across ranks."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }

    def __add__(self, other: "TrafficStats") -> "TrafficStats":
        merged = TrafficStats(
            messages_sent=self.messages_sent + other.messages_sent,
            messages_received=self.messages_received + other.messages_received,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
        )
        for src in (self.by_peer_sent, other.by_peer_sent):
            for peer, nbytes in src.items():
                merged.by_peer_sent[peer] = merged.by_peer_sent.get(peer, 0) + nbytes
        for src in (self.by_peer_received, other.by_peer_received):
            for peer, nbytes in src.items():
                merged.by_peer_received[peer] = (
                    merged.by_peer_received.get(peer, 0) + nbytes
                )
        return merged
