"""Front-end for running SPMD programs on any available executor.

An SPMD program is a callable ``fn(comm, *args)`` written against the
:class:`~repro.comm.base.Communicator` API. :func:`run_spmd` launches
``size`` ranks of it and returns their results in rank order::

    def program(comm):
        local = comm.rank + 1
        return comm.allreduce(local)

    totals = run_spmd(program, size=4)      # [10, 10, 10, 10]

Executors
---------
``"serial"``   only valid for ``size == 1``; zero overhead.
``"thread"``   default; one thread per rank, shared address space.
``"process"``  one OS process per rank; requires picklable ``fn``/``args``.
``"mpi"``      run under ``mpiexec`` with mpi4py installed; ``run_spmd`` is
               not used there — the program calls
               :func:`repro.comm.mpi.world_communicator` directly.

Fault tolerance
---------------
``faults=`` installs a :class:`~repro.comm.faults.FaultPlan` (or its CLI
spec string) for deterministic chaos testing; ``return_exceptions=True``
returns failed ranks' exceptions in their result slots instead of raising,
which is what lets a recovering program's survivors deliver their results.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Union

from repro.errors import CommError

__all__ = ["run_spmd", "spmd_available_executors"]


def spmd_available_executors() -> List[str]:
    """Executor names usable in this interpreter."""
    names = ["serial", "thread", "process"]
    try:  # pragma: no cover - depends on environment
        import mpi4py  # noqa: F401

        names.append("mpi")
    except ImportError:
        pass
    return names


def _resolve_plan(faults: Union[None, str, Any]) -> Optional[Any]:
    if faults is None:
        return None
    from repro.comm.faults import FaultPlan

    if isinstance(faults, str):
        return FaultPlan.parse(faults)
    if not isinstance(faults, FaultPlan):
        raise CommError(f"faults must be a FaultPlan or spec string, got {faults!r}")
    return faults


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    *,
    executor: str = "thread",
    args: Sequence[Any] = (),
    timeout: Optional[float] = 120.0,
    faults: Union[None, str, Any] = None,
    return_exceptions: bool = False,
    suspicion_timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``size`` ranks; return per-rank results.

    Parameters
    ----------
    fn:
        The SPMD program. First positional parameter receives the rank's
        :class:`~repro.comm.base.Communicator`.
    size:
        Number of ranks.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    args:
        Extra positional arguments passed to every rank.
    timeout:
        Per-receive *hard failure* timeout in seconds (deadlock detector).
        ``None`` disables. Honored by every collective — the library
        topologies (linear, ring, tree) are all built on the
        communicator's timed receives.
    suspicion_timeout:
        Soft *suspicion* deadline (seconds) below ``timeout``: a receive
        that passes it probes the peer with a liveness ping and, if the
        peer answers, keeps waiting instead of declaring it failed. Makes
        slow-but-alive ranks (stragglers) survivable without weakening
        dead-rank detection. ``None`` (default) keeps the single-deadline
        behavior. Ignored by the serial executor.
    faults:
        Optional :class:`~repro.comm.faults.FaultPlan` (or parseable spec
        string) installed on every rank's communicator.
    return_exceptions:
        When ``True``, a failed rank contributes its exception (instead of
        aborting the whole run) and surviving ranks' results are returned.
        When ``False`` (default) any failure raises
        :class:`~repro.errors.RankFailedError` carrying the *first* failing
        rank's id and traceback, chained from the original exception.
    """
    if size < 1:
        raise CommError(f"size must be >= 1, got {size}")
    plan = _resolve_plan(faults)
    if executor == "serial":
        if size != 1:
            raise CommError("serial executor only supports size == 1")
        from repro.comm.serial import SerialComm

        comm = SerialComm()
        if plan is not None:
            from repro.comm.faults import FaultInjector

            comm.fault_injector = FaultInjector(plan, 0)
        try:
            return [fn(comm, *args)]
        except Exception as exc:
            if return_exceptions:
                return [exc]
            raise
    if executor == "thread":
        from repro.comm.threaded import run_spmd_threads

        return run_spmd_threads(
            fn, size, args=args, timeout=timeout, faults=plan,
            return_exceptions=return_exceptions,
            suspicion_timeout=suspicion_timeout,
        )
    if executor == "process":
        from repro.comm.process import run_spmd_processes

        return run_spmd_processes(
            fn, size, args=args, timeout=timeout, faults=plan,
            return_exceptions=return_exceptions,
            suspicion_timeout=suspicion_timeout,
        )
    raise CommError(
        f"unknown executor {executor!r}; available: {spmd_available_executors()}"
    )
