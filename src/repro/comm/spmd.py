"""Front-end for running SPMD programs on any available executor.

An SPMD program is a callable ``fn(comm, *args)`` written against the
:class:`~repro.comm.base.Communicator` API. :func:`run_spmd` launches
``size`` ranks of it and returns their results in rank order::

    def program(comm):
        local = comm.rank + 1
        return comm.allreduce(local)

    totals = run_spmd(program, size=4)      # [10, 10, 10, 10]

Executors
---------
``"serial"``   only valid for ``size == 1``; zero overhead.
``"thread"``   default; one thread per rank, shared address space.
``"process"``  one OS process per rank; requires picklable ``fn``/``args``.
``"mpi"``      run under ``mpiexec`` with mpi4py installed; ``run_spmd`` is
               not used there — the program calls
               :func:`repro.comm.mpi.world_communicator` directly.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.errors import CommError

__all__ = ["run_spmd", "spmd_available_executors"]


def spmd_available_executors() -> List[str]:
    """Executor names usable in this interpreter."""
    names = ["serial", "thread", "process"]
    try:  # pragma: no cover - depends on environment
        import mpi4py  # noqa: F401

        names.append("mpi")
    except ImportError:
        pass
    return names


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    *,
    executor: str = "thread",
    args: Sequence[Any] = (),
    timeout: Optional[float] = 120.0,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``size`` ranks; return per-rank results.

    Parameters
    ----------
    fn:
        The SPMD program. First positional parameter receives the rank's
        :class:`~repro.comm.base.Communicator`.
    size:
        Number of ranks.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    args:
        Extra positional arguments passed to every rank.
    timeout:
        Per-receive timeout in seconds (deadlock detector). ``None`` disables.
    """
    if size < 1:
        raise CommError(f"size must be >= 1, got {size}")
    if executor == "serial":
        if size != 1:
            raise CommError("serial executor only supports size == 1")
        from repro.comm.serial import SerialComm

        return [fn(SerialComm(), *args)]
    if executor == "thread":
        from repro.comm.threaded import run_spmd_threads

        return run_spmd_threads(fn, size, args=args, timeout=timeout)
    if executor == "process":
        from repro.comm.process import run_spmd_processes

        return run_spmd_processes(fn, size, args=args, timeout=timeout)
    raise CommError(
        f"unknown executor {executor!r}; available: {spmd_available_executors()}"
    )
