"""Binomial-tree collectives.

The default collectives in :class:`~repro.comm.base.Communicator` are
linear (O(K) sequential messages at the root) — exact for traffic
accounting and fine at the paper's 16 ranks. These tree versions complete
in ⌈log2 K⌉ rounds, which is what a production deployment (or the mpi4py
adapter's native collectives) would use; they exist so the scalability
discussion can be demonstrated rather than asserted.

All functions are drop-in equivalents of the corresponding
``Communicator`` methods and are verified against them in the test suite.
"""

from __future__ import annotations

from typing import Any

from repro.comm.base import Communicator, OpLike, ReduceOp, _resolve_op

__all__ = ["tree_bcast", "tree_reduce", "tree_allreduce", "tree_barrier"]

_TREE_TAG = -301


def _vrank(rank: int, root: int, size: int) -> int:
    """Virtual rank with the root relabelled to 0."""
    return (rank - root) % size


def _rank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def tree_bcast(comm: Communicator, obj: Any = None, root: int = 0) -> Any:
    """Binomial-tree broadcast: ⌈log2 K⌉ rounds.

    Round ``r`` has every rank that already holds the payload (virtual
    ranks < 2^r) forward it to virtual rank ``v + 2^r``.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    v = _vrank(rank, root, size)
    # Receive from the parent: the parent differs in v's lowest set bit.
    mask = 1
    while mask < size:
        if v & mask:
            obj = comm.recv(_rank(v - mask, root, size), tag=_TREE_TAG)
            break
        mask <<= 1
    # Forward to children: all ranks v + m for set-bit masks below ours.
    mask >>= 1
    while mask >= 1:
        child = v + mask
        if child < size:
            comm.send(obj, _rank(child, root, size), tag=_TREE_TAG)
        mask >>= 1
    return obj


def tree_reduce(
    comm: Communicator,
    obj: Any,
    op: OpLike = ReduceOp.SUM,
    root: int = 0,
) -> Any:
    """Binomial-tree reduction to ``root`` (others get ``None``).

    Combines children pairwise up the tree; with a commutative,
    associative operator the result equals the linear fold. (NumPy float
    addition is associative only up to rounding — identical to how real
    MPI reductions behave.)
    """
    fn = _resolve_op(op)
    size, rank = comm.size, comm.rank
    v = _vrank(rank, root, size)
    acc = obj
    step = 1
    while step < size:
        if v & step:
            comm.send(acc, _rank(v - step, root, size), tag=_TREE_TAG - 1)
            return None
        partner = v + step
        if partner < size:
            incoming = comm.recv(_rank(partner, root, size), tag=_TREE_TAG - 1)
            acc = fn(acc, incoming)
        step <<= 1
    return acc if rank == root else None


def tree_allreduce(comm: Communicator, obj: Any, op: OpLike = ReduceOp.SUM) -> Any:
    """Tree reduce to rank 0, tree broadcast back out."""
    reduced = tree_reduce(comm, obj, op=op, root=0)
    return tree_bcast(comm, reduced, root=0)


def tree_barrier(comm: Communicator) -> None:
    """Barrier built from a zero-payload tree allreduce."""
    tree_allreduce(comm, 0)
