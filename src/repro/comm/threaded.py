"""Thread-backed SPMD executor.

Runs ``size`` copies of an SPMD function, one per thread, each with its own
:class:`~repro.comm.mailbox.MailboxComm`. NumPy releases the GIL inside its
kernels, so compute overlaps reasonably; more importantly this executor is
cheap to spin up, which makes it the default for tests and for the
single-node benchmarks.

Exceptions raised by any rank are captured, broadcast as failure sentinels
so blocked peers wake up, and either re-raised in the caller as
:class:`~repro.errors.RankFailedError` — carrying the *chronologically
first* failing rank's id and traceback, chained from the original
exception — or, with ``return_exceptions=True``, returned in the failed
ranks' result slots so surviving ranks still deliver.
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.comm.mailbox import MailboxComm
from repro.errors import RankFailedError

__all__ = ["run_spmd_threads"]


def run_spmd_threads(
    fn: Callable[..., Any],
    size: int,
    args: Sequence[Any] = (),
    timeout: Optional[float] = 120.0,
    faults: Optional[Any] = None,
    return_exceptions: bool = False,
    suspicion_timeout: Optional[float] = None,
) -> List[Any]:
    """Execute ``fn(comm, *args)`` on ``size`` thread ranks.

    Returns the per-rank return values in rank order. ``suspicion_timeout``
    enables slow≠dead probing in each rank's communicator (see
    :class:`~repro.comm.mailbox.MailboxComm`).
    """
    inboxes = [queue.SimpleQueue() for _ in range(size)]
    results: List[Any] = [None] * size
    # Chronological failure log: the first entry is the root cause, later
    # ones are usually cascaded RankFailedErrors from peers waking up.
    failures: List[tuple[int, BaseException, str]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        injector = None
        if faults is not None:
            from repro.comm.faults import FaultInjector

            injector = FaultInjector(faults, rank)
        comm = MailboxComm(rank, size, inboxes, timeout=timeout,
                           injector=injector,
                           suspicion_timeout=suspicion_timeout)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - must not kill the pool silently
            with lock:
                failures.append((rank, exc, traceback.format_exc()))
            comm.announce_failure(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}",
                         daemon=True)
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        if return_exceptions:
            for rank, exc, _tb in failures:
                results[rank] = exc
            return results
        # Prefer the chronologically-first *original* failure: cascaded
        # RankFailedErrors only say "someone else died first".
        originals = [f for f in failures if not isinstance(f[1], RankFailedError)]
        rank, exc, tb = (originals or failures)[0]
        raise RankFailedError(
            f"SPMD rank {rank} raised {type(exc).__name__}: {exc}\n{tb}", rank=rank
        ) from exc
    return results
