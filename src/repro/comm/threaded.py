"""Thread-backed SPMD executor.

Runs ``size`` copies of an SPMD function, one per thread, each with its own
:class:`~repro.comm.mailbox.MailboxComm`. NumPy releases the GIL inside its
kernels, so compute overlaps reasonably; more importantly this executor is
cheap to spin up, which makes it the default for tests and for the
single-node benchmarks.

Exceptions raised by any rank are captured, broadcast as failure sentinels
so blocked peers wake up, and re-raised in the caller as
:class:`~repro.errors.RankFailedError` (with the original as ``__cause__``).
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.comm.mailbox import MailboxComm
from repro.errors import RankFailedError

__all__ = ["run_spmd_threads"]


def run_spmd_threads(
    fn: Callable[..., Any],
    size: int,
    args: Sequence[Any] = (),
    timeout: Optional[float] = 120.0,
) -> List[Any]:
    """Execute ``fn(comm, *args)`` on ``size`` thread ranks.

    Returns the per-rank return values in rank order.
    """
    inboxes = [queue.SimpleQueue() for _ in range(size)]
    results: List[Any] = [None] * size
    failures: List[tuple[int, BaseException, str]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = MailboxComm(rank, size, inboxes, timeout=timeout)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - must not kill the pool silently
            with lock:
                failures.append((rank, exc, traceback.format_exc()))
            comm.announce_failure(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        failures.sort(key=lambda f: f[0])
        rank, exc, tb = failures[0]
        if isinstance(exc, RankFailedError):
            # A secondary failure caused by another rank dying; prefer the
            # original failure if we captured it.
            originals = [f for f in failures if not isinstance(f[1], RankFailedError)]
            if originals:
                rank, exc, tb = originals[0]
        raise RankFailedError(
            f"SPMD rank {rank} raised {type(exc).__name__}: {exc}\n{tb}", rank=rank
        ) from exc
    return results
