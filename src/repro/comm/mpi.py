"""Optional mpi4py adapter.

When the package is run under ``mpiexec`` with mpi4py installed, wrap
``MPI.COMM_WORLD`` so every SPMD program in this repository runs unchanged
on a real cluster::

    # mpiexec -n 16 python my_program.py
    from repro.comm.mpi import world_communicator
    comm = world_communicator()
    ...

This module imports lazily; importing :mod:`repro.comm` never requires
mpi4py.
"""

from __future__ import annotations

from typing import Any

from repro.comm.base import Communicator
from repro.errors import CommError

__all__ = ["MPIComm", "world_communicator", "mpi_available"]


def mpi_available() -> bool:
    """True when mpi4py can be imported."""
    try:
        import mpi4py  # noqa: F401

        return True
    except ImportError:
        return False


class MPIComm(Communicator):
    """Adapter exposing an mpi4py communicator through our ABC.

    Collectives delegate to mpi4py's (pickle-based, lowercase) versions,
    which are tree-structured and faster than the linear defaults. Traffic
    accounting is best-effort for point-to-point only, since MPI internals
    are opaque.
    """

    def __init__(self, mpi_comm: Any):
        self._comm = mpi_comm
        super().__init__(rank=mpi_comm.Get_rank(), size=mpi_comm.Get_size())

    def _send_impl(self, obj: Any, dest: int, tag: int) -> None:
        # mpi4py tags must be non-negative; shift our signed control tags.
        self._comm.send(obj, dest=dest, tag=tag + 1024)

    def _recv_impl(self, source: int, tag: int) -> Any:
        return self._comm.recv(source=source, tag=tag + 1024)

    def barrier(self) -> None:
        self._comm.Barrier()

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        return self._comm.bcast(obj, root=root)

    def scatter(self, objs=None, root: int = 0) -> Any:
        return self._comm.scatter(objs, root=root)

    def gather(self, obj: Any, root: int = 0):
        return self._comm.gather(obj, root=root)

    def allgather(self, obj: Any):
        return self._comm.allgather(obj)


def world_communicator() -> MPIComm:
    """Wrap ``MPI.COMM_WORLD``; raises :class:`CommError` without mpi4py."""
    try:
        from mpi4py import MPI
    except ImportError as exc:
        raise CommError(
            "mpi4py is not installed; install repro[mpi] and run under mpiexec"
        ) from exc
    return MPIComm(MPI.COMM_WORLD)
