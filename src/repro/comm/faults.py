"""Deterministic fault injection for SPMD chaos testing.

A :class:`FaultPlan` is a declarative, picklable description of the faults
one run should experience: kill rank r at consolidation round k, drop or
delay the n-th message on an edge, slow a rank down. Every fault fires at
a deterministic point (message index or application round), so a chaos
test that passes once passes always — and a recovery bug reproduces
exactly under the same plan and seed.

The plan is installed by :func:`repro.comm.spmd.run_spmd` (``faults=``):
each rank gets a :class:`FaultInjector` bound to its
:class:`~repro.comm.mailbox.MailboxComm`, which consults the plan on
every send. Application-level faults (rank kills) fire when the program
reaches a named event and calls :func:`maybe_inject` — the distributed
in-situ loop does so before every consolidation round.

Plans can be written in code or parsed from a compact CLI spec::

    kill:1@2            kill rank 1 at consolidation round 2
    drop:0>2@3          drop the 3rd message rank 0 sends to rank 2
    delay:2>0@1:0.5     delay the 1st message rank 2 sends to rank 0 by 0.5 s
    slow:1:0.01         sleep 10 ms before every send from rank 1

separated by commas: ``--faults "kill:1@2,slow:0:0.005"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InjectedFault, ValidationError
from repro.util.rng import as_generator

__all__ = [
    "KillRank",
    "DropMessage",
    "DelayMessage",
    "SlowRank",
    "FaultPlan",
    "FaultInjector",
    "maybe_inject",
]

#: Event name the in-situ driver ticks before every consolidation round.
CONSOLIDATION_EVENT = "consolidation"


@dataclass(frozen=True)
class KillRank:
    """Kill ``rank`` when it reaches occurrence ``at`` of ``event``.

    ``mode="raise"`` raises :class:`~repro.errors.InjectedFault` inside the
    rank (a clean crash: the executor announces the failure to peers);
    ``mode="exit"`` calls ``os._exit`` — only meaningful on the process
    executor, where it simulates a SIGKILL/OOM death that never reports.
    """

    rank: int
    at: int
    event: str = CONSOLIDATION_EVENT
    mode: str = "raise"

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "exit"):
            raise ValidationError(f"kill mode must be 'raise' or 'exit', got {self.mode!r}")
        if self.rank < 0 or self.at < 0:
            raise ValidationError("kill rank and round must be >= 0")


@dataclass(frozen=True)
class DropMessage:
    """Silently drop the ``nth`` (1-based) message ``src`` sends to ``dst``."""

    src: int
    dst: int
    nth: int = 1

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValidationError("nth is 1-based and must be >= 1")


@dataclass(frozen=True)
class DelayMessage:
    """Deliver the ``nth`` (1-based) ``src``→``dst`` message ``seconds`` late."""

    src: int
    dst: int
    nth: int = 1
    seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValidationError("nth is 1-based and must be >= 1")
        if self.seconds < 0:
            raise ValidationError("delay must be >= 0")


@dataclass(frozen=True)
class SlowRank:
    """Sleep ``seconds`` before every message ``rank`` sends (a slow rank)."""

    rank: int
    seconds: float = 0.005

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValidationError("slowdown must be >= 0")


@dataclass
class FaultPlan:
    """A seeded, deterministic set of faults for one SPMD run.

    ``seed`` drives the optional jitter on message delays (``jitter > 0``
    multiplies each delay by ``1 ± U(0, jitter)`` from a per-rank stream);
    with the default ``jitter=0`` the plan is exactly reproducible down to
    the sleep durations.
    """

    faults: List[Any] = field(default_factory=list)
    seed: int = 0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, (KillRank, DropMessage, DelayMessage, SlowRank)):
                raise ValidationError(f"unknown fault entry {f!r}")
        if self.jitter < 0 or self.jitter >= 1:
            raise ValidationError("jitter must be in [0, 1)")

    def kills_for(self, rank: int) -> List[KillRank]:
        return [f for f in self.faults if isinstance(f, KillRank) and f.rank == rank]

    def killed_ranks(self) -> List[int]:
        """Ranks the plan kills, sorted (what a chaos test expects to lose)."""
        return sorted({f.rank for f in self.faults if isinstance(f, KillRank)})

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the compact CLI spec (see module docstring)."""
        faults: List[Any] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            fields = part.split(":")
            kind = fields[0]
            try:
                if kind == "kill" and len(fields) == 2:
                    rank_s, at_s = fields[1].split("@")
                    faults.append(KillRank(int(rank_s), int(at_s)))
                elif kind == "drop" and len(fields) == 2:
                    edge, nth_s = fields[1].split("@")
                    src_s, dst_s = edge.split(">")
                    faults.append(DropMessage(int(src_s), int(dst_s), int(nth_s)))
                elif kind == "delay" and len(fields) == 3:
                    edge, nth_s = fields[1].split("@")
                    src_s, dst_s = edge.split(">")
                    faults.append(
                        DelayMessage(int(src_s), int(dst_s), int(nth_s), float(fields[2]))
                    )
                elif kind == "slow" and len(fields) == 3:
                    faults.append(SlowRank(int(fields[1]), float(fields[2])))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except (ValueError, IndexError) as exc:
                raise ValidationError(
                    f"cannot parse fault spec {part!r}: {exc} "
                    "(expected kill:R@K, drop:S>D@N, delay:S>D@N:SECS, slow:R:SECS)"
                ) from exc
        return cls(faults, seed=seed)


class FaultInjector:
    """Per-rank runtime view of a :class:`FaultPlan`.

    Holds the deterministic counters (messages sent per edge, events seen
    per name) that decide when each fault fires. One injector per rank,
    created by the executor and attached to the rank's communicator.
    """

    def __init__(self, plan: FaultPlan, rank: int):
        self.plan = plan
        self.rank = int(rank)
        self._sent: Dict[int, int] = {}           # dest -> messages sent so far
        self._events: Dict[str, int] = {}         # event name -> occurrences seen
        self._slow = 0.0
        for f in plan.faults:
            if isinstance(f, SlowRank) and f.rank == self.rank:
                self._slow = max(self._slow, f.seconds)
        self._drops = {
            (f.dst, f.nth): f
            for f in plan.faults
            if isinstance(f, DropMessage) and f.src == self.rank
        }
        self._delays = {
            (f.dst, f.nth): f
            for f in plan.faults
            if isinstance(f, DelayMessage) and f.src == self.rank
        }
        self._rng = as_generator((plan.seed, self.rank)) if plan.jitter else None
        self.dropped: List[Tuple[int, int]] = []   # (dest, nth) actually dropped
        self.delayed: List[Tuple[int, int]] = []

    def _sleep(self, seconds: float) -> None:
        if self._rng is not None:
            seconds *= 1.0 + float(self._rng.uniform(-self.plan.jitter, self.plan.jitter))
        if seconds > 0:
            time.sleep(seconds)

    def on_send(self, dest: int, tag: int) -> bool:
        """Apply send-side faults; return ``False`` to drop the message.

        ``dest`` is the *physical* rank (stable across communicator
        shrinks), so plans keep meaning the same thing after a recovery.
        """
        nth = self._sent.get(dest, 0) + 1
        self._sent[dest] = nth
        if self._slow:
            self._sleep(self._slow)
        delay = self._delays.get((dest, nth))
        if delay is not None:
            self.delayed.append((dest, nth))
            self._sleep(delay.seconds)
        if (dest, nth) in self._drops:
            self.dropped.append((dest, nth))
            return False
        return True

    def on_event(self, event: str) -> None:
        """Advance the named event counter; fire any matching kill."""
        count = self._events.get(event, 0)
        self._events[event] = count + 1
        for kill in self.plan.kills_for(self.rank):
            if kill.event == event and kill.at == count:
                if kill.mode == "exit":  # pragma: no cover - exercised in subprocess
                    import os

                    os._exit(113)
                raise InjectedFault(
                    f"fault plan killed rank {self.rank} at {event} round {count}"
                )


def maybe_inject(comm: Any, event: str = CONSOLIDATION_EVENT) -> None:
    """Tick the communicator's fault injector, if one is installed.

    SPMD programs call this at named progress points (the in-situ driver
    does before each consolidation). A plain run with no plan installed
    pays one attribute lookup.
    """
    injector = getattr(comm, "fault_injector", None)
    if injector is not None:
        injector.on_event(event)
