"""SPMD message-passing substrate (MPI stand-in).

The paper's implementation uses mpi4py on a 32-node InfiniBand cluster.
KeyBin2 itself only needs a rank/size abstraction with a handful of
collectives over small numpy buffers, so this package provides:

- :class:`~repro.comm.base.Communicator` — the abstract contract,
- a serial (size-1) communicator,
- a thread-backed SPMD executor (fast, used by tests),
- a process-backed SPMD executor (true address-space isolation, used to
  demonstrate the distributed claims),
- ring-topology collectives (the paper notes KeyBin2 also works on a ring),
- per-rank traffic accounting so the O(2·K·N_rp·B) communication claim can
  be measured rather than asserted,
- a zero-copy shared-memory transport for large array payloads between
  process ranks (:mod:`repro.comm.shm`), and
- an optional mpi4py adapter so the same SPMD program runs unmodified on a
  real cluster.
"""

from __future__ import annotations

from repro.comm.base import Communicator, ReduceOp
from repro.comm.serial import SerialComm
from repro.comm.mailbox import MailboxComm
from repro.comm.membership import agree_on_survivors, agreement_timeout_for
from repro.comm.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmArrayRef,
    open_array,
    share_array,
    unlink_ref,
)
from repro.comm.traffic import TrafficStats
from repro.comm.spmd import run_spmd, spmd_available_executors
from repro.comm.faults import (
    DelayMessage,
    DropMessage,
    FaultInjector,
    FaultPlan,
    KillRank,
    SlowRank,
    maybe_inject,
)
from repro.comm.ring import (
    ring_allreduce,
    ring_reduce_scatter,
    ring_allgather,
    ring_pass,
)
from repro.comm.tree import (
    tree_allreduce,
    tree_barrier,
    tree_bcast,
    tree_reduce,
)

__all__ = [
    "Communicator",
    "ReduceOp",
    "SerialComm",
    "MailboxComm",
    "DEFAULT_SHM_THRESHOLD",
    "ShmArrayRef",
    "share_array",
    "open_array",
    "unlink_ref",
    "TrafficStats",
    "run_spmd",
    "spmd_available_executors",
    "agree_on_survivors",
    "agreement_timeout_for",
    "FaultPlan",
    "FaultInjector",
    "KillRank",
    "DropMessage",
    "DelayMessage",
    "SlowRank",
    "maybe_inject",
    "ring_allreduce",
    "ring_reduce_scatter",
    "ring_allgather",
    "ring_pass",
    "tree_allreduce",
    "tree_barrier",
    "tree_bcast",
    "tree_reduce",
]
