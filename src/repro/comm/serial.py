"""Size-1 communicator.

Lets every SPMD program double as a plain sequential program — the estimator
API in :mod:`repro.core` defaults to this, so single-machine users never see
the comm layer at all.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Tuple

from repro.comm.base import Communicator
from repro.errors import CommError

__all__ = ["SerialComm"]


class SerialComm(Communicator):
    """The trivial communicator: one rank, self-sends are buffered locally."""

    def __init__(self) -> None:
        super().__init__(rank=0, size=1)
        self._inbox: Dict[Tuple[int, int], deque] = {}

    def _send_impl(self, obj: Any, dest: int, tag: int) -> None:
        self._inbox.setdefault((dest, tag), deque()).append(obj)

    def _recv_impl(self, source: int, tag: int) -> Any:
        box = self._inbox.get((source, tag))
        if not box:
            raise CommError(
                "SerialComm.recv would deadlock: no buffered message from "
                f"rank {source} with tag {tag}"
            )
        return box.popleft()
