"""Zero-copy shared-memory transport for large array payloads.

The process executor's mailboxes are :class:`multiprocessing.Queue`, so by
default every numpy payload is pickled, pushed through a pipe, and
reassembled on the far side — three copies of data that both ranks could
simply map. This module moves large arrays through POSIX shared memory
instead: the sender copies the array into a fresh
:class:`~multiprocessing.shared_memory.SharedMemory` segment ONCE and
enqueues only a tiny :class:`ShmArrayRef` descriptor; the receiver maps the
segment and wraps it in an ndarray *without copying*.

Lifecycle discipline (the part that is easy to get wrong):

* the sender closes its mapping immediately after the copy and *unregisters*
  the segment from its ``resource_tracker`` — ownership transfers with the
  message, and the tracker must not unlink a segment a peer still needs
  when the sending process exits;
* the receiver unlinks the segment *immediately on attach*. On Linux the
  backing memory stays alive while mapped, so the array remains valid, but
  the name vanishes from ``/dev/shm`` at once — a crash after this point
  can no longer leak the segment. The mapping itself is closed by a
  :mod:`weakref` finalizer when the receiving array is garbage collected;
* refs that are never received (receiver died, injected message drop,
  leftover queue contents at teardown) are reclaimed by best-effort
  :func:`unlink_ref` sweeps in the mailbox drain loop and the process
  executor's teardown path.

Only *top-level* ndarray payloads take this path. Arrays nested inside
tuples or dicts travel through pickle as before — the repo's hot payloads
(consolidation histograms, scattered feature blocks) are top-level arrays,
and confining the rewrite to them keeps the envelope scan O(1) per message.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "ShmArrayRef",
    "open_array",
    "share_array",
    "shareable",
    "unlink_ref",
]

#: Minimum payload size (bytes) worth a shared-memory round trip. Below
#: this, segment create/attach syscalls cost more than the pickle copy.
DEFAULT_SHM_THRESHOLD = 1 << 16


@dataclass(frozen=True)
class ShmArrayRef:
    """Wire descriptor for an array parked in a shared-memory segment.

    Pickles to a few dozen bytes regardless of array size. ``dtype`` is the
    ``np.dtype.str`` spelling (endianness-explicit) so the receiver rebuilds
    an identical view.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


def shareable(obj: Any, threshold: int) -> bool:
    """Whether ``obj`` is a top-level array worth moving through shm."""
    return (
        isinstance(obj, np.ndarray)
        and obj.dtype != object
        and not obj.dtype.hasobject
        and obj.nbytes >= threshold
    )


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a segment from this process's resource tracker.

    Ownership moves to the receiver with the message; without this, the
    sender's tracker unlinks the segment when the sender exits — yanking
    memory out from under a peer — and prints leak warnings for segments
    that were handed off perfectly cleanly. Python 3.13 grew a ``track=``
    keyword for this; on 3.11 the documented-adjacent unregister call is
    the only knob.
    """
    try:  # pragma: no cover - depends on platform tracker details
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def share_array(arr: np.ndarray) -> ShmArrayRef:
    """Copy ``arr`` into a fresh segment and return its wire descriptor.

    The segment is closed (sender mapping released) and untracked before
    returning; on any failure mid-copy it is unlinked so nothing leaks.
    """
    nbytes = max(int(arr.nbytes), 1)  # zero-size segments are not allowed
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        ref = ShmArrayRef(shm.name, tuple(arr.shape), arr.dtype.str)
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
        raise
    _untrack(shm)
    shm.close()
    return ref


def open_array(ref: ShmArrayRef) -> np.ndarray:
    """Map a descriptor back into a zero-copy ndarray.

    The segment is unlinked immediately (crash-safe: the name cannot leak
    past this call) and its mapping is closed by a finalizer when the
    returned array — and every view of it — dies.
    """
    shm = shared_memory.SharedMemory(name=ref.name)
    try:
        # unlink() also unregisters from the resource tracker (which the
        # attach above registered with) — don't unregister twice.
        shm.unlink()
    except Exception:  # pragma: no cover - peer already swept it
        _untrack(shm)
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
    weakref.finalize(arr, shm.close)
    return arr


def unlink_ref(ref: ShmArrayRef) -> bool:
    """Best-effort reclamation of a segment whose message was never received."""
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    except Exception:
        return False  # already unlinked (normal: the receiver got it)
    try:
        shm.unlink()  # also unregisters the attach's tracker entry
    except Exception:  # pragma: no cover - lost a race with another sweep
        _untrack(shm)
    shm.close()
    return True
