"""Ring-topology collectives.

The paper notes (§3, step 3) that histogram consolidation "does not
necessarily have to be made to a central authority — the algorithm works as
well for a ring topology." These helpers implement the classic
bandwidth-optimal ring algorithms on top of any
:class:`~repro.comm.base.Communicator`:

- :func:`ring_reduce_scatter` — each rank ends with one reduced chunk,
- :func:`ring_allgather` — chunks circulate until every rank has all,
- :func:`ring_allreduce` — the composition of the two (the pattern
  popularized by Baidu/Horovod), and
- :func:`ring_pass` — one neighbour-shift of arbitrary payloads.

All operate on 1-D numpy arrays; each rank must pass an equal-length buffer.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.comm.base import Communicator, ReduceOp
from repro.errors import CommError
from repro.util.chunking import chunk_slices

__all__ = ["ring_pass", "ring_reduce_scatter", "ring_allgather", "ring_allreduce"]

_RING_TAG = -201


def ring_pass(comm: Communicator, obj: Any, shift: int = 1, tag: int = _RING_TAG) -> Any:
    """Send ``obj`` to ``(rank + shift) % size`` and return what arrives here."""
    size = comm.size
    if size == 1:
        return obj
    dest = (comm.rank + shift) % size
    source = (comm.rank - shift) % size
    return comm.sendrecv(obj, dest=dest, source=source, tag=tag)


def _check_buffer(comm: Communicator, buf: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(buf)
    if arr.ndim != 1:
        raise CommError(f"ring collectives need 1-D buffers, got ndim={arr.ndim}")
    return arr


def ring_reduce_scatter(
    comm: Communicator,
    buf: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Ring reduce-scatter.

    After ``size - 1`` neighbour exchanges, this rank holds the fully
    reduced values for its own chunk of the buffer. Returns
    ``(chunk, (start, stop))`` where the slice locates the chunk in the
    global buffer.
    """
    arr = _check_buffer(comm, buf).copy()
    size, rank = comm.size, comm.rank
    slices = chunk_slices(arr.shape[0], size)
    if size == 1:
        return arr, slices[0]
    for step in range(size - 1):
        send_chunk_idx = (rank - step) % size
        recv_chunk_idx = (rank - step - 1) % size
        s0, s1 = slices[send_chunk_idx]
        incoming = comm.sendrecv(
            arr[s0:s1].copy(),
            dest=(rank + 1) % size,
            source=(rank - 1) % size,
            tag=_RING_TAG + 1 + step,
        )
        r0, r1 = slices[recv_chunk_idx]
        arr[r0:r1] = op.combine(arr[r0:r1], incoming)
    own = (rank + 1) % size
    o0, o1 = slices[own]
    return arr[o0:o1].copy(), (o0, o1)


def ring_allgather(
    comm: Communicator,
    chunk: np.ndarray,
    total_length: int,
    chunk_index: Optional[int] = None,
) -> np.ndarray:
    """Ring all-gather of per-rank chunks into the full buffer.

    ``chunk_index`` names which canonical chunk (see
    :func:`repro.util.chunking.chunk_slices`) this rank holds; defaults to
    ``(rank + 1) % size``, the layout :func:`ring_reduce_scatter` leaves
    behind. An index (not a slice) is required because empty chunks make
    slices ambiguous.
    """
    size, rank = comm.size, comm.rank
    slices = chunk_slices(total_length, size)
    if chunk_index is None:
        chunk_index = (rank + 1) % size
    if not (0 <= chunk_index < size):
        raise CommError(f"chunk_index {chunk_index} out of range for {size} ranks")
    chunk = _check_buffer(comm, chunk)
    out = np.zeros(total_length, dtype=chunk.dtype)
    s0, s1 = slices[chunk_index]
    if (s1 - s0) != chunk.shape[0]:
        raise CommError(
            f"chunk length {chunk.shape[0]} does not match chunk {chunk_index} "
            f"slice {(s0, s1)}"
        )
    out[s0:s1] = chunk
    if size == 1:
        return out
    current = int(chunk_index)
    for step in range(size - 1):
        a, b = slices[current]
        incoming_idx = (current - 1) % size
        incoming = comm.sendrecv(
            out[a:b].copy(),
            dest=(rank + 1) % size,
            source=(rank - 1) % size,
            tag=_RING_TAG + 100 + step,
        )
        ia, ib = slices[incoming_idx]
        out[ia:ib] = incoming
        current = incoming_idx
    return out


def ring_allreduce(
    comm: Communicator,
    buf: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
) -> np.ndarray:
    """Bandwidth-optimal allreduce: reduce-scatter followed by all-gather.

    Equivalent to ``comm.allreduce`` on the same buffer, but every rank
    sends O(2·len) bytes total regardless of ``size`` — the property that
    makes ring consolidation of KeyBin2 histograms cheap.
    """
    arr = _check_buffer(comm, buf)
    chunk, _ = ring_reduce_scatter(comm, arr, op=op)
    # reduce-scatter leaves rank r holding canonical chunk (r + 1) % size.
    return ring_allgather(comm, chunk, arr.shape[0], (comm.rank + 1) % comm.size)
