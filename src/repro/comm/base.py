"""Abstract communicator and default collective algorithms.

The contract mirrors the subset of MPI that KeyBin2 and the baselines use:
point-to-point ``send``/``recv`` plus the collectives ``barrier``, ``bcast``,
``scatter``, ``gather``, ``allgather``, ``reduce``, ``allreduce`` and
``alltoall``. Default collective implementations are composed from
point-to-point messages (linear fan-out — adequate for the rank counts the
paper evaluates, and it keeps traffic accounting exact); backends may
override any of them with faster native versions (the mpi4py adapter does).

Reductions accept either a :class:`ReduceOp` member or any callable
``f(a, b) -> c``; numpy arrays reduce elementwise.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from repro.comm.traffic import TrafficStats, payload_nbytes
from repro.errors import CommError

__all__ = ["ReduceOp", "Communicator"]

_BARRIER_TAG = -101
_BCAST_TAG = -102
_GATHER_TAG = -103
_SCATTER_TAG = -104
_ALLTOALL_TAG = -105


class ReduceOp(enum.Enum):
    """Built-in reduction operators (numpy-aware)."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"

    def combine(self, a: Any, b: Any) -> Any:
        if self is ReduceOp.SUM:
            return np.add(a, b) if isinstance(a, np.ndarray) else a + b
        if self is ReduceOp.MAX:
            return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
        if self is ReduceOp.MIN:
            return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
        if self is ReduceOp.PROD:
            return np.multiply(a, b) if isinstance(a, np.ndarray) else a * b
        raise CommError(f"unknown reduce op {self}")  # pragma: no cover


OpLike = Union[ReduceOp, Callable[[Any, Any], Any]]


def _resolve_op(op: OpLike) -> Callable[[Any, Any], Any]:
    if isinstance(op, ReduceOp):
        return op.combine
    if callable(op):
        return op
    raise CommError(f"reduce op must be ReduceOp or callable, got {op!r}")


class Communicator(ABC):
    """A group of ``size`` SPMD ranks with message passing between them.

    Subclasses implement :meth:`_send_impl` and :meth:`_recv_impl`; all
    collectives have default implementations on top of those. Payloads are
    arbitrary picklable Python objects; numpy arrays take the fast path in
    backends that support buffer transfer.
    """

    def __init__(self, rank: int, size: int):
        if size < 1:
            raise CommError(f"communicator size must be >= 1, got {size}")
        if not (0 <= rank < size):
            raise CommError(f"rank {rank} out of range for size {size}")
        self._rank = rank
        self._size = size
        self.traffic = TrafficStats()

    # -- identity ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's index in ``[0, size)``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} rank={self.rank} size={self.size}>"

    # -- point to point ----------------------------------------------------

    @abstractmethod
    def _send_impl(self, obj: Any, dest: int, tag: int) -> None:
        """Deliver ``obj`` to ``dest``; must not block indefinitely on buffered sends."""

    @abstractmethod
    def _recv_impl(self, source: int, tag: int) -> Any:
        """Block until a message with ``tag`` from ``source`` arrives; return it."""

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest``."""
        self._check_peer(dest)
        self.traffic.record_send(dest, payload_nbytes(obj))
        self._send_impl(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive one message from rank ``source``."""
        self._check_peer(source)
        obj = self._recv_impl(source, tag)
        self.traffic.record_recv(source, payload_nbytes(obj))
        return obj

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Exchange: send ``obj`` to ``dest`` and receive from ``source``.

        Safe against deadlock as long as the backend buffers sends (both
        built-in executors do; MPI adapters use ``Sendrecv`` semantics).
        """
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self._size):
            raise CommError(f"peer rank {peer} out of range for size {self._size}")

    # -- collectives --------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        # Linear gather-to-0 then broadcast; exact and simple.
        if self._size == 1:
            return
        if self._rank == 0:
            for src in range(1, self._size):
                self.recv(src, _BARRIER_TAG)
            for dst in range(1, self._size):
                self.send(None, dst, _BARRIER_TAG)
        else:
            self.send(None, 0, _BARRIER_TAG)
            self.recv(0, _BARRIER_TAG)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank; returns the object."""
        self._check_peer(root)
        if self._size == 1:
            return obj
        if self._rank == root:
            for dst in range(self._size):
                if dst != root:
                    self.send(obj, dst, _BCAST_TAG)
            return obj
        return self.recv(root, _BCAST_TAG)

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter one element of ``objs`` (length ``size``, root only) to each rank."""
        self._check_peer(root)
        if self._rank == root:
            if objs is None or len(objs) != self._size:
                raise CommError(
                    f"scatter at root needs a sequence of length {self._size}"
                )
            for dst in range(self._size):
                if dst != root:
                    self.send(objs[dst], dst, _SCATTER_TAG)
            return objs[root]
        return self.recv(root, _SCATTER_TAG)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root``; others get ``None``."""
        self._check_peer(root)
        if self._rank == root:
            out: List[Any] = [None] * self._size
            out[root] = obj
            for src in range(self._size):
                if src != root:
                    out[src] = self.recv(src, _GATHER_TAG)
            return out
        self.send(obj, root, _GATHER_TAG)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank, result visible at every rank."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: OpLike = ReduceOp.SUM, root: int = 0) -> Any:
        """Reduce per-rank values to ``root`` (others get ``None``).

        The fold is performed in rank order so non-commutative callables are
        deterministic.
        """
        fn = _resolve_op(op)
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = fn(acc, item)
        return acc

    def allreduce(self, obj: Any, op: OpLike = ReduceOp.SUM) -> Any:
        """Reduce per-rank values, result visible at every rank."""
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Personalized exchange: rank i sends ``objs[j]`` to rank j.

        Returns the list where element j is what rank j sent to this rank.
        """
        if len(objs) != self._size:
            raise CommError(f"alltoall needs exactly {self._size} payloads")
        out: List[Any] = [None] * self._size
        out[self._rank] = objs[self._rank]
        # Round-based pairwise exchange avoids head-of-line blocking.
        for shift in range(1, self._size):
            dest = (self._rank + shift) % self._size
            source = (self._rank - shift) % self._size
            self.send(objs[dest], dest, _ALLTOALL_TAG)
            out[source] = self.recv(source, _ALLTOALL_TAG)
        return out

    # -- convenience --------------------------------------------------------

    def split_range(self, total: int) -> tuple[int, int]:
        """This rank's contiguous ``(start, stop)`` share of ``range(total)``."""
        from repro.util.chunking import chunk_slices

        return chunk_slices(total, self._size)[self._rank]
