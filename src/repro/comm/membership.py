"""Survivor agreement after a rank failure (recovery membership protocol).

When a collective aborts with :class:`~repro.errors.RankFailedError`, the
surviving ranks must agree — without any coordinator that is itself
guaranteed alive — on *who* survived, so they can all shrink to the same
sub-communicator and re-merge. :func:`agree_on_survivors` runs a bounded
gossip protocol over the existing mailbox substrate:

1. every participant repeatedly broadcasts its current view (the set of
   ranks it believes alive) to every rank not yet *confirmed* dead;
2. a peer that answers contributes its view (death information is unioned
   — a rank anyone has confirmed dead is dead for everyone); a peer that
   neither answers within the probe timeout nor has announced a failure
   sentinel is confirmed dead;
3. the protocol terminates when a full round passes in which every live
   peer echoed exactly the caller's view — i.e. all survivors hold the
   same set — or fails fast after ``size + 2`` rounds.

The initial suspect (the rank the failed collective blamed) is treated as
*maybe dead* unless its death was confirmed by a failure sentinel: a recv
timeout can also mean the peer is slow or a message was lost, and such a
peer rejoins the agreement as soon as its own receive times out. This is
what lets the recovery path double as a retry path for transient message
loss — the survivor set comes back complete and the consolidation is
simply re-run on the next epoch.

The probe timeout must dominate the peers' receive timeout: a peer still
blocked inside the abandoned collective only joins the agreement after its
own recv times out. :func:`agreement_timeout_for` encodes that rule.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.comm.mailbox import MailboxComm
from repro.errors import RankFailedError

__all__ = ["agree_on_survivors", "agreement_timeout_for"]

_AGREE_TAG_BASE = -450


def agreement_timeout_for(comm_timeout: Optional[float], floor: float = 2.0) -> float:
    """Probe timeout that safely dominates the communicator's recv timeout."""
    if comm_timeout is None:
        return max(floor, 30.0)
    return max(floor, comm_timeout * 1.25 + 0.5)


def agree_on_survivors(
    comm: MailboxComm,
    suspects: Iterable[int] = (),
    confirmed_dead: Iterable[int] = (),
    probe_timeout: Optional[float] = None,
) -> List[int]:
    """Agree with the other survivors on who is still alive.

    Parameters
    ----------
    comm:
        The communicator the failure happened on (current epoch).
    suspects:
        Ranks (current numbering) the caller suspects but cannot confirm
        — typically the ``rank`` of an unconfirmed
        :class:`~repro.errors.RankFailedError`. They are still probed.
    confirmed_dead:
        Ranks whose death is certain (failure sentinel seen); never probed.
    probe_timeout:
        Per-peer wait for a view message. Defaults to
        :func:`agreement_timeout_for` of the communicator's recv timeout.

    Returns the sorted survivor list in the communicator's numbering
    (always includes the caller). Raises
    :class:`~repro.errors.RankFailedError` if no consensus emerges within
    the round bound — at that point failing fast beats a split brain.
    """
    me, size = comm.rank, comm.size
    if probe_timeout is None:
        probe_timeout = agreement_timeout_for(comm._timeout)
    dead: Set[int] = {int(r) for r in confirmed_dead}
    # Sentinels observed before the agreement started count as confirmed.
    phys_to_cur = {comm._physical[r]: r for r in range(size)}
    for phys in comm.drain_failure_notices():
        if phys in phys_to_cur:
            dead.add(phys_to_cur[phys])
    dead.discard(me)
    alive: Set[int] = set(range(size)) - dead
    suspected: Set[int] = {int(r) for r in suspects} & alive - {me}

    for round_no in range(size + 2):
        tag = _AGREE_TAG_BASE - round_no
        view = sorted(alive)
        for peer in alive - {me}:
            comm.send(view, peer, tag)
        consensus = True
        for peer in sorted(alive - {me}):
            status, payload = comm.recv_probe(peer, tag, probe_timeout)
            if status == "ok":
                peer_view = set(payload)
                if peer_view != alive:
                    consensus = False
                # Death info is monotone: union what the peer learned.
                newly_dead = alive - peer_view - {me}
                if newly_dead:
                    dead |= newly_dead
                suspected.discard(peer)
            else:  # timeout or failure sentinel: peer is gone
                dead.add(peer)
                consensus = False
        # Fold in sentinels drained while probing (third-party deaths).
        for phys in comm.drain_failure_notices():
            if phys in phys_to_cur and phys_to_cur[phys] != me:
                dead.add(phys_to_cur[phys])
        new_alive = set(range(size)) - dead
        if new_alive != alive:
            consensus = False
            alive = new_alive
        if consensus and not suspected:
            return sorted(alive)
        suspected &= alive
    raise RankFailedError(
        f"rank {comm.physical_rank}: survivor agreement did not converge "
        f"after {size + 2} rounds (last view: {sorted(alive)})",
        rank=-1,
        confirmed=False,
    )
