"""Process-backed SPMD executor.

Gives each rank a real OS process (its own address space and GIL), which is
the honest analogue of the paper's MPI deployment on a single node. Ranks
communicate through :class:`multiprocessing.Queue` mailboxes; payloads are
pickled, and numpy arrays ride through pickle's buffer protocol.

The SPMD function and its arguments must be picklable (i.e. defined at
module top level) — the same constraint ``mpiexec`` imposes by construction.

Failure handling: a rank that raises sends a failure sentinel to every peer
(so blocked receives abort instead of hanging) and reports the traceback to
the parent, which raises :class:`~repro.errors.RankFailedError`. A rank that
dies without reporting (e.g. ``os._exit``/segfault) is detected by process
exit code.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.comm.mailbox import MailboxComm
from repro.errors import CommError, RankFailedError

__all__ = ["run_spmd_processes"]


def _worker_main(
    rank: int,
    size: int,
    inboxes: Sequence[Any],
    result_queue: Any,
    fn: Callable[..., Any],
    args: Sequence[Any],
    timeout: Optional[float],
) -> None:
    comm = MailboxComm(rank, size, inboxes, timeout=timeout)
    try:
        value = fn(comm, *args)
    except BaseException as exc:  # noqa: BLE001
        comm.announce_failure(f"{type(exc).__name__}: {exc}")
        result_queue.put(("error", rank, f"{type(exc).__name__}: {exc}",
                          traceback.format_exc()))
        return
    result_queue.put(("ok", rank, value, comm.traffic.snapshot()))


def run_spmd_processes(
    fn: Callable[..., Any],
    size: int,
    args: Sequence[Any] = (),
    timeout: Optional[float] = 300.0,
    start_method: str = "fork",
) -> List[Any]:
    """Execute ``fn(comm, *args)`` on ``size`` process ranks.

    Returns per-rank return values in rank order. Return values must be
    picklable.
    """
    ctx = mp.get_context(start_method)
    inboxes = [ctx.Queue() for _ in range(size)]
    result_queue = ctx.Queue()

    procs = [
        ctx.Process(
            target=_worker_main,
            args=(rank, size, inboxes, result_queue, fn, args, timeout),
            name=f"spmd-rank-{rank}",
        )
        for rank in range(size)
    ]
    for p in procs:
        p.start()

    results: List[Any] = [None] * size
    errors: List[tuple[int, str, str]] = []
    received = 0
    try:
        while received < size:
            try:
                kind, rank, payload, extra = result_queue.get(timeout=timeout)
            except Exception as exc:
                # A rank died without reporting — find it by exit code.
                dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    bad = dead[0]
                    raise RankFailedError(
                        f"SPMD process {bad.name} exited with code {bad.exitcode} "
                        "without reporting a result",
                        rank=int(bad.name.rsplit("-", 1)[-1]),
                    ) from exc
                raise CommError(
                    f"timed out after {timeout}s waiting for SPMD results"
                ) from exc
            received += 1
            if kind == "ok":
                results[rank] = payload
            else:
                errors.append((rank, payload, extra))
    finally:
        for p in procs:
            p.join(timeout=10)
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck rank
                p.terminate()
                p.join()
        for q in inboxes:
            q.close()
            q.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()

    if errors:
        errors.sort(key=lambda e: e[0])
        # Prefer the root-cause failure over cascaded RankFailedError reports.
        originals = [e for e in errors if not e[1].startswith("RankFailedError")]
        rank, message, tb = (originals or errors)[0]
        raise RankFailedError(f"SPMD rank {rank} raised {message}\n{tb}", rank=rank)
    return results
