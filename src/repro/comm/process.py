"""Process-backed SPMD executor.

Gives each rank a real OS process (its own address space and GIL), which is
the honest analogue of the paper's MPI deployment on a single node. Ranks
communicate through :class:`multiprocessing.Queue` mailboxes; small payloads
are pickled, and top-level numpy arrays at or above ``shm_threshold`` bytes
travel zero-copy through POSIX shared memory (:mod:`repro.comm.shm`) — the
queue then carries only a ~100-byte descriptor instead of the data.

The SPMD function and its arguments must be picklable (i.e. defined at
module top level) — the same constraint ``mpiexec`` imposes by construction.

Failure handling: a rank that raises sends a failure sentinel to every peer
(so blocked receives abort instead of hanging) and reports the traceback to
the parent. A rank that dies without reporting (``os._exit``, SIGKILL,
segfault, OOM) is detected by the parent's fast poll on the result queue —
the parent then *fans out the failure sentinel on the dead rank's behalf*,
so peers blocked mid-collective abort within the poll interval instead of
hanging until their receive timeout. Failures either raise
:class:`~repro.errors.RankFailedError` carrying the first failing rank's id
and traceback, or with ``return_exceptions=True`` land in the failed ranks'
result slots while survivors' results come back intact.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.comm.mailbox import FAILURE_TAG, MailboxComm
from repro.comm.shm import DEFAULT_SHM_THRESHOLD, ShmArrayRef, unlink_ref
from repro.errors import CommError, RankFailedError

__all__ = ["run_spmd_processes"]

#: Parent-side poll interval for the result queue. Bounds how long peers of
#: a silently-dead rank stay blocked before the parent's sentinel fan-out
#: wakes them.
_POLL_INTERVAL = 0.25


def _worker_main(
    rank: int,
    size: int,
    inboxes: Sequence[Any],
    result_queue: Any,
    fn: Callable[..., Any],
    args: Sequence[Any],
    timeout: Optional[float],
    faults: Optional[Any],
    suspicion_timeout: Optional[float] = None,
    shm_threshold: Optional[int] = None,
) -> None:
    injector = None
    if faults is not None:
        from repro.comm.faults import FaultInjector

        injector = FaultInjector(faults, rank)
    comm = MailboxComm(rank, size, inboxes, timeout=timeout, injector=injector,
                       suspicion_timeout=suspicion_timeout,
                       shm_threshold=shm_threshold)
    try:
        try:
            value = fn(comm, *args)
        finally:
            if shm_threshold is not None:
                # Reclaim segments behind messages this rank never received
                # (peers may have kept sending after our program finished
                # or died). Unreceived sends *to dead peers* are swept by
                # the parent's teardown drain.
                comm.drain_shm_refs()
    except BaseException as exc:  # noqa: BLE001
        comm.announce_failure(f"{type(exc).__name__}: {exc}")
        result_queue.put(("error", rank, f"{type(exc).__name__}: {exc}",
                          traceback.format_exc()))
        return
    result_queue.put(("ok", rank, value, comm.traffic.snapshot()))


def _drain_shm_leftovers(inboxes: Sequence[Any]) -> int:
    """Unlink shm segments referenced by messages nobody will ever receive."""
    reclaimed = 0
    for q in inboxes:
        while True:
            try:
                _src, _tag, payload = q.get(timeout=0.01)
            except Exception:
                break
            if isinstance(payload, ShmArrayRef) and unlink_ref(payload):
                reclaimed += 1
    return reclaimed


def run_spmd_processes(
    fn: Callable[..., Any],
    size: int,
    args: Sequence[Any] = (),
    timeout: Optional[float] = 300.0,
    start_method: str = "fork",
    faults: Optional[Any] = None,
    return_exceptions: bool = False,
    suspicion_timeout: Optional[float] = None,
    shm_threshold: Optional[int] = DEFAULT_SHM_THRESHOLD,
) -> List[Any]:
    """Execute ``fn(comm, *args)`` on ``size`` process ranks.

    Returns per-rank return values in rank order. Return values must be
    picklable. ``timeout`` bounds both each rank's receives and how long
    the parent waits between result arrivals. ``suspicion_timeout``
    enables slow≠dead probing in each rank's communicator.
    ``shm_threshold`` sets the byte floor above which top-level ndarray
    payloads travel zero-copy through POSIX shared memory (``None``
    disables the shm path entirely).
    """
    ctx = mp.get_context(start_method)
    inboxes = [ctx.Queue() for _ in range(size)]
    result_queue = ctx.Queue()

    procs = [
        ctx.Process(
            target=_worker_main,
            args=(rank, size, inboxes, result_queue, fn, args, timeout, faults,
                  suspicion_timeout, shm_threshold),
            name=f"spmd-rank-{rank}",
        )
        for rank in range(size)
    ]
    for p in procs:
        p.start()

    results: List[Any] = [None] * size
    errors: List[tuple[int, str, str]] = []   # chronological arrival order
    reported: set = set()
    received = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while received < size:
            try:
                kind, rank, payload, extra = result_queue.get(
                    timeout=_POLL_INTERVAL
                )
            except Exception as exc:
                # Fast path for silent deaths: a nonzero exit code with no
                # report means the rank can never report. Announce its
                # failure to every inbox on its behalf so blocked peers
                # abort now rather than at their receive timeout.
                for p in procs:
                    rank = int(p.name.rsplit("-", 1)[-1])
                    if rank in reported or p.is_alive():
                        continue
                    if p.exitcode in (0, None):
                        continue  # exit 0: its result is in flight
                    message = (
                        f"process for rank {rank} exited with code "
                        f"{p.exitcode} without reporting"
                    )
                    for q in inboxes:
                        try:
                            q.put((rank, FAILURE_TAG, message))
                        except Exception:  # pragma: no cover - torn down
                            pass
                    errors.append((rank, f"RankDied: {message}", ""))
                    reported.add(rank)
                    received += 1
                    deadline = (
                        None if timeout is None
                        else time.monotonic() + timeout
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise CommError(
                        f"timed out after {timeout}s waiting for SPMD results"
                    ) from exc
                continue
            received += 1
            reported.add(rank)
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            if kind == "ok":
                results[rank] = payload
            else:
                errors.append((rank, payload, extra))
    finally:
        for p in procs:
            p.join(timeout=10)
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck rank
                p.terminate()
                p.join()
        if shm_threshold is not None:
            # Dead or early-exited ranks leave undelivered messages in
            # their inboxes; unlink any shm segments behind them so the
            # run leaves /dev/shm exactly as it found it.
            _drain_shm_leftovers(inboxes)
        for q in inboxes:
            q.close()
            q.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()

    if errors:
        if return_exceptions:
            for rank, message, tb in errors:
                results[rank] = RankFailedError(
                    f"SPMD rank {rank} raised {message}\n{tb}", rank=rank
                )
            return results
        # Prefer the chronologically-first root-cause failure over cascaded
        # RankFailedError reports from peers that merely noticed the death.
        originals = [e for e in errors if not e[1].startswith("RankFailedError")]
        rank, message, tb = (originals or errors)[0]
        raise RankFailedError(f"SPMD rank {rank} raised {message}\n{tb}", rank=rank)
    return results
