"""Random-projection kernel.

Projects points into the reduced space: ``X' = X @ A`` with ``A`` an
``(N, N_rp)`` matrix of unit column vectors. The projected coordinate along
column ``a_i`` is ``|x|·cos(θ_i)`` — exactly the dot product, which is why a
single GEMM implements paper §3.1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine

__all__ = ["project_points"]


def project_points(
    x: np.ndarray,
    matrix: np.ndarray,
    engine: Optional[KernelEngine] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Project ``x`` (M × N) through ``matrix`` (N × N_rp) → (M × N_rp).

    With an engine, the GEMM is executed block-by-block so peak memory is
    bounded by one block of projected rows.
    """
    x = np.asarray(x, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if x.ndim != 2 or matrix.ndim != 2:
        raise ValidationError("project_points needs 2-D x and matrix")
    if x.shape[1] != matrix.shape[0]:
        raise ValidationError(
            f"dimension mismatch: x has {x.shape[1]} features, "
            f"matrix expects {matrix.shape[0]}"
        )
    if engine is None:
        if out is None:
            return x @ matrix
        np.matmul(x, matrix, out=out)
        return out
    return engine.map(
        lambda block, a: block @ a,
        x,
        matrix,
        out=out,
        out_shape=(x.shape[0], matrix.shape[1]),
        out_dtype=np.float64,
    )
