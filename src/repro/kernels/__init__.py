"""Data-parallel compute kernels (GPU substitute).

The paper accelerates key assignment and histogram construction with
Numba-CUDA kernels on Tesla K40m GPUs. The algorithmic structure those
kernels exploit is plain data parallelism: every (point, dimension) pair is
independent. This package reproduces that structure with vectorized NumPy
executed through a chunked :class:`~repro.kernels.engine.KernelEngine`
that mirrors a GPU grid — blocks of points are processed independently, so
the same decomposition would map 1:1 onto real CUDA blocks.

All kernels are allocation-disciplined: outputs can be preallocated and are
written in place, and chunked execution keeps the working set cache-sized
(see the hpc-parallel guide notes on views, contiguity and in-place ops).
"""

from __future__ import annotations

from repro.kernels.engine import KernelEngine, DEFAULT_BLOCK_SIZE
from repro.kernels.project import project_points
from repro.kernels.keys import (
    bin_indices,
    bin_indices_at_depths,
    prefix_bins,
    pack_keys,
    unpack_keys,
)
from repro.kernels.histogram import accumulate_histogram, accumulate_histograms
from repro.kernels.labels import intervals_for_bins, combine_interval_labels

__all__ = [
    "KernelEngine",
    "DEFAULT_BLOCK_SIZE",
    "project_points",
    "bin_indices",
    "bin_indices_at_depths",
    "prefix_bins",
    "pack_keys",
    "unpack_keys",
    "accumulate_histogram",
    "accumulate_histograms",
    "intervals_for_bins",
    "combine_interval_labels",
]
