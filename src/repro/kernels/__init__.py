"""Data-parallel compute kernels (GPU substitute).

The paper accelerates key assignment and histogram construction with
Numba-CUDA kernels on Tesla K40m GPUs. The algorithmic structure those
kernels exploit is plain data parallelism: every (point, dimension) pair is
independent. This package reproduces that structure with vectorized NumPy
executed through a chunked :class:`~repro.kernels.engine.KernelEngine`
that mirrors a GPU grid — blocks of points are processed independently, so
the same decomposition would map 1:1 onto real CUDA blocks.

All kernels are allocation-disciplined: outputs can be preallocated and are
written in place, and chunked execution keeps the working set cache-sized
(see the hpc-parallel guide notes on views, contiguity and in-place ops).

Two execution paths coexist:

* the **reference** kernels (``project_points``, ``bin_indices``,
  ``prefix_bins``, ``accumulate_histogram``, ``pack_keys``) — simple,
  separately-testable passes that define the semantics; and
* the **fused** path (:func:`project_bin_count` /
  :func:`fused_partial_fit`) behind the pluggable
  :class:`~repro.kernels.backend.KernelBackend` API, which runs the whole
  projection → bin → histogram → key pipeline in one chunked pass with a
  batched GEMM and no full-size intermediates. The equivalence suite
  (``tests/property/test_fused_equivalence.py``) holds the fused path
  bit-identical to the reference on every backend.
"""

from __future__ import annotations

from repro.kernels.engine import KernelEngine, DEFAULT_BLOCK_SIZE
from repro.kernels.backend import (
    BACKEND_ENV_VAR,
    KernelBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.kernels.numba_backend import NumbaBackend  # registers itself
from repro.kernels.project import project_points
from repro.kernels.keys import (
    bin_scale,
    bin_indices,
    bin_indices_at_depths,
    prefix_bins,
    pack_keys,
    unpack_keys,
)
from repro.kernels.histogram import accumulate_histogram, accumulate_histograms
from repro.kernels.fused import (
    FusedResult,
    FusedStateSpec,
    decode_key_codes,
    fused_partial_fit,
    project_bin_count,
)
from repro.kernels.labels import intervals_for_bins, combine_interval_labels

__all__ = [
    "KernelEngine",
    "DEFAULT_BLOCK_SIZE",
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "project_points",
    "bin_scale",
    "bin_indices",
    "bin_indices_at_depths",
    "prefix_bins",
    "pack_keys",
    "unpack_keys",
    "accumulate_histogram",
    "accumulate_histograms",
    "FusedResult",
    "FusedStateSpec",
    "decode_key_codes",
    "fused_partial_fit",
    "project_bin_count",
    "intervals_for_bins",
    "combine_interval_labels",
]
