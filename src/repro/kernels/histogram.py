"""Histogram accumulation kernels.

Per-dimension bin densities are the *only* data-derived state KeyBin2 ever
communicates, so this is the hot accumulation path. Counting uses a single
flattened ``bincount`` over ``dim * n_bins + bin`` — one pass over the block
regardless of dimensionality, matching the GPU pattern of per-block shared-
memory histograms merged into the global one.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine

__all__ = ["accumulate_histogram", "accumulate_histograms"]


def accumulate_histogram(
    bins: np.ndarray,
    n_bins: int,
    out: Optional[np.ndarray] = None,
    engine: Optional[KernelEngine] = None,
) -> np.ndarray:
    """Count bin occupancy per dimension.

    Parameters
    ----------
    bins:
        (M × N) integer bin indices, each in ``[0, n_bins)``.
    n_bins:
        Number of bins per dimension.
    out:
        Optional (N × n_bins) int64 accumulator, added to in place —
        this is what makes streaming updates O(batch).

    Returns
    -------
    (N × n_bins) int64 counts.
    """
    bins = np.asarray(bins)
    if bins.ndim != 2:
        raise ValidationError("accumulate_histogram needs a 2-D bins array")
    m, n_dims = bins.shape
    if out is None:
        out = np.zeros((n_dims, n_bins), dtype=np.int64)
    elif out.shape != (n_dims, n_bins):
        raise ValidationError(
            f"out shape {out.shape} != expected {(n_dims, n_bins)}"
        )

    offsets = (np.arange(n_dims, dtype=np.int64) * n_bins).reshape(1, -1)

    def kernel(block: np.ndarray) -> np.ndarray:
        flat = block.astype(np.int64, copy=False) + offsets
        counts = np.bincount(flat.ravel(), minlength=n_dims * n_bins)
        return counts.reshape(n_dims, n_bins)

    if m == 0:
        return out
    if engine is None:
        out += kernel(bins)
        return out
    partial = engine.reduce(kernel, bins, combine=lambda a, b: a + b)
    out += partial
    return out


def accumulate_histograms(
    bins_by_depth: dict[int, np.ndarray],
    out: Optional[dict[int, np.ndarray]] = None,
    engine: Optional[KernelEngine] = None,
) -> dict[int, np.ndarray]:
    """Accumulate histograms for every depth in one call.

    ``bins_by_depth`` maps depth → (M × N) bin indices (as produced by
    :func:`repro.kernels.keys.bin_indices_at_depths`).
    """
    result = out if out is not None else {}
    for depth, bins in bins_by_depth.items():
        n_bins = 1 << depth
        result[depth] = accumulate_histogram(
            bins, n_bins, out=result.get(depth), engine=engine
        )
    return result
