"""Fused projection → binning → histogram → key kernel.

The reference streaming path materializes, per batch and per projection:
the full projected array, the full deep bin-index array, one shifted copy
per shallower depth, and a uint8 key copy — four full-size intermediates
whose memory traffic dominates ``partial_fit``. This module fuses the
whole pipeline into one chunked pass, the communication-avoiding batched-
BLAS formulation of the kernel-k-means literature applied to KeyBin2:

* **One transposed GEMM per chunk, for all projections.** The
  per-projection matrices are concatenated column-wise and the product is
  computed transposed — ``(Σ n_rp, N) @ (N, chunk)`` — so each input
  chunk is read once, projected for every state in a single BLAS call,
  and each state's dimensions form a *contiguous* dimension-major block
  of the workspace. One caveat kept honest: on some small shapes BLAS
  dispatches different microkernels for the batched and per-state
  products, so an individual dot product may round 1 ulp differently
  than the reference's per-state GEMM. That difference is invisible
  downstream unless a projected value lies within an ulp of a bin
  boundary — measure zero for points in generic position, systematic
  only for a single-point stream whose derived range centers on the
  point itself (see ``tests/property/test_fused_equivalence.py``).
  Everything *after* the GEMM is bit-identical by construction.
* **Bin + pack in one pass over the chunk.** The backend
  (:mod:`repro.kernels.backend`) bins the chunk at the deepest depth and
  byte-packs each sample's deep key — without materializing any
  full-batch intermediate. The float arithmetic is the shared
  :func:`repro.kernels.keys.bin_scale` recipe, so outputs stay
  bit-identical to the reference kernels.
* **Histograms from the key table, not the points.** For states whose
  keys fit one uint64 code (≤ 8 projected dimensions), the deepest
  histogram is derived after the chunk loop from the unique keys and
  their counts — every key *is* its tuple of deepest bin indices, so a
  count-weighted bincount per dimension reproduces the histogram with
  exact integer math in O(unique keys) instead of O(points) per chunk.
* **Shallower depths by prefix arithmetic, after the fact.** Depth-``d``
  bins are the deepest bins shifted right, so the depth-``d`` histogram
  is an exact integer reshape-sum of the deepest histogram — shallower
  depths cost O(histogram), not O(points).
* **Keys as sorted unique codes.** Deep keys are byte-encoded uint64
  codes (dimension 0 most significant, matching
  :class:`~repro.core.streaming.KeyCounter`'s canonical encoding), and the
  per-batch fold hands the counter pre-counted unique codes instead of
  raw rows. States wider than 8 projected dimensions fall back to raw
  uint8 rows.

All workspaces are preallocated per call and sized to
``min(chunk_size, M)`` rows, so single-point streams pay no large
allocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.kernels.backend import KernelBackend, get_backend
from repro.kernels.keys import bin_scale
from repro.obs import default_registry, trace

__all__ = [
    "FusedResult",
    "FusedStateSpec",
    "decode_key_codes",
    "fused_partial_fit",
    "project_bin_count",
]

#: Keys pack into one uint64 code when the projected dimensionality fits
#: 8 bytes; wider states carry raw uint8 rows instead.
_NARROW_DIMS = 8

#: Default driver chunk. Larger than the generic engine's block size
#: because the chunk here feeds a batched BLAS call whose fixed costs
#: amortize measurably up to ~32k rows; the workspace stays bounded
#: (Σ n_rp × 32768 × 8 B ≈ 16 MB at paper scale), far below the
#: full-batch intermediates the fusion exists to avoid.
DEFAULT_FUSED_CHUNK = 32_768


@dataclass(frozen=True)
class FusedStateSpec:
    """One projection state's inputs to the fused driver.

    ``matrix`` may be None (projection disabled: bin the raw features).
    ``depths`` are the candidate depths; the deepest must be ≤ 8 because
    deep keys are stored as bytes (the streaming invariant).
    """

    matrix: Optional[np.ndarray]
    r_min: np.ndarray
    r_max: np.ndarray
    depths: Tuple[int, ...]


@dataclass
class FusedResult:
    """Per-state outputs of one fused pass.

    hist:
        depth → (n_dims × 2^depth) int64 histogram of this batch.
    key_rows:
        (K × n_dims) uint8 unique deep keys, byte-lexicographically
        sorted.
    key_counts:
        (K,) int64 occurrences of each unique key in the batch.
    key_codes:
        (K,) uint64 byte-packed codes of ``key_rows`` (same order) when
        n_dims ≤ 8, else None — the zero-copy handoff into
        :meth:`~repro.core.streaming.KeyCounter.merge_encoded`.
    n_rows:
        Points processed.
    backend:
        Name of the backend that ran the pass.
    oor_low, oor_high:
        (n_dims,) int64 out-of-range accounting: how many of this batch's
        entries were clipped into the bottom/top boundary bin per
        dimension. Always populated — silent edge-bin saturation is the
        open-world failure mode this exists to surface. Adaptive callers
        treat any nonzero count as "widen the grid and re-run the batch".
    obs_lo, obs_hi:
        (n_dims,) float64 observed minima/maxima of the projected batch,
        or None unless the caller asked for bounds tracking
        (``track_bounds=True``) — only adaptive range discovery needs
        them, and the per-chunk reductions are not free.
    """

    hist: Dict[int, np.ndarray]
    key_rows: np.ndarray
    key_counts: np.ndarray
    key_codes: Optional[np.ndarray]
    n_rows: int
    backend: str
    oor_low: Optional[np.ndarray] = None
    oor_high: Optional[np.ndarray] = None
    obs_lo: Optional[np.ndarray] = None
    obs_hi: Optional[np.ndarray] = None


def decode_key_codes(codes: np.ndarray, width: int) -> np.ndarray:
    """Unpack byte-encoded uint64 key codes into (K × width) uint8 rows."""
    if width < 1 or width > _NARROW_DIMS:
        raise ValidationError(f"code width must be in [1, 8], got {width}")
    big = np.asarray(codes, dtype=np.uint64).astype(">u8")
    return big.view(np.uint8).reshape(-1, 8)[:, :width].copy()


class _PreparedState:
    """Driver-internal per-state workspace and accumulators."""

    def __init__(self, spec: FusedStateSpec, n_features: int, m_total: int):
        matrix = spec.matrix
        if matrix is not None:
            matrix = np.ascontiguousarray(matrix, dtype=np.float64)
            if matrix.ndim != 2:
                raise ValidationError("projection matrices must be 2-D")
            if matrix.shape[0] != n_features:
                raise ValidationError(
                    f"projection matrix expects {matrix.shape[0]} features, "
                    f"input has {n_features}"
                )
            n_dims = matrix.shape[1]
        else:
            n_dims = n_features
        depths = tuple(sorted(set(int(d) for d in spec.depths)))
        if not depths:
            raise ValidationError("each state needs at least one depth")
        if depths[0] < 1 or depths[-1] > 8:
            raise ValidationError(
                "the fused path stores deep keys as bytes; depths must lie "
                f"in [1, 8], got {depths}"
            )
        self.matrix = matrix
        self.n_dims = n_dims
        self.depths = depths
        self.deepest = depths[-1]
        self.n_bins = 1 << self.deepest
        self.r_min, self.scale = bin_scale(spec.r_min, spec.r_max, self.deepest)
        if self.r_min.shape[0] != n_dims:
            raise ValidationError(
                f"r_min/r_max length {self.r_min.shape[0]} does not match "
                f"the state's {n_dims} projected dimensions"
            )
        self.narrow = n_dims <= _NARROW_DIMS
        # Narrow states derive the deepest histogram from the unique key
        # counts after the chunk loop (exact integer math, O(K) instead
        # of O(M)); only wide states accumulate a histogram per chunk.
        self.hist_flat = (
            None if self.narrow else np.zeros(n_dims * self.n_bins, dtype=np.int64)
        )
        self.codes = np.empty(m_total, dtype=np.uint64) if self.narrow else None
        # Wide-key bin indices, dimension-major to match the transposed
        # chunk layout; transposed back once at unique time.
        self.rows_t = (
            None if self.narrow else np.empty((n_dims, m_total), dtype=np.uint8)
        )
        # Out-of-range accounting, accumulated across chunks by the
        # backend; observed bounds filled by the driver when requested.
        self.oor_low = np.zeros(n_dims, dtype=np.int64)
        self.oor_high = np.zeros(n_dims, dtype=np.int64)
        self.obs_lo: Optional[np.ndarray] = None
        self.obs_hi: Optional[np.ndarray] = None
        # Row slice in the stacked transposed GEMM output (set by driver).
        self.col_start = 0
        self.col_stop = 0


def fused_partial_fit(
    x: np.ndarray,
    specs: Sequence[FusedStateSpec],
    backend: Union[None, str, KernelBackend] = None,
    chunk_size: Optional[int] = DEFAULT_FUSED_CHUNK,
    track_bounds: bool = False,
) -> List[FusedResult]:
    """Run the fused pipeline over ``x`` for several projection states.

    This is the multi-state driver ``StreamingKeyBin2.partial_fit`` uses:
    all states with a projection matrix share one stacked GEMM per chunk.
    Emits the same ``project``/``bin``/``histogram``/``keys`` trace spans
    as the reference path, so phase attribution in the observability
    report is backend-agnostic.

    ``track_bounds=True`` additionally records each state's observed
    projected minima/maxima (``obs_lo``/``obs_hi`` on the result) — the
    measurement adaptive range discovery widens from. The backend folds
    each chunk's bounds before its bin arithmetic clobbers the
    workspace, and uses the same min/max reductions as its non-finite
    screen, so tracking costs roughly one extra pass over the projected
    chunk rather than two plus an isfinite temporary; fixed-range
    callers skip it entirely.

    Raises ``ValidationError`` when any chunk projects to a non-finite
    coordinate (NaN/Inf input); no caller-visible state is touched in that
    case — all accumulation happens in driver-local buffers.
    """
    x = np.ascontiguousarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValidationError("fused_partial_fit needs a 2-D (points × features) array")
    if not specs:
        raise ValidationError("fused_partial_fit needs at least one state spec")
    m_total, n_features = x.shape
    if chunk_size is None:
        chunk_size = max(m_total, 1)
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    be = get_backend(backend)

    prepared = [_PreparedState(spec, n_features, m_total) for spec in specs]
    if track_bounds and m_total > 0:
        # ±inf-seeded accumulators the backend folds each chunk's
        # min/max into (and uses as its non-finite screen, saving the
        # per-chunk isfinite pass); empty input keeps them None so the
        # result reports "nothing observed" rather than ±inf.
        for p in prepared:
            p.obs_lo = np.full(p.n_dims, np.inf)
            p.obs_hi = np.full(p.n_dims, -np.inf)

    # Column-stack every projection matrix into one GEMM operand: each
    # chunk of x is then read once and projected for all states in a
    # single BLAS call. Column-stacking does not change per-column dot
    # products, so this is bit-identical to separate GEMMs. The GEMM is
    # computed *transposed* — ``stacked.T @ chunk.T`` into a
    # (Σ n_rp × chunk) workspace — so each state's dimensions land in a
    # contiguous dimension-major block: the fused bin/pack arithmetic then
    # streams over contiguous memory instead of striding across the
    # stacked columns (~9× faster per chunk on this layout).
    to_stack = []
    col = 0
    for p in prepared:
        if p.matrix is not None:
            p.col_start, p.col_stop = col, col + p.n_dims
            col += p.n_dims
            to_stack.append(p.matrix)
    stacked_t = (
        np.ascontiguousarray(np.concatenate(to_stack, axis=1).T)
        if to_stack
        else None
    )

    chunk_rows = min(chunk_size, max(m_total, 1))
    proj_ws = (
        np.empty((col, chunk_rows), dtype=np.float64)
        if stacked_t is not None
        else None
    )
    raw_ws = (
        np.empty((n_features, chunk_rows), dtype=np.float64)
        if any(p.matrix is None for p in prepared)
        else None
    )

    t0 = time.perf_counter()
    n_chunk_launches = 0
    for start in range(0, m_total, chunk_rows):
        stop = min(start + chunk_rows, m_total)
        m = stop - start
        if stacked_t is not None:
            with trace.span("project"):
                be.gemm(stacked_t, x[start:stop].T, out=proj_ws[:, :m])
        with trace.span("bin"):
            for p in prepared:
                if p.matrix is not None:
                    view = proj_ws[p.col_start:p.col_stop, :m]
                else:
                    # fused_chunk clobbers its input; bin a writable copy.
                    np.copyto(raw_ws[:, :m], x[start:stop].T)
                    view = raw_ws[:, :m]
                bad = be.fused_chunk(
                    view, p.r_min, p.scale, p.n_bins, p.hist_flat,
                    codes=None if p.codes is None else p.codes[start:stop],
                    rows=None if p.rows_t is None else p.rows_t[:, start:stop],
                    oor_low=p.oor_low, oor_high=p.oor_high,
                    obs_lo=p.obs_lo, obs_hi=p.obs_hi,
                )
                n_chunk_launches += 1
                if bad >= 0:
                    raise ValidationError(
                        f"fused_partial_fit: row {start + bad} projects to a "
                        "non-finite coordinate (NaN/Inf input); filter or "
                        "clean the batch before binning"
                    )

    # Keys before histograms: narrow states build the deepest histogram
    # from the unique key counts (each key's count lands on its per-
    # dimension bins — exact integer math, O(K · n_dims) instead of an
    # O(M)-length bincount per chunk).
    keyed = []
    with trace.span("keys"):
        for p in prepared:
            if m_total == 0:
                key_rows = np.empty((0, p.n_dims), dtype=np.uint8)
                key_counts = np.empty(0, dtype=np.int64)
                key_codes = np.empty(0, dtype=np.uint64) if p.narrow else None
            elif p.narrow:
                # Hand-rolled unique: sort the code buffer in place (its
                # per-sample order is dead after the chunk loop) and
                # run-length encode — same result as np.unique with
                # return_counts, minus its internal flatten/copy pass.
                p.codes.sort()
                boundary = np.empty(m_total, dtype=bool)
                boundary[0] = True
                np.not_equal(p.codes[1:], p.codes[:-1], out=boundary[1:])
                starts = np.flatnonzero(boundary)
                key_codes = p.codes[starts]
                key_counts = np.diff(np.append(starts, m_total))
                key_rows = decode_key_codes(key_codes, p.n_dims)
            else:
                rows = np.ascontiguousarray(p.rows_t.T)
                void = rows.view([("", np.uint8)] * p.n_dims).ravel()
                uniq, counts = np.unique(void, return_counts=True)
                key_rows = uniq.view(np.uint8).reshape(-1, p.n_dims).copy()
                key_counts = counts.astype(np.int64, copy=False)
                key_codes = None
            keyed.append((key_rows, key_counts, key_codes))

    results: List[FusedResult] = []
    with trace.span("histogram"):
        for p, (key_rows, key_counts, key_codes) in zip(prepared, keyed):
            if p.narrow:
                deep = np.zeros((p.n_dims, p.n_bins), dtype=np.int64)
                if key_rows.shape[0]:
                    weights = key_counts.astype(np.float64)
                    for j in range(p.n_dims):
                        # Weighted bincount sums integer counts in float64
                        # — exact below 2^53, far beyond any batch size.
                        deep[j] = np.bincount(
                            key_rows[:, j], weights=weights, minlength=p.n_bins
                        )
            else:
                deep = p.hist_flat.reshape(p.n_dims, p.n_bins)
            hist: Dict[int, np.ndarray] = {}
            for d in p.depths:
                if d == p.deepest:
                    hist[d] = deep
                else:
                    # Depth-d bins are the deepest bins >> (deepest - d),
                    # so the depth-d histogram is an exact integer
                    # reshape-sum over 2^(deepest-d)-wide groups.
                    hist[d] = deep.reshape(
                        p.n_dims, 1 << d, 1 << (p.deepest - d)
                    ).sum(axis=2)
            results.append(
                FusedResult(
                    hist, key_rows, key_counts, key_codes, m_total, be.name,
                    oor_low=p.oor_low, oor_high=p.oor_high,
                    obs_lo=p.obs_lo, obs_hi=p.obs_hi,
                )
            )

    reg = default_registry()
    if reg.enabled:
        labels = {"backend": be.name}
        reg.counter(
            "kernel_fused_chunks_total",
            "Fused bin+pack+count chunk launches, per backend.",
            ("backend",),
        ).labels(**labels).inc(n_chunk_launches)
        reg.counter(
            "kernel_fused_rows_total",
            "Points processed by the fused kernel path, per backend.",
            ("backend",),
        ).labels(**labels).inc(m_total)
        reg.counter(
            "kernel_fused_seconds_total",
            "Wall seconds spent inside the fused kernel driver, per backend.",
            ("backend",),
        ).labels(**labels).inc(time.perf_counter() - t0)
    return results


def project_bin_count(
    x: np.ndarray,
    matrix: Optional[np.ndarray],
    r_min: np.ndarray,
    r_max: np.ndarray,
    depths: Sequence[int],
    backend: Union[None, str, KernelBackend] = None,
    chunk_size: Optional[int] = DEFAULT_FUSED_CHUNK,
) -> FusedResult:
    """Fused GEMM → bin → histogram → key pass for one projection state.

    The single-state public entry point: per chunk it projects, derives
    deepest-depth bin indices, accumulates the histogram and packs deep
    keys, never materializing a full projected or bin-index array. Returns
    a :class:`FusedResult`; bit-identical to running the reference
    kernels (``project_points`` → ``bin_indices`` → ``prefix_bins`` →
    ``accumulate_histogram`` → key counting) on the same inputs.
    """
    spec = FusedStateSpec(
        matrix=matrix,
        r_min=np.asarray(r_min, dtype=np.float64),
        r_max=np.asarray(r_max, dtype=np.float64),
        depths=tuple(int(d) for d in depths),
    )
    (result,) = fused_partial_fit(
        x, [spec], backend=backend, chunk_size=chunk_size
    )
    return result
