"""Pluggable kernel backends for the fused hot path.

The paper runs projection → binning → histogram → key packing as CUDA
kernels; this repo's reference implementation is vectorized NumPy. The
backend API in this module is the seam between the two worlds: the fused
driver (:mod:`repro.kernels.fused`) orchestrates chunking, workspaces and
accumulation, and delegates the two per-chunk compute primitives — the
GEMM and the fused bin+pack+count kernel — to a :class:`KernelBackend`.

Backends provided:

``numpy``
    Always available. In-place vectorized arithmetic over a per-shape
    scratch cache; the GEMM is BLAS via ``np.matmul``.
``numba``
    Optional (:mod:`repro.kernels.numba_backend`). A JIT-compiled scalar
    loop that bins, packs and counts in one pass over the chunk without
    any intermediate arrays. Auto-detected; gracefully absent when numba
    is not installed.

A GPU backend slots in the same way: subclass :class:`KernelBackend`,
implement ``gemm``/``fused_chunk``, and :func:`register_backend` it.

Selection order (:func:`get_backend`): an explicit name or instance →
the ``REPRO_KERNEL_BACKEND`` environment variable → ``auto`` (numba when
importable, else numpy).

Backends hold per-instance scratch buffers and are **not** thread-safe;
each consumer (one :class:`~repro.core.streaming.StreamingKeyBin2`, one
benchmark loop) resolves its own instance.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional, Type, Union

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

_LITTLE_ENDIAN = sys.byteorder == "little"


class KernelBackend:
    """One implementation of the per-chunk compute primitives.

    Subclasses implement :meth:`fused_chunk` (and may override
    :meth:`gemm`). The contract both the driver and the equivalence suite
    hold every backend to: outputs must be **bit-identical** to the
    reference kernels in :mod:`repro.kernels.keys` /
    :mod:`repro.kernels.histogram` — same float operations
    (``floor((x - r_min) * scale)`` then clip, with the shared scale from
    :func:`repro.kernels.keys.bin_scale`), no fused-multiply-add
    contraction, no fast-math reassociation.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run on the current host."""
        return True

    def gemm(
        self, x: np.ndarray, matrix: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``x @ matrix``, into ``out`` when given (the chunk workspace)."""
        if out is None:
            return x @ matrix
        np.matmul(x, matrix, out=out)
        return out

    def fused_chunk(
        self,
        projected: np.ndarray,
        r_min: np.ndarray,
        scale: np.ndarray,
        n_bins: int,
        hist_flat: Optional[np.ndarray] = None,
        codes: Optional[np.ndarray] = None,
        rows: Optional[np.ndarray] = None,
        oor_low: Optional[np.ndarray] = None,
        oor_high: Optional[np.ndarray] = None,
        obs_lo: Optional[np.ndarray] = None,
        obs_hi: Optional[np.ndarray] = None,
    ) -> int:
        """Bin, count and pack one (n × m) transposed chunk of projected
        coordinates.

        The chunk is dimension-major — row ``j`` holds coordinate ``j`` of
        every sample — because the driver computes the GEMM transposed:
        each state's dimensions then form a *contiguous* block of the
        stacked workspace, which is what makes the in-place float
        arithmetic below stream at memory bandwidth instead of striding.

        Parameters
        ----------
        projected:
            (n × m) float64 chunk, dimension-major. **Clobbered**: the
            driver hands in a workspace slice the backend may overwrite
            in place.
        r_min, scale:
            (n,) float64 binning parameters from
            :func:`repro.kernels.keys.bin_scale` at the deepest depth
            (applied per *row* of the transposed chunk).
        n_bins:
            ``2^deepest`` bins per dimension.
        hist_flat:
            Optional (n · n_bins,) int64 deepest-depth histogram, laid
            out ``dim * n_bins + bin``; accumulated in place. ``None``
            when the caller derives the histogram from the unique key
            counts instead (the narrow-key driver path, which is exact
            and much cheaper than an m-length bincount per chunk).
        codes:
            Optional (m,) uint64 output: the byte-packed deep key of each
            sample (dimension 0 in the most significant byte, low bytes
            zero-padded — the :class:`~repro.core.streaming.KeyCounter`
            code format). Only valid for n ≤ 8.
        rows:
            Optional (n × m) uint8 output of raw deep bin indices,
            dimension-major — the wide-key fallback when n > 8.
        oor_low, oor_high:
            Optional (n,) int64 accumulators for out-of-range accounting:
            the number of chunk entries whose pre-clip bin index fell
            below 0 / above ``n_bins - 1`` is **added** per dimension.
            The clip into the boundary bin still happens (the histogram
            and keys stay total), but the saturation is no longer silent
            — callers decide whether to widen the range (adaptive mode)
            or merely report it.
        obs_lo, obs_hi:
            Optional (n,) float64 accumulators for observed bounds: the
            chunk's per-dimension minima/maxima are folded in with
            ``minimum``/``maximum`` (pass ``+inf``/``-inf``-filled
            buffers initially). Both or neither. Backends may use the
            min/max reductions *as* the non-finite screen (NaN
            propagates through both and ±inf survives them), making
            bounds tracking cheaper than a separate finiteness pass —
            but the accumulators must stay untouched when the chunk
            turns out to contain a non-finite coordinate.

        Returns
        -------
        ``-1`` on success, else the chunk-sample index of the first
        sample containing a non-finite coordinate. On a non-negative
        return the chunk's partial accumulation is garbage and the caller
        must discard the whole run (the driver raises
        ``ValidationError``).
        """
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """Vectorized NumPy backend (always available; the default).

    Keeps a per-width scratch cache so steady-state streaming pays zero
    allocations for the integer intermediates; the float arithmetic runs
    in place on the projection workspace the driver owns.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._byte_scratch: Dict[int, np.ndarray] = {}
        self._bin_scratch: Dict[int, np.ndarray] = {}

    def _code_bytes(self, n: int, m: int) -> np.ndarray:
        """(m × 8) zeroed uint8 packing buffer for width-``n`` keys.

        Keyed by width: a given buffer only ever has its ``n`` key byte
        columns written, so its padding columns stay zero from the single
        allocation-time memset — no per-chunk clearing.
        """
        buf = self._byte_scratch.get(n)
        if buf is None or buf.shape[0] < m:
            buf = np.zeros((max(m, 1), 8), dtype=np.uint8)
            self._byte_scratch[n] = buf
        return buf[:m]

    def _bins_u8(self, n: int, m: int) -> np.ndarray:
        buf = self._bin_scratch.get(n)
        if buf is None or buf.shape[1] < m:
            buf = np.empty((n, max(m, 1)), dtype=np.uint8)
            self._bin_scratch[n] = buf
        return buf[:, :m]

    def fused_chunk(
        self,
        projected: np.ndarray,
        r_min: np.ndarray,
        scale: np.ndarray,
        n_bins: int,
        hist_flat: Optional[np.ndarray] = None,
        codes: Optional[np.ndarray] = None,
        rows: Optional[np.ndarray] = None,
        oor_low: Optional[np.ndarray] = None,
        oor_high: Optional[np.ndarray] = None,
        obs_lo: Optional[np.ndarray] = None,
        obs_hi: Optional[np.ndarray] = None,
    ) -> int:
        n, m = projected.shape
        if m == 0:
            return -1
        if obs_lo is not None and obs_hi is not None:
            # The min/max reductions double as the non-finite screen:
            # NaN propagates through both and ±inf survives them, so
            # the (n × m) isfinite pass (and its bool temporary) is
            # only paid on the failure path, to locate the bad sample.
            mn = projected.min(axis=1)
            mx = projected.max(axis=1)
            if not (np.isfinite(mn).all() and np.isfinite(mx).all()):
                finite_cols = np.isfinite(projected).all(axis=0)
                return int(np.flatnonzero(~finite_cols)[0])
            np.minimum(obs_lo, mn, out=obs_lo)
            np.maximum(obs_hi, mx, out=obs_hi)
        else:
            finite = np.isfinite(projected)
            if not finite.all():
                return int(np.flatnonzero(~finite.all(axis=0))[0])
        # Same float ops as the reference bin_indices kernel, in place.
        work = projected
        work -= r_min[:, None]
        work *= scale[:, None]
        np.floor(work, out=work)
        if oor_low is not None:
            oor_low += (work < 0.0).sum(axis=1)
        if oor_high is not None:
            oor_high += (work > n_bins - 1).sum(axis=1)
        np.clip(work, 0, n_bins - 1, out=work)
        if codes is not None:
            # Pack keys by byte layout instead of arithmetic: write each
            # dimension's bins (exact uint8 casts — bins < 2^8) into the
            # byte column where a uint64 read gives it weight 256^(7-j),
            # then read the buffer back as uint64. Dimension 0 lands in
            # the most significant byte, so numeric code order equals
            # key-bytes lexicographic order (the KeyCounter canon).
            buf = self._code_bytes(n, m)
            if _LITTLE_ENDIAN:
                for j in range(n):
                    np.copyto(buf[:, 7 - j], work[j], casting="unsafe")
            else:  # pragma: no cover - no big-endian host in CI
                for j in range(n):
                    np.copyto(buf[:, j], work[j], casting="unsafe")
            np.copyto(codes, buf.view(np.uint64).ravel())
        if rows is not None or hist_flat is not None:
            bins = rows if rows is not None else self._bins_u8(n, m)
            np.copyto(bins, work, casting="unsafe")
            if hist_flat is not None:
                hist2d = hist_flat.reshape(n, n_bins)
                for j in range(n):
                    hist2d[j] += np.bincount(bins[j], minlength=n_bins)
        return -1


_REGISTRY: Dict[str, Type[KernelBackend]] = {}

#: Probe order for ``auto`` resolution: fastest available wins.
_AUTO_ORDER: List[str] = ["numba", "numpy"]


def register_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ValidationError("backend classes must define a concrete `name`")
    _REGISTRY[cls.name] = cls
    return cls


register_backend(NumpyBackend)


def available_backends() -> Dict[str, bool]:
    """Registered backend names → availability on this host."""
    return {name: cls.is_available() for name, cls in sorted(_REGISTRY.items())}


def get_backend(
    name: Union[None, str, KernelBackend] = None
) -> KernelBackend:
    """Resolve a backend instance.

    ``name`` may be an instance (returned as-is), a registered name,
    ``"auto"``, or ``None`` — which consults ``REPRO_KERNEL_BACKEND`` and
    falls back to ``auto``. Returns a **fresh** instance (backends hold
    per-consumer scratch state).
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "auto"
    name = str(name).strip().lower()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            cls = _REGISTRY.get(candidate)
            if cls is not None and cls.is_available():
                return cls()
        name = "numpy"  # unreachable in practice; numpy is always available
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    if not cls.is_available():
        raise ValidationError(
            f"kernel backend {name!r} is not available on this host "
            "(optional dependency missing); pick another or use 'auto'"
        )
    return cls()
