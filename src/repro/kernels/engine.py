"""Chunked kernel-execution engine.

A stand-in for the paper's CUDA launch machinery: work over ``M`` points is
split into contiguous blocks (the grid), each block is handed to a
vectorized kernel (the warp-level SIMD work), and per-block partial results
are combined by an optional reducer. Because blocks are row slices of a
C-contiguous array, each launch touches a cache-friendly working set and
never copies input data.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.obs import default_registry
from repro.util.chunking import chunk_slices

__all__ = ["KernelEngine", "DEFAULT_BLOCK_SIZE"]

#: Default number of points per block; sized so a block of ~1280-d float64
#: rows stays in the tens of MB.
DEFAULT_BLOCK_SIZE = 8192


class KernelEngine:
    """Executes point-parallel kernels block by block.

    Parameters
    ----------
    block_size:
        Rows per block. Smaller blocks trade launch overhead for a smaller
        working set; ``None`` processes everything in one launch.
    """

    def __init__(self, block_size: Optional[int] = DEFAULT_BLOCK_SIZE):
        if block_size is not None and block_size < 1:
            raise ValidationError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.launches = 0

    def blocks(self, n_rows: int) -> List[tuple[int, int]]:
        """Contiguous (start, stop) block ranges covering ``n_rows`` rows."""
        if n_rows == 0:
            return []
        if self.block_size is None or self.block_size >= n_rows:
            return [(0, n_rows)]
        n_blocks = -(-n_rows // self.block_size)
        return chunk_slices(n_rows, n_blocks)

    def map(
        self,
        kernel: Callable[..., np.ndarray],
        x: np.ndarray,
        *kernel_args: Any,
        out: Optional[np.ndarray] = None,
        out_shape: Optional[tuple] = None,
        out_dtype=None,
    ) -> np.ndarray:
        """Apply ``kernel(block, *args)`` to row blocks, writing rows of ``out``.

        ``kernel`` must return an array whose first axis matches the block's
        row count. When ``out`` is omitted, it is allocated from
        ``out_shape``/``out_dtype`` (defaults: same rows as ``x``, kernel's
        dtype inferred from the first block).
        """
        n = x.shape[0]
        blocks = self.blocks(n)
        counter = self._launch_counter(kernel) if blocks else None
        for start, stop in blocks:
            # Metric and legacy attribute move together, per *executed*
            # block: a kernel exception mid-chunk must not leave the metric
            # overstating launches that never happened.
            self.launches += 1
            if counter is not None:
                counter.inc()
            result = kernel(x[start:stop], *kernel_args)
            if out is None:
                shape = out_shape if out_shape is not None else (n,) + result.shape[1:]
                dtype = out_dtype if out_dtype is not None else result.dtype
                out = np.empty(shape, dtype=dtype)
            out[start:stop] = result
        if out is None:  # zero-row input
            shape = out_shape if out_shape is not None else (0,)
            dtype = out_dtype if out_dtype is not None else np.float64
            out = np.empty(shape, dtype=dtype)
        return out

    def reduce(
        self,
        kernel: Callable[..., Any],
        x: np.ndarray,
        *kernel_args: Any,
        combine: Callable[[Any, Any], Any],
        initial: Any = None,
    ) -> Any:
        """Fold ``kernel`` outputs over row blocks with ``combine``.

        Used for histogram accumulation: each block produces partial counts
        which are summed — the exact shape of a GPU block-level histogram
        with a global atomic merge.
        """
        acc = initial
        blocks = self.blocks(x.shape[0])
        counter = self._launch_counter(kernel) if blocks else None
        for start, stop in blocks:
            self.launches += 1
            if counter is not None:
                counter.inc()
            partial = kernel(x[start:stop], *kernel_args)
            acc = partial if acc is None else combine(acc, partial)
        return acc

    @staticmethod
    def _launch_counter(kernel: Callable[..., Any]):
        """Resolve the labeled launch counter once per call (None = disabled)."""
        reg = default_registry()
        if not reg.enabled:
            return None
        return reg.counter(
            "kernel_launches_total",
            "Block launches executed by the kernel engine, per kernel.",
            ("kernel",),
        ).labels(kernel=getattr(kernel, "__name__", "kernel"))
