"""Optional numba-JIT kernel backend (gracefully absent without numba).

One scalar loop bins, histograms and byte-packs a chunk with no
intermediate arrays at all — the closest CPU analogue of the paper's
one-thread-per-point CUDA kernels. The loop is compiled **without**
``fastmath``: fused-multiply-add contraction or reassociation would break
the bit-identity contract every backend is held to (see
:class:`~repro.kernels.backend.KernelBackend`), so only the memory-traffic
and dispatch savings are taken, which is where the time goes anyway.

When numba is not installed, :class:`NumbaBackend.is_available` is False,
``auto`` resolution skips it, and asking for it by name raises a clear
``ValidationError`` — nothing in the import path requires numba.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.kernels.backend import NumpyBackend, register_backend

__all__ = ["NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - the common case in this image
    _HAVE_NUMBA = False

#: Lazily-compiled JIT kernel, shared across backend instances so the
#: compile cost is paid once per process.
_JIT_KERNEL = None


def _compiled_kernel():  # pragma: no cover - requires numba
    global _JIT_KERNEL
    if _JIT_KERNEL is not None:
        return _JIT_KERNEL
    from numba import njit

    @njit(cache=True, nogil=True)
    def fused(projected, r_min, scale, n_bins, hist_flat, use_hist,
              codes, use_codes, rows, use_rows, oor_low, oor_high, use_oor):
        # projected is dimension-major: (n dims × m samples).
        n, m = projected.shape
        for i in range(m):
            for j in range(n):
                if not np.isfinite(projected[j, i]):
                    return i
        top = float(n_bins - 1)
        if use_codes and n <= 8:
            tail_shift = np.uint64(8 * (8 - n))
        else:
            tail_shift = np.uint64(0)
        for i in range(m):
            code = np.uint64(0)
            for j in range(n):
                # Identical op sequence to the reference kernel: subtract,
                # scale, floor, then clamp in float (an overflow to ±inf
                # clamps like the reference's np.clip does).
                v = (projected[j, i] - r_min[j]) * scale[j]
                v = np.floor(v)
                if v < 0.0:
                    v = 0.0
                    if use_oor:
                        oor_low[j] += 1
                elif v > top:
                    v = top
                    if use_oor:
                        oor_high[j] += 1
                b = np.int64(v)
                if use_hist:
                    hist_flat[j * n_bins + b] += 1
                if use_codes:
                    code = (code << np.uint64(8)) | np.uint64(b)
                if use_rows:
                    rows[j, i] = np.uint8(b)
            if use_codes:
                codes[i] = code << tail_shift
        return -1

    _JIT_KERNEL = fused
    return fused


@register_backend
class NumbaBackend(NumpyBackend):
    """JIT scalar-loop backend; inherits the BLAS GEMM from NumPy.

    The GEMM is already optimal through BLAS — only the post-GEMM
    bin/pack/count pass is worth JIT-ing, so that is all this overrides.
    """

    name = "numba"

    @classmethod
    def is_available(cls) -> bool:
        return _HAVE_NUMBA

    def __init__(self) -> None:  # pragma: no cover - requires numba
        if not _HAVE_NUMBA:
            raise ValidationError(
                "the 'numba' kernel backend needs the optional numba package "
                "(not installed); use backend='numpy' or 'auto'"
            )
        super().__init__()
        self._kernel = _compiled_kernel()

    def fused_chunk(  # pragma: no cover - requires numba
        self,
        projected: np.ndarray,
        r_min: np.ndarray,
        scale: np.ndarray,
        n_bins: int,
        hist_flat: Optional[np.ndarray] = None,
        codes: Optional[np.ndarray] = None,
        rows: Optional[np.ndarray] = None,
        oor_low: Optional[np.ndarray] = None,
        oor_high: Optional[np.ndarray] = None,
        obs_lo: Optional[np.ndarray] = None,
        obs_hi: Optional[np.ndarray] = None,
    ) -> int:
        n, m = projected.shape
        if m == 0:
            return -1
        if obs_lo is not None and obs_hi is not None:
            # Bounds before the JIT kernel clobbers the workspace. The
            # accumulators must stay clean on a non-finite chunk, so
            # fold through temporaries only after the screen passes
            # (NaN propagates through min/max; ±inf survives them).
            mn = projected.min(axis=1)
            mx = projected.max(axis=1)
            if not (np.isfinite(mn).all() and np.isfinite(mx).all()):
                finite_cols = np.isfinite(projected).all(axis=0)
                return int(np.flatnonzero(~finite_cols)[0])
            np.minimum(obs_lo, mn, out=obs_lo)
            np.maximum(obs_hi, mx, out=obs_hi)
        use_hist = hist_flat is not None
        use_codes = codes is not None
        use_rows = rows is not None
        use_oor = oor_low is not None and oor_high is not None
        hist_arg = hist_flat if use_hist else np.empty(0, dtype=np.int64)
        codes_arg = codes if use_codes else np.empty(0, dtype=np.uint64)
        rows_arg = rows if use_rows else np.empty((0, 0), dtype=np.uint8)
        oor_lo_arg = oor_low if use_oor else np.empty(0, dtype=np.int64)
        oor_hi_arg = oor_high if use_oor else np.empty(0, dtype=np.int64)
        return int(
            self._kernel(
                projected, r_min, scale,
                np.int64(n_bins), hist_arg, use_hist,
                codes_arg, use_codes, rows_arg, use_rows,
                oor_lo_arg, oor_hi_arg, use_oor,
            )
        )
