"""Fused-vs-reference kernel benchmark (``kernels-bench`` CLI).

Answers the question the fused engine exists for: how much faster does
``StreamingKeyBin2.partial_fit`` ingest a batch through the fused
backend path than through the reference kernels? Both paths run the same
model configuration on the same data and — enforced here before any
timing — produce **bit-identical** histograms and key tables, so the
ratio is a pure execution-efficiency measurement, not an
accuracy/performance trade.

Protocol: for each path, one untimed warm-up ``partial_fit`` (state
initialization, range measurement, scratch allocation, and — for the
numba backend — JIT compilation), then ``repeats`` timed calls of the
same batch; best-of wins (the standard microbenchmark estimator for the
noise floor of a shared machine). Speedup = reference best / fused best.

Results land in ``BENCH_kernels.json``; ``--check`` turns the speedup
floor into a process exit code for CI. The local development floor is
:data:`DEFAULT_SPEEDUP_FLOOR` (5×, the repo's acceptance target on a
quiet many-core host); CI passes an explicit lower ``--floor`` because
shared 2-core runners throttle BLAS and memory bandwidth unpredictably.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.streaming import StreamingKeyBin2
from repro.kernels.backend import available_backends, get_backend

__all__ = [
    "run_kernels_bench",
    "run_drift_bench",
    "DEFAULT_OUT_PATH",
    "DEFAULT_DRIFT_OUT_PATH",
    "DEFAULT_SPEEDUP_FLOOR",
    "DEFAULT_ADAPTIVE_OVERHEAD_CEILING",
]

DEFAULT_OUT_PATH = "BENCH_kernels.json"
DEFAULT_DRIFT_OUT_PATH = "BENCH_drift.json"

#: Acceptance floor for ``--check`` when no explicit floor is given:
#: fused partial_fit must ingest at least this many times faster than the
#: reference path on the best available backend.
DEFAULT_SPEEDUP_FLOOR = 5.0

#: Acceptance ceiling for the adaptive-tracking overhead on a stationary
#: in-range stream: adaptive partial_fit may cost at most this fraction
#: more than fixed-range partial_fit (the tentpole's <5% budget).
DEFAULT_ADAPTIVE_OVERHEAD_CEILING = 0.05


def _make_model(backend: Optional[str], fused: bool, seed: int,
                depths: Sequence[int], n_projections: int) -> StreamingKeyBin2:
    return StreamingKeyBin2(
        n_projections=n_projections,
        candidate_depths=tuple(depths),
        fused=fused,
        backend=backend,
        seed=seed,
    )


def _states_equal(a: StreamingKeyBin2, b: StreamingKeyBin2) -> bool:
    """Bit-exact comparison of accumulated state (hists + key tables)."""
    if a.n_seen_ != b.n_seen_:
        return False
    for sa, sb in zip(a._states, b._states):
        for d in sa.depths:
            if not np.array_equal(sa.hist[d], sb.hist[d]):
                return False
        ka, ca = sa.keys.to_arrays()
        kb, cb = sb.keys.to_arrays()
        if not (np.array_equal(ka, kb) and np.array_equal(ca, cb)):
            return False
    return True


def _time_partial_fit(model: StreamingKeyBin2, x: np.ndarray,
                      repeats: int) -> float:
    model.partial_fit(x)  # untimed: init + warm caches (+ JIT for numba)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        model.partial_fit(x)
        best = min(best, time.perf_counter() - t0)
    return best


def run_kernels_bench(
    backends: Optional[Sequence[str]] = None,
    n_points: int = 50_000,
    n_features: int = 128,
    n_projections: int = 8,
    depths: Sequence[int] = (4, 5, 6, 7),
    n_clusters: int = 64,
    cluster_std: float = 0.05,
    repeats: int = 5,
    seed: int = 0,
    floor: float = DEFAULT_SPEEDUP_FLOOR,
    out_path: Optional[str] = DEFAULT_OUT_PATH,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Measure fused-vs-reference ``partial_fit`` throughput per backend.

    ``backends`` defaults to every backend available on this host.
    ``results["passed"]`` is True when the best backend's speedup meets
    ``floor`` AND fused state matched the reference bit-for-bit.
    """

    def say(msg: str) -> None:
        if not quiet:
            print(msg, flush=True)

    if backends is None:
        backends = [n for n, ok in available_backends().items() if ok]
    else:
        for name in backends:
            get_backend(name)  # fail fast on unknown/unavailable names

    # A gaussian mixture, not white noise: KeyBin2 is a clustering
    # algorithm, and on clusterable data the occupied deep-key cells are
    # few (≈ clusters, not points). White noise makes every point a
    # unique key — a worst case neither path is designed around — so the
    # benchmark batch mirrors the workload the kernels actually serve.
    rng = np.random.default_rng(seed)
    centers = 4.0 * rng.standard_normal((n_clusters, n_features))
    assign = rng.integers(0, n_clusters, size=n_points)
    x = centers[assign] + cluster_std * rng.standard_normal(
        (n_points, n_features)
    )

    # Reference baseline (also the equivalence oracle).
    ref = _make_model(None, False, seed, depths, n_projections)
    ref_best = _time_partial_fit(ref, x, repeats)
    rows_ref = n_points / ref_best
    say(f"kernels-bench: reference partial_fit best {ref_best * 1e3:.1f} ms "
        f"({rows_ref:,.0f} rows/s)")

    per_backend: Dict[str, Dict[str, Any]] = {}
    equivalent = True
    for name in backends:
        fused = _make_model(name, True, seed, depths, n_projections)
        fused_best = _time_partial_fit(fused, x, repeats)
        same = _states_equal(ref, fused)
        equivalent = equivalent and same
        speedup = ref_best / fused_best
        per_backend[name] = {
            "fused_best_s": round(fused_best, 6),
            "rows_per_s": round(n_points / fused_best, 1),
            "speedup": round(speedup, 2),
            "bit_identical": same,
        }
        say(f"kernels-bench: backend {name!r} best "
            f"{fused_best * 1e3:.1f} ms -> {speedup:.2f}x"
            + ("" if same else "  [STATE MISMATCH]"))

    best_speedup = max((b["speedup"] for b in per_backend.values()), default=0.0)
    results: Dict[str, Any] = {
        "benchmark": "kernels_fused_partial_fit",
        "config": {
            "n_points": n_points,
            "n_features": n_features,
            "n_projections": n_projections,
            "depths": list(depths),
            "n_clusters": n_clusters,
            "cluster_std": cluster_std,
            "repeats": repeats,
            "seed": seed,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "reference": {
            "best_s": round(ref_best, 6),
            "rows_per_s": round(rows_ref, 1),
        },
        "backends": per_backend,
        "best_speedup": best_speedup,
        "floor": floor,
        "equivalent": equivalent,
        "passed": bool(equivalent and best_speedup >= floor),
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
        say(f"kernels-bench: wrote {out_path}")
    say("kernels-bench: "
        + ("PASS" if results["passed"] else "FAIL")
        + f" (best speedup {best_speedup:.2f}x vs floor {floor}x, "
        + f"equivalent={equivalent})")
    return results


def run_drift_bench(
    backend: Optional[str] = None,
    n_points: int = 50_000,
    n_features: int = 128,
    n_projections: int = 8,
    depths: Sequence[int] = (4, 5, 6, 7),
    n_clusters: int = 64,
    cluster_std: float = 0.05,
    repeats: int = 5,
    seed: int = 0,
    max_overhead: float = DEFAULT_ADAPTIVE_OVERHEAD_CEILING,
    out_path: Optional[str] = DEFAULT_DRIFT_OUT_PATH,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Measure what adaptive range tracking costs on a stationary stream.

    The guard the tentpole promises: on a stream that never goes out of
    range, adaptive mode must be (a) **bit-identical** to fixed-range
    mode — the tracking machinery must not perturb a single bin — and
    (b) within ``max_overhead`` of its throughput (default 5%). Both
    estimators replay the same in-range batch (the first batch seeds the
    range with margin, so replays never leave it, and the adaptive grid
    provably never widens); best-of-``repeats`` timing, same protocol as
    :func:`run_kernels_bench`. A drift-detection variant is measured and
    reported for information, but only the adaptive overhead gates
    ``passed``.
    """

    def say(msg: str) -> None:
        if not quiet:
            print(msg, flush=True)

    if backend is None:
        avail = available_backends()
        backend = "numba" if avail.get("numba") else "numpy"
    else:
        get_backend(backend)

    rng = np.random.default_rng(seed)
    centers = 4.0 * rng.standard_normal((n_clusters, n_features))
    assign = rng.integers(0, n_clusters, size=n_points)
    x = centers[assign] + cluster_std * rng.standard_normal(
        (n_points, n_features)
    )

    def make(adaptive: bool, drift_window: int = 0) -> StreamingKeyBin2:
        return StreamingKeyBin2(
            n_projections=n_projections,
            candidate_depths=tuple(depths),
            fused=True,
            backend=backend,
            adaptive=adaptive,
            drift_window=drift_window,
            seed=seed,
        )

    fixed = make(False)
    fixed_best = _time_partial_fit(fixed, x, repeats)
    say(f"drift-bench: fixed-range partial_fit best "
        f"{fixed_best * 1e3:.1f} ms ({n_points / fixed_best:,.0f} rows/s)")

    adaptive = make(True)
    adaptive_best = _time_partial_fit(adaptive, x, repeats)
    overhead = adaptive_best / fixed_best - 1.0
    rebins = sum(st.rebin_count for st in adaptive._states)
    same = _states_equal(fixed, adaptive)
    say(f"drift-bench: adaptive partial_fit best "
        f"{adaptive_best * 1e3:.1f} ms -> overhead {overhead * 100:+.2f}% "
        f"(rebins={rebins}, bit_identical={same})")

    drifting = make(True, drift_window=n_points)
    drift_best = _time_partial_fit(drifting, x, repeats)
    drift_overhead = drift_best / fixed_best - 1.0
    say(f"drift-bench: adaptive+drift partial_fit best "
        f"{drift_best * 1e3:.1f} ms -> overhead {drift_overhead * 100:+.2f}%")

    results: Dict[str, Any] = {
        "benchmark": "adaptive_tracking_overhead",
        "config": {
            "backend": backend,
            "n_points": n_points,
            "n_features": n_features,
            "n_projections": n_projections,
            "depths": list(depths),
            "n_clusters": n_clusters,
            "cluster_std": cluster_std,
            "repeats": repeats,
            "seed": seed,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "fixed": {
            "best_s": round(fixed_best, 6),
            "rows_per_s": round(n_points / fixed_best, 1),
        },
        "adaptive": {
            "best_s": round(adaptive_best, 6),
            "rows_per_s": round(n_points / adaptive_best, 1),
            "overhead": round(overhead, 4),
            "rebins": rebins,
            "bit_identical": same,
        },
        "adaptive_drift": {
            "best_s": round(drift_best, 6),
            "rows_per_s": round(n_points / drift_best, 1),
            "overhead": round(drift_overhead, 4),
        },
        "max_overhead": max_overhead,
        "passed": bool(same and rebins == 0 and overhead <= max_overhead),
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
        say(f"drift-bench: wrote {out_path}")
    say("drift-bench: "
        + ("PASS" if results["passed"] else "FAIL")
        + f" (overhead {overhead * 100:+.2f}% vs ceiling "
        + f"{max_overhead * 100:.0f}%, bit_identical={same})")
    return results
