"""Key → cluster-label mapping kernels (paper §3, step 5).

Once the partitioning step has produced per-dimension cut locations, each
point's bin index maps to a per-dimension *interval* id (which primary
cluster it falls into along that dimension) via ``searchsorted``; the tuple
of interval ids across dimensions identifies the global cluster. Interval
tuples are packed into one integer so global assignment is a vectorized
``unique``/table lookup, never a pairwise comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine

__all__ = ["intervals_for_bins", "combine_interval_labels"]


def intervals_for_bins(
    bins: np.ndarray,
    cuts: Sequence[np.ndarray],
    engine: Optional[KernelEngine] = None,
) -> np.ndarray:
    """Map (M × N) bin indices to per-dimension interval ids.

    ``cuts[j]`` is the sorted array of cut positions for dimension ``j``:
    a bin ``b`` belongs to interval ``searchsorted(cuts[j], b, 'left')``,
    so a cut at ``c`` separates bins ``<= c`` (left) from bins ``> c``
    (right) and ``len(cuts[j]) + 1`` intervals exist along dimension ``j``.
    """
    bins = np.asarray(bins)
    if bins.ndim != 2:
        raise ValidationError("intervals_for_bins needs a 2-D bins array")
    if len(cuts) != bins.shape[1]:
        raise ValidationError(
            f"need one cut array per dimension: {len(cuts)} != {bins.shape[1]}"
        )
    cut_arrays = [np.asarray(c, dtype=np.int64) for c in cuts]

    def kernel(block: np.ndarray) -> np.ndarray:
        out = np.empty(block.shape, dtype=np.int32)
        for j, c in enumerate(cut_arrays):
            if c.size == 0:
                out[:, j] = 0
            else:
                out[:, j] = np.searchsorted(c, block[:, j], side="left")
        return out

    if engine is None:
        return kernel(bins)
    return engine.map(kernel, bins, out_shape=bins.shape, out_dtype=np.int32)


def combine_interval_labels(
    intervals: np.ndarray,
    n_intervals: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse per-dimension interval ids into dense global cluster labels.

    Returns ``(labels, codes)`` where ``labels`` is an (M,) int64 array of
    dense cluster ids (0..n_clusters-1, ordered by first occurrence of the
    mixed-radix code) and ``codes`` is the sorted array of occupied
    mixed-radix codes — the global cluster table that the distributed driver
    broadcasts so every rank labels consistently.
    """
    intervals = np.asarray(intervals)
    if intervals.ndim != 2:
        raise ValidationError("combine_interval_labels needs a 2-D array")
    radices = np.asarray(list(n_intervals), dtype=np.int64)
    if radices.shape[0] != intervals.shape[1]:
        raise ValidationError("n_intervals length must match dimensions")
    if np.any(radices < 1):
        raise ValidationError("every dimension needs at least one interval")
    # Mixed-radix packing: code = ((i0 * r1 + i1) * r2 + i2) ...
    code = np.zeros(intervals.shape[0], dtype=np.int64)
    for j in range(intervals.shape[1]):
        code *= radices[j]
        code += intervals[:, j].astype(np.int64)
    codes, labels = np.unique(code, return_inverse=True)
    return labels.astype(np.int64), codes
