"""Hierarchical key/bin kernels (paper §3, step 2).

A point's coordinate in dimension ``j`` is assigned, at depth ``d``, to one
of ``2^d`` equal-width bins over the fixed range ``[r_min, r_max]``. The
*key* of the point concatenates its deepest bin labels across dimensions.
The bin hierarchy is a bit-prefix structure: the depth-``d`` bin of a point
is its depth-``d_max`` bin shifted right by ``d_max - d`` bits, so only the
deepest binning ever needs computing (:func:`prefix_bins` recovers the
rest for free).

Keys across dimensions are packed into a single ``int64`` per point
(:func:`pack_keys`) when the total bit budget fits — the packed key is what
gets grouped to form clusters — with a bytes-view fallback for extreme
depth × dimensionality combinations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine

__all__ = [
    "bin_scale",
    "bin_indices",
    "bin_indices_at_depths",
    "prefix_bins",
    "pack_keys",
    "unpack_keys",
]

_MAX_PACK_BITS = 63


def bin_scale(
    r_min: np.ndarray, r_max: np.ndarray, depth: int
) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the ``(r_min, scale)`` pair the binning arithmetic uses.

    Shared by the reference kernel (:func:`bin_indices`) and the fused
    backends (:mod:`repro.kernels.fused`): both compute
    ``floor((x - r_min) * scale)`` then clip, so deriving the scale in one
    place is what keeps the two paths bit-identical.

    Returns 1-D float64 ``(r_min, scale)`` vectors. A dimension whose span
    underflows the divide is effectively constant and gets scale 0 (all
    values map into bin 0) instead of propagating inf/nan.
    """
    if depth < 1 or depth > 62:
        raise ValidationError(f"depth must be in [1, 62], got {depth}")
    r_min = np.asarray(r_min, dtype=np.float64).ravel()
    r_max = np.asarray(r_max, dtype=np.float64).ravel()
    if r_min.shape != r_max.shape:
        raise ValidationError("r_min and r_max must have the same length")
    bad = ~(np.isfinite(r_min) & np.isfinite(r_max))
    if bad.any():
        # A NaN/inf bound would survive the span check below as a NaN
        # scale, and floor(NaN·x) casts to garbage bin indices — name the
        # offending dimensions instead of corrupting every key downstream.
        dims = np.flatnonzero(bad)
        head = ", ".join(str(int(d)) for d in dims[:5])
        more = "" if dims.size <= 5 else f", … ({dims.size} dims total)"
        raise ValidationError(
            f"bin_scale: non-finite binning range in dimension(s) {head}"
            f"{more} (r_min/r_max must be finite; got "
            f"r_min[{int(dims[0])}]={r_min[dims[0]]!r}, "
            f"r_max[{int(dims[0])}]={r_max[dims[0]]!r})"
        )
    span = r_max - r_min
    if np.any(span <= 0):
        raise ValidationError("r_max must be strictly greater than r_min per dimension")
    n_bins = 1 << depth
    with np.errstate(over="ignore"):
        scale = n_bins / span
    scale[~np.isfinite(scale)] = 0.0
    return r_min, scale


def _reject_non_finite(x: np.ndarray, where: str) -> None:
    """Raise a row-addressed ValidationError when ``x`` has NaN/Inf entries.

    A NaN survives ``np.clip`` and its cast to an integer dtype is
    undefined — historically this silently corrupted histograms and keys,
    so every binning entry point rejects non-finite rows up front.
    """
    finite = np.isfinite(x)
    if finite.all():
        return
    bad = np.flatnonzero(~finite.all(axis=1))
    head = ", ".join(str(int(r)) for r in bad[:5])
    more = "" if bad.size <= 5 else f", … ({bad.size} rows total)"
    raise ValidationError(
        f"{where}: input contains non-finite coordinates (NaN/Inf) in "
        f"row(s) {head}{more}; filter or clean these rows before binning"
    )


def bin_indices(
    x: np.ndarray,
    r_min: np.ndarray,
    r_max: np.ndarray,
    depth: int,
    engine: Optional[KernelEngine] = None,
    out: Optional[np.ndarray] = None,
    oor_low: Optional[np.ndarray] = None,
    oor_high: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Depth-``depth`` bin index of every (point, dimension) entry.

    Parameters
    ----------
    x:
        (M × N) coordinates.
    r_min, r_max:
        Per-dimension range vectors (length N). Values outside the range
        are clipped into the boundary bins — the streaming case where a
        late point exceeds the initially observed range.
    depth:
        Bin tree depth; produces ``2^depth`` bins.
    oor_low, oor_high:
        Optional (N,) int64 accumulators. When given, the number of
        entries clipped into the bottom/top boundary bin is **added** per
        dimension — the out-of-range accounting that makes edge-bin
        saturation observable instead of silent. Counting happens on the
        pre-clip indices of the exact binning arithmetic (so a value that
        floats to bin ``2^depth`` counts high even if it is numerically
        ``<= r_max``), and forces the single-pass (engine-less) kernel:
        the engine's parallel blocks would race on the accumulators.

    Returns
    -------
    (M × N) ``int32`` array of bin indices in ``[0, 2^depth)``.

    Raises
    ------
    ValidationError
        If any row of ``x`` contains a non-finite value: NaN survives
        ``np.clip`` and its cast to int32 is undefined, so garbage indices
        would silently corrupt histograms and keys downstream.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValidationError("bin_indices needs 2-D input")
    if depth < 1 or depth > 31:
        raise ValidationError(f"depth must be in [1, 31], got {depth}")
    _reject_non_finite(x, "bin_indices")
    r_min_v, scale_v = bin_scale(r_min, r_max, depth)
    if r_min_v.shape[0] != x.shape[1]:
        raise ValidationError("r_min/r_max length must match number of dimensions")
    track_oor = oor_low is not None or oor_high is not None
    if track_oor and (oor_low is None or oor_high is None):
        raise ValidationError("pass both oor_low and oor_high, or neither")
    n_bins = 1 << depth
    r_min = r_min_v.reshape(1, -1)
    scale = scale_v.reshape(1, -1)

    def kernel(block: np.ndarray) -> np.ndarray:
        idx = (block - r_min) * scale
        np.floor(idx, out=idx)
        if track_oor:
            oor_low[...] += (idx < 0).sum(axis=0)
            oor_high[...] += (idx > n_bins - 1).sum(axis=0)
        np.clip(idx, 0, n_bins - 1, out=idx)
        return idx.astype(np.int32, copy=False)

    if engine is None or track_oor:
        result = kernel(x)
        if out is not None:
            out[...] = result
            return out
        return result
    return engine.map(kernel, x, out=out, out_shape=x.shape, out_dtype=np.int32)


def prefix_bins(deep_bins: np.ndarray, from_depth: int, to_depth: int) -> np.ndarray:
    """Bin indices at a shallower depth from the deepest binning.

    Depth-``to_depth`` bins are the high-order bits of depth-``from_depth``
    bins, so this is a single right shift — the hierarchical-key property.
    """
    if to_depth > from_depth:
        raise ValidationError(
            f"to_depth ({to_depth}) cannot exceed from_depth ({from_depth})"
        )
    if to_depth < 1:
        raise ValidationError(f"to_depth must be >= 1, got {to_depth}")
    return deep_bins >> (from_depth - to_depth)


def bin_indices_at_depths(
    x: np.ndarray,
    r_min: np.ndarray,
    r_max: np.ndarray,
    depths: Sequence[int],
    engine: Optional[KernelEngine] = None,
) -> dict[int, np.ndarray]:
    """Bin indices for several depths with one binning pass.

    Computes the deepest requested binning, then derives shallower depths
    by prefix shifts.
    """
    depths = sorted(set(int(d) for d in depths))
    if not depths:
        raise ValidationError("depths must be non-empty")
    deepest = depths[-1]
    deep = bin_indices(x, r_min, r_max, deepest, engine=engine)
    return {d: (deep if d == deepest else prefix_bins(deep, deepest, d)) for d in depths}


def pack_keys(bins: np.ndarray, depth: int) -> np.ndarray:
    """Pack per-dimension bin indices into one integer key per point.

    The key is the concatenation of ``depth``-bit bin labels across
    dimensions (paper's "356406"-style key, in binary). Requires
    ``depth * n_dims <= 63``; callers with a larger budget should pack the
    per-dimension *interval* labels instead (they are far fewer).

    Every bin value must lie in ``[0, 2^depth)``: an out-of-range value
    would bleed bits into the neighboring dimension's field of the key,
    producing a wrong-but-plausible cluster key, so the range is validated
    instead of silently masked.
    """
    bins = np.asarray(bins)
    if bins.ndim != 2:
        raise ValidationError("pack_keys needs a 2-D (points × dims) array")
    if depth < 1:
        raise ValidationError(f"depth must be >= 1, got {depth}")
    n_dims = bins.shape[1]
    total_bits = depth * n_dims
    if total_bits > _MAX_PACK_BITS:
        raise ValidationError(
            f"cannot pack {n_dims} dims × {depth} bits = {total_bits} bits "
            f"into int64 (max {_MAX_PACK_BITS}); reduce depth or dimensions"
        )
    if bins.size:
        if not np.issubdtype(bins.dtype, np.integer):
            raise ValidationError(
                f"pack_keys needs integer bin indices, got dtype {bins.dtype}"
            )
        lo, hi = int(bins.min()), int(bins.max())
        if lo < 0 or hi >= (1 << depth):
            raise ValidationError(
                f"pack_keys: bin values must lie in [0, {1 << depth}) for "
                f"depth {depth}, got range [{lo}, {hi}] — out-of-range bins "
                "would bleed bits into neighboring key fields"
            )
    keys = np.zeros(bins.shape[0], dtype=np.int64)
    for j in range(n_dims):
        keys <<= depth
        keys |= bins[:, j].astype(np.int64)
    return keys


def unpack_keys(keys: np.ndarray, depth: int, n_dims: int) -> np.ndarray:
    """Inverse of :func:`pack_keys`: recover (points × dims) bin indices."""
    keys = np.asarray(keys, dtype=np.int64)
    if depth * n_dims > _MAX_PACK_BITS:
        raise ValidationError("depth * n_dims exceeds the int64 packing budget")
    mask = (1 << depth) - 1
    out = np.empty((keys.shape[0], n_dims), dtype=np.int32)
    for j in range(n_dims - 1, -1, -1):
        out[:, j] = (keys & mask).astype(np.int32)
        keys = keys >> depth
    return out
