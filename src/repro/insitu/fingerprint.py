"""Cluster fingerprints (paper §5.1, Figure 4).

KeyBin2 on secondary-structure features produces many fine-grained
clusters; "sequences of fine grained clusters will form a cluster
fingerprint" identifying a conformational search space. A fingerprint here
is the *set of cluster labels active in a sliding window* — stable phases
keep a constant signature, transitions churn it, and a revisited phase
reproduces its earlier signature.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["window_fingerprints", "fingerprint_change_points", "fingerprint_similarity"]


def window_fingerprints(
    labels: np.ndarray,
    window: int = 50,
    min_support: int = 2,
) -> List[FrozenSet[int]]:
    """Per-frame fingerprints: labels occurring ≥ ``min_support`` times in
    the trailing window.

    Noise labels (−1) never enter a fingerprint. Early frames use the
    partial window available.
    """
    labels = np.asarray(labels).ravel()
    if window < 1 or min_support < 1:
        raise ValidationError("window and min_support must be >= 1")
    out: List[FrozenSet[int]] = []
    from collections import Counter

    counter: Counter = Counter()
    for i in range(labels.size):
        counter[int(labels[i])] += 1
        if i >= window:
            old = int(labels[i - window])
            counter[old] -= 1
            if counter[old] == 0:
                del counter[old]
        out.append(
            frozenset(l for l, c in counter.items() if l >= 0 and c >= min_support)
        )
    return out


def fingerprint_similarity(a: FrozenSet[int], b: FrozenSet[int]) -> float:
    """Jaccard similarity of two fingerprints (empty–empty counts as 1)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def fingerprint_change_points(
    fingerprints: Sequence[FrozenSet[int]],
    threshold: float = 0.6,
    min_spacing: int = 25,
) -> np.ndarray:
    """Frames where the fingerprint changes materially.

    A change point is a frame whose fingerprint's Jaccard similarity to the
    previous frame's drops below ``threshold``; consecutive detections
    within ``min_spacing`` frames collapse to the first. The default
    threshold of 0.6 catches the canonical hand-over pattern
    ``{a} → {a, b} → {b}`` (similarity exactly 0.5 at each step). Frames
    whose previous fingerprint is empty are skipped — that is window
    warm-up, not a conformational change.
    """
    if not (0.0 <= threshold <= 1.0):
        raise ValidationError("threshold must be in [0, 1]")
    if min_spacing < 1:
        raise ValidationError("min_spacing must be >= 1")
    points: List[int] = []
    last = -min_spacing
    for i in range(1, len(fingerprints)):
        if not fingerprints[i - 1]:
            continue
        sim = fingerprint_similarity(fingerprints[i - 1], fingerprints[i])
        if sim < threshold and i - last >= min_spacing:
            points.append(i)
            last = i
    return np.asarray(points, dtype=np.int64)
