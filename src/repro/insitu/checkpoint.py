"""Per-rank checkpoint management for distributed in-situ runs.

A :class:`CheckpointManager` owns one rank's slice of a shared checkpoint
directory::

    <root>/
        rank00000/ckpt-00000004.kb2
        rank00000/ckpt-00000008.kb2
        rank00001/ckpt-00000004.kb2
        ...

Checkpoints are written by :meth:`StreamingKeyBin2.save_state` — atomic
tmp-then-rename with an integrity digest — immediately *after* a
successful consolidation, so a given round id names a globally consistent
barrier: every rank's ``ckpt-<round>`` holds the same merged model state
plus that rank's own-history ledger. Restart therefore means: every rank
loads the newest round id *common to all ranks*
(:func:`common_checkpoint_round`), and resumes feeding frames from the
chunk cursor stored in the checkpoint meta.

Retention keeps the last ``keep`` rounds per rank; a corrupt or truncated
newest file (the crash may have raced the writer) silently falls back to
the previous intact one.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.streaming import StreamingKeyBin2
from repro.errors import CheckpointError

__all__ = ["CheckpointManager", "common_checkpoint_round"]

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.kb2$")


class CheckpointManager:
    """Atomic, versioned, per-rank streaming-state checkpoints.

    Parameters
    ----------
    root:
        Shared checkpoint directory (all ranks pass the same path).
    rank:
        This rank's *physical* rank — stable across communicator shrinks,
        so a recovered run keeps appending to the same per-rank history.
    keep:
        Checkpoint rounds retained per rank (older ones are pruned after
        each successful save). At least 2, so one corrupt newest file
        always leaves an intact predecessor.
    """

    def __init__(self, root, rank: int, keep: int = 3):
        if keep < 2:
            raise CheckpointError("keep must be >= 2 (corruption fallback)")
        self.root = Path(root)
        self.rank = int(rank)
        self.keep = int(keep)
        self.dir = self.root / f"rank{self.rank:05d}"
        self.dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, round_idx: int) -> Path:
        return self.dir / f"ckpt-{round_idx:08d}.kb2"

    def rounds(self) -> List[int]:
        """Available checkpoint round ids, newest first."""
        out = []
        for entry in self.dir.iterdir():
            m = _CKPT_RE.match(entry.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out, reverse=True)

    def save(
        self,
        skb: StreamingKeyBin2,
        round_idx: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Checkpoint ``skb`` as round ``round_idx`` and prune old rounds."""
        full_meta = {"round": int(round_idx), "rank": self.rank}
        if meta:
            full_meta.update(meta)
        path = self.path_for(round_idx)
        skb.save_state(path, meta=full_meta)
        for old in self.rounds()[self.keep:]:
            try:
                self.path_for(old).unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path

    def load(self, round_idx: int) -> StreamingKeyBin2:
        """Load one specific round (raises ``CheckpointError`` if bad)."""
        return StreamingKeyBin2.load_state(self.path_for(round_idx))

    def load_latest(self) -> Optional[Tuple[StreamingKeyBin2, int]]:
        """Newest intact checkpoint as ``(state, round)``, or ``None``.

        Walks rounds newest-first, skipping corrupt/truncated files — the
        atomic writer makes those rare (an interrupted write never replaces
        the target), but a torn disk or partial copy still degrades to the
        previous barrier instead of failing the restart.
        """
        for round_idx in self.rounds():
            try:
                return self.load(round_idx), round_idx
            except CheckpointError:
                continue
        return None


def common_checkpoint_round(root, n_ranks: int) -> Optional[int]:
    """Newest round id for which *every* rank has a checkpoint file.

    Restart resumes from a barrier all ranks can reach; a rank that died
    mid-save leaves the others holding a newer round that must be ignored.
    Returns ``None`` when no common round exists (fresh start).
    """
    common: Optional[set] = None
    for rank in range(n_ranks):
        mgr = CheckpointManager(root, rank)
        rounds = set(mgr.rounds())
        common = rounds if common is None else (common & rounds)
        if not common:
            return None
    return max(common) if common else None
