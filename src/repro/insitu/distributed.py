"""Distributed in-situ analysis (paper §5.1).

"Simulations can be performed in parallel, with different nodes taking
care of different segments of a trajectory, or, more accurately, different
trajectories given particular starting conditions. As simulations
progress, in-situ analysis is necessary to determine what conformational
spaces have been analyzed…"

This driver couples one simulation per SPMD rank to a *shared* streaming
KeyBin2 state: every rank accumulates local histograms and occupied-cell
counts over its own frames; periodically the histograms are summed with an
allreduce and the cell tables unioned, so every rank labels with the same
global model. A conformation first visited by rank 3's simulation is
recognized when rank 0's trajectory reaches it — the cross-trajectory
convergence §5 is about.

All ranks construct identical projection matrices and binning ranges from
the shared seed and the a-priori feature range, so merged histograms are
meaningful without any calibration traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.base import Communicator, ReduceOp
from repro.comm.faults import maybe_inject
from repro.comm.mailbox import MailboxComm
from repro.comm.membership import agree_on_survivors
from repro.comm.ring import ring_allreduce
from repro.comm.spmd import run_spmd
from repro.comm.traffic import payload_nbytes
from repro.core.streaming import StreamingKeyBin2
from repro.errors import RankFailedError, ValidationError
from repro.insitu.checkpoint import CheckpointManager, common_checkpoint_round
from repro.obs import default_registry, trace
from repro.insitu.fingerprint import fingerprint_change_points, window_fingerprints
from repro.metrics.external import normalized_mutual_info
from repro.proteins.encode import encode_frames
from repro.proteins.trajectory import Trajectory

__all__ = [
    "DistributedInSituResult",
    "RecoveryContext",
    "consolidate_streaming_state",
    "resilient_consolidate",
    "distributed_insitu_spmd",
    "run_distributed_insitu",
]


@dataclass
class DistributedInSituResult:
    """Per-rank outcome of a distributed in-situ run."""

    labels: np.ndarray                # final labels for this rank's frames
    fingerprints: list
    fingerprint_changes: np.ndarray
    n_clusters: int                   # global cluster count (same all ranks)
    phase_nmi: Optional[float]
    traffic: Dict[str, int] = field(default_factory=dict)
    recoveries: int = 0               # rank-failure recoveries survived
    frames_lost: int = 0              # lost ranks' merged frames dropped
    lost_ranks: Tuple[int, ...] = ()  # physical ranks lost along the way
    resumed_round: Optional[int] = None  # checkpoint round this run resumed from


def consolidate_streaming_state(
    comm: Communicator,
    skb: StreamingKeyBin2,
    reduce_algo: str = "linear",
) -> None:
    """Delta-merge streaming state across ranks, in place.

    Only *increments since the last merge* travel: each rank's
    ``hist_delta`` rides one flat allreduce buffer (and the deltas sum to
    the true global increment no matter how many merges came before — the
    merged totals in ``st.hist`` are never re-reduced, which is what makes
    repeated consolidation idempotent and mass-conserving); key-counter
    deltas are allgathered as sparse arrays and folded into each rank's
    merged table via :meth:`~repro.core.streaming.KeyCounter.merge_arrays`,
    which enforces the capacity cap and accumulates peers' eviction totals.

    ``reduce_algo`` selects the histogram reduction: ``"linear"`` uses the
    communicator's default allreduce, ``"ring"`` the bandwidth-optimal
    :func:`~repro.comm.ring.ring_allreduce` (each rank sends O(2·len)
    bytes regardless of rank count).

    Every round records per-rank telemetry into the obs default registry:
    ``insitu_consolidation_bytes_total{kind,rank,algo}`` (delta bytes on
    the wire — the paper's O(2·K·N_rp·B) term under ``kind="hist"``; the
    adaptive grid-agreement buffer rides under ``kind="grid"`` and is
    absent entirely in fixed-range mode),
    ``insitu_consolidation_rounds_total``, peer cells folded, and
    eviction totals, plus ``consolidate/...`` phase spans.

    With ``skb.adaptive``, a grid-agreement MAX-allreduce runs *before*
    the delta merge: ranks pool their observed need envelopes and chain
    levels and all rebin to the same (widest) grid, so deltas accumulated
    at older bin epochs are exactly rebinned — never dropped — before
    summation.
    """
    if reduce_algo not in ("linear", "ring"):
        raise ValidationError(
            f"reduce_algo must be 'linear' or 'ring', got {reduce_algo!r}"
        )
    assert skb._states is not None
    reg = default_registry()
    rank = str(comm.rank)
    grid_bytes = 0
    with trace.span("consolidate"):
        # --- adaptive grid agreement (before ANY delta travels) ------------
        # Each rank's deltas are meaningful only on its own grid, and a
        # rank that saw wider data than its peers has already widened
        # locally. Pool the per-dimension need envelopes and chain levels
        # with one MAX allreduce (lows negated so MAX pools the minimum),
        # then every rank widens to the common target: the cover of the
        # pooled need, never below the widest pooled level (a rank's level
        # can exceed its need's cover because of the forced +1 progression
        # on float-boundary retries). Since the chain is totally ordered,
        # every rank lands on the *same* grid, and each rank's pending
        # deltas — possibly accumulated at an older bin epoch — are
        # exactly rebinned rather than dropped before the merge below.
        if getattr(skb, "adaptive", False):
            with trace.span("grid_allreduce"):
                # The buffer also carries each base bound twice (±value):
                # under MAX, a vector is identical on every rank iff its
                # pooled max equals the negated pooled max of its negation
                # — a free equality proof. Chain levels are only
                # comparable on a shared base grid (same seed + same
                # feature_range, or deterministically derived bounds), so
                # divergent bases must be a loud error, not a silent
                # merge of incompatible grids. Every rank sees the same
                # pooled buffer, so all raise together — no deadlock.
                grid_buf = np.concatenate(
                    [
                        np.concatenate(
                            [
                                -st.need_lo,
                                st.need_hi,
                                st.levels.astype(np.float64),
                                st.base_space.r_min,
                                -st.base_space.r_min,
                                st.base_space.r_max,
                                -st.base_space.r_max,
                            ]
                        )
                        for st in skb._states
                    ]
                )
                pooled = comm.allreduce(grid_buf, op=ReduceOp.MAX)
                grid_bytes = grid_buf.nbytes
                off = 0
                for idx, st in enumerate(skb._states):
                    n = st.space.n_dims
                    need_lo = -pooled[off : off + n]
                    need_hi = pooled[off + n : off + 2 * n]
                    pooled_levels = pooled[
                        off + 2 * n : off + 3 * n
                    ].astype(np.int64)
                    bmin_hi = pooled[off + 3 * n : off + 4 * n]
                    bmin_lo = -pooled[off + 4 * n : off + 5 * n]
                    bmax_hi = pooled[off + 5 * n : off + 6 * n]
                    bmax_lo = -pooled[off + 6 * n : off + 7 * n]
                    off += 7 * n
                    mismatch = (bmin_hi != bmin_lo) | (bmax_hi != bmax_lo)
                    if mismatch.any():
                        dim = int(np.flatnonzero(mismatch)[0])
                        raise ValidationError(
                            f"adaptive grid agreement: ranks disagree on the "
                            f"base grid of projection {idx}, dimension {dim} "
                            f"(base_min spans [{bmin_lo[dim]}, {bmin_hi[dim]}]"
                            f", base_max spans [{bmax_lo[dim]}, "
                            f"{bmax_hi[dim]}] across ranks); distributed "
                            "adaptive binning needs every rank to derive the "
                            "same base grid — construct the estimators with "
                            "a shared seed and an explicit feature_range"
                        )
                    st.observe(need_lo, need_hi)
                    target = np.maximum(st.target_levels(), pooled_levels)
                    if st.rebin_to(target):
                        skb._note_rebin(idx)
        # --- histogram deltas: one flat buffer for all projections/depths ---
        flat_delta = np.concatenate(
            [st.hist_delta[d].ravel() for st in skb._states for d in st.depths]
        )
        with trace.span("hist_allreduce"):
            if reduce_algo == "ring":
                total_delta = ring_allreduce(comm, flat_delta, op=ReduceOp.SUM)
            else:
                total_delta = comm.allreduce(flat_delta, op=ReduceOp.SUM)
        offset = 0
        for st in skb._states:
            for d in st.depths:
                size = st.hist[d].size
                global_inc = total_delta[offset : offset + size].reshape(st.hist[d].shape)
                # st.hist already contains this rank's own delta; add the peers'.
                st.hist[d] += global_inc - st.hist_delta[d]
                offset += size
        # --- key-counter deltas: allgather sparse increments, fold into the
        # merged table. Below capacity the merged tables are the same multiset
        # on every rank; evictions are content-deterministic (count, then key
        # bytes), so replicas that overflow agree on what to drop.
        payload = [
            st.keys_delta.to_arrays()
            + (st.keys_delta.evicted_keys, st.keys_delta.evicted_points)
            for st in skb._states
        ]
        with trace.span("keys_allgather"):
            gathered = comm.allgather(payload)
        evictions_before = sum(st.keys.evicted_keys for st in skb._states)
        cells_folded = 0
        for proj_idx, st in enumerate(skb._states):
            for rank_idx, rank_payload in enumerate(gathered):
                if rank_idx == comm.rank:
                    continue  # own delta is already in st.keys via partial_fit
                keys, counts, ev_keys, ev_points = rank_payload[proj_idx]
                cells_folded += int(keys.shape[0])
                st.keys.merge_arrays(
                    keys, counts, evicted_keys=ev_keys, evicted_points=ev_points
                )
            st.reset_deltas()
        # --- points seen: delta allreduce, folded the same way ---
        seen_inc = int(
            comm.allreduce(np.array([skb.n_seen_delta_], dtype=np.int64))[0]
        )
        skb.n_seen_ += seen_inc - skb.n_seen_delta_
        skb.n_seen_delta_ = 0
        for st in skb._states:
            st.n_points = skb.n_seen_
    if reg.enabled:
        # Per-round wire accounting: what THIS rank contributed to the
        # collective, by payload kind. Summed over rounds this is exactly
        # the O(histogram × rounds) bound tests/insitu pin.
        bytes_total = reg.counter(
            "insitu_consolidation_bytes_total",
            "Delta bytes this rank put on the wire per consolidation payload "
            "kind (hist = flat histogram delta, keys = sparse key-cell delta, "
            "seen = points-seen scalar).",
            ("kind", "rank", "algo"),
        )
        bytes_total.labels(kind="hist", rank=rank, algo=reduce_algo).inc(
            flat_delta.nbytes
        )
        bytes_total.labels(kind="keys", rank=rank, algo=reduce_algo).inc(
            payload_nbytes(payload)
        )
        bytes_total.labels(kind="seen", rank=rank, algo=reduce_algo).inc(8)
        if grid_bytes:
            bytes_total.labels(kind="grid", rank=rank, algo=reduce_algo).inc(
                grid_bytes
            )
        reg.counter(
            "insitu_consolidation_rounds_total",
            "Distributed delta-merge rounds completed, per rank and reduce algo.",
            ("rank", "algo"),
        ).labels(rank=rank, algo=reduce_algo).inc()
        reg.counter(
            "insitu_consolidation_cells_folded_total",
            "Peer key-cells folded into the merged table, per rank.",
            ("rank",),
        ).labels(rank=rank).inc(cells_folded)
        evictions_after = sum(st.keys.evicted_keys for st in skb._states)
        reg.counter(
            "insitu_consolidation_evictions_total",
            "Key-cells evicted by capacity during delta merges, per rank.",
            ("rank",),
        ).labels(rank=rank).inc(evictions_after - evictions_before)


@dataclass
class RecoveryContext:
    """Mutable fault-tolerance state threaded through a resilient run.

    ``comm`` is replaced by its shrunken successor on every recovery, so
    callers must always go through the context (never cache the
    communicator) once recovery is enabled.
    """

    comm: Communicator
    recover: bool = False
    max_recoveries: Optional[int] = None   # None = bounded only by size-1
    recoveries: int = 0
    frames_lost: int = 0
    lost_ranks: List[int] = field(default_factory=list)

    @property
    def can_recover(self) -> bool:
        if not self.recover or not isinstance(self.comm, MailboxComm):
            return False
        if self.comm.size <= 1:
            return False  # nobody left to agree with
        if self.max_recoveries is not None and self.recoveries >= self.max_recoveries:
            return False
        return True


def _physical_rank(comm: Communicator) -> int:
    return comm.physical_rank if isinstance(comm, MailboxComm) else comm.rank


def _recover_from_failure(
    ctx: RecoveryContext, skb: StreamingKeyBin2, exc: RankFailedError
) -> None:
    """One recovery round: agree on survivors, shrink, roll back, re-account.

    The roll-back is exact without touching disk: each rank's own-history
    ledger (``hist_local``/``keys_local``/``n_own_``) is the portion of its
    *own* frames already merged, so discarding the merged global view and
    re-seeding the deltas from the ledger
    (:meth:`~repro.core.streaming._ProjectionState.rebuild_from_local`)
    leaves every survivor holding exactly its own full history as one big
    unmerged delta. The retried consolidation on the shrunken communicator
    then reproduces, to the frame, the state a run over only the surviving
    ranks' trajectories would have built — the dead rank's already-merged
    mass vanishes along with the discarded global view.
    """
    comm = ctx.comm
    assert isinstance(comm, MailboxComm)
    # The blamed rank: confirmed deaths (failure sentinel seen) are never
    # probed again; an unconfirmed timeout stays a mere suspect — the peer
    # may be slow, and the agreement protocol lets it rejoin.
    suspects: List[int] = []
    confirmed: List[int] = []
    blamed_phys = getattr(exc, "rank", None)
    phys_to_cur = {comm._physical[r]: r for r in range(comm.size)}
    if blamed_phys in phys_to_cur and phys_to_cur[blamed_phys] != comm.rank:
        target = confirmed if getattr(exc, "confirmed", False) else suspects
        target.append(phys_to_cur[blamed_phys])
    # Pre-rebuild accounting: the merged-global frame count and this rank's
    # merged share of it. Their difference across survivors is the mass
    # that dies with the lost ranks.
    merged_global = skb.n_seen_ - skb.n_seen_delta_
    merged_own = skb.n_own_ - skb.n_seen_delta_
    with trace.span("recover"):
        # Wake peers blocked on live ranks (e.g. waiting for the root's
        # broadcast) so they join the agreement now, not at their timeout.
        comm.announce_recovery(
            -1 if blamed_phys is None else int(blamed_phys),
            bool(getattr(exc, "confirmed", False)),
            str(exc),
        )
        survivors = agree_on_survivors(
            comm, suspects=suspects, confirmed_dead=confirmed
        )
        lost_phys = [
            comm._physical[r] for r in range(comm.size) if r not in survivors
        ]
        new_comm = comm.shrink(survivors)
        ctx.comm = new_comm
        ctx.recoveries += 1
        ctx.lost_ranks.extend(lost_phys)
        # Aborted collectives leave n_seen_ untouched (the seen allreduce is
        # the last step of a consolidation), so survivors agree on the
        # merged-global count; MAX is belt-and-braces for mid-round deaths.
        global_seen = int(
            new_comm.allreduce(
                np.array([merged_global], dtype=np.int64), op=ReduceOp.MAX
            )[0]
        )
        survivor_seen = int(
            new_comm.allreduce(
                np.array([merged_own], dtype=np.int64), op=ReduceOp.SUM
            )[0]
        )
        lost = max(0, global_seen - survivor_seen)
        ctx.frames_lost += lost
        assert skb._states is not None
        for st in skb._states:
            st.rebuild_from_local()
        skb.n_seen_ = skb.n_own_
        skb.n_seen_delta_ = skb.n_own_
        for st in skb._states:
            st.n_points = skb.n_own_
    reg = default_registry()
    if reg.enabled:
        r = str(new_comm.physical_rank)
        reg.counter(
            "insitu_recoveries_total",
            "Rank-failure recoveries this rank survived (agreement + "
            "communicator shrink + ledger rollback + re-merge).",
            ("rank",),
        ).labels(rank=r).inc()
        reg.counter(
            "insitu_frames_lost_total",
            "Frames of already-merged mass dropped with lost ranks, as "
            "observed by this surviving rank.",
            ("rank",),
        ).labels(rank=r).inc(lost)


def resilient_consolidate(
    ctx: RecoveryContext,
    skb: StreamingKeyBin2,
    reduce_algo: str = "linear",
) -> None:
    """Consolidate via ``ctx.comm``, recovering from rank failures.

    On :class:`~repro.errors.RankFailedError` the survivors agree on a new
    membership, shrink the communicator, roll the streaming state back to
    each rank's own-history ledger, and retry — in a loop, so a second
    failure during the retried consolidation triggers another recovery.
    A failure during the recovery protocol itself (agreement
    non-convergence or a death inside the re-accounting collectives) fails
    fast: at that point a consistent shrink cannot be guaranteed and a
    clean restart from checkpoints beats a split brain.
    """
    while True:
        try:
            consolidate_streaming_state(ctx.comm, skb, reduce_algo=reduce_algo)
            return
        except RankFailedError as exc:
            if not ctx.can_recover:
                raise
            _recover_from_failure(ctx, skb, exc)


def distributed_insitu_spmd(
    comm: Communicator,
    trajectory: Trajectory,
    chunk_size: int = 250,
    consolidate_every: int = 4,
    fingerprint_window: int = 50,
    seed: int = 0,
    reduce_algo: str = "linear",
    recover: bool = False,
    max_recoveries: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    checkpoint_keep: int = 3,
    **keybin_params: Any,
) -> DistributedInSituResult:
    """SPMD in-situ analysis: each rank passes its *own* trajectory.

    All ranks share ``seed`` (identical projections/ranges). Every
    ``consolidate_every`` chunks, streaming state is delta-merged globally
    — the only communication, sized O(histograms + new occupied cells).
    ``reduce_algo`` selects the histogram reduction topology (``"linear"``
    or ``"ring"``; see :func:`consolidate_streaming_state`).

    Fault tolerance:

    * ``recover=True`` turns rank failures during consolidation into
      survivor recoveries (see :func:`resilient_consolidate`) instead of
      run-wide aborts; ``max_recoveries`` caps how many.
    * ``checkpoint_dir`` enables per-rank checkpoints after every
      ``checkpoint_every``-th successful consolidation, and *resume*: when
      the directory already holds a checkpoint round common to all ranks,
      every rank restores it and skips the chunks it covers.
    """
    if chunk_size < 1 or consolidate_every < 1:
        raise ValidationError("chunk_size and consolidate_every must be >= 1")
    if checkpoint_every < 1:
        raise ValidationError("checkpoint_every must be >= 1")
    n_frames = trajectory.n_frames
    n_chunks_local = -(-n_frames // chunk_size)
    # Ranks may hold different trajectory lengths; every rank must join
    # every consolidation, so the consolidation count is agreed globally.
    # The same allreduce carries -n_frames so every rank learns the global
    # minimum and a zero-frame rank fails fast *on all ranks at once*,
    # instead of one rank raising mid-loop while its peers block in the
    # next consolidation until the deadlock timeout.
    agreed = comm.allreduce(
        np.array([n_chunks_local, -n_frames], dtype=np.int64), op=ReduceOp.MAX
    )
    n_chunks_global = int(agreed[0])
    if int(-agreed[1]) < 1:
        raise ValidationError(
            "a rank holds a trajectory with no frames; every rank needs at "
            "least one frame to join the shared model"
        )
    features = encode_frames(trajectory.angles)

    params = {
        "feature_range": (0.0, 6.0),
        "candidate_depths": (5, 6, 7, 8),
    }
    params.update(keybin_params)
    skb = StreamingKeyBin2(seed=seed, **params)

    # Checkpointing keys on the *physical* rank so a recovered (shrunk)
    # run keeps appending to the same per-rank history, and a restarted
    # run finds it again.
    ckpt_mgr: Optional[CheckpointManager] = None
    resumed_round: Optional[int] = None
    start_chunk = 0
    consolidation_round = 0
    if checkpoint_dir is not None:
        ckpt_mgr = CheckpointManager(
            checkpoint_dir, _physical_rank(comm), keep=checkpoint_keep
        )
        # Resume from the newest round every rank holds. The directory scan
        # is deterministic on a shared filesystem, but the MIN allreduce
        # makes the choice robust to ranks racing each other's writes.
        local_common = common_checkpoint_round(checkpoint_dir, comm.size)
        agreed_round = int(
            comm.allreduce(
                np.array(
                    [-1 if local_common is None else local_common],
                    dtype=np.int64,
                ),
                op=ReduceOp.MIN,
            )[0]
        )
        if agreed_round >= 0:
            skb = ckpt_mgr.load(agreed_round)
            meta = skb.restored_meta_ or {}
            start_chunk = int(meta.get("chunks_done", 0))
            consolidation_round = agreed_round
            resumed_round = agreed_round

    rctx = RecoveryContext(
        comm=comm, recover=recover, max_recoveries=max_recoveries
    )
    # Executor ranks run on worker threads, which start from an empty
    # trace context; re-root so every span below attributes to its rank
    # (insitu/rank2/partial_fit/project, insitu/rank2/consolidate/...).
    with trace.propagate(("insitu", f"rank{comm.rank}")):
        chunk_idx = start_chunk
        for start in range(
            start_chunk * chunk_size, n_chunks_global * chunk_size, chunk_size
        ):
            if start < n_frames:
                stop = min(start + chunk_size, n_frames)
                skb.partial_fit(features[start:stop])
            chunk_idx += 1
            if chunk_idx % consolidate_every == 0 or chunk_idx == n_chunks_global:
                consolidation_round += 1
                maybe_inject(rctx.comm, "consolidation")
                resilient_consolidate(rctx, skb, reduce_algo=reduce_algo)
                if (
                    ckpt_mgr is not None
                    and consolidation_round % checkpoint_every == 0
                ):
                    ckpt_mgr.save(
                        skb,
                        consolidation_round,
                        meta={
                            "chunks_done": chunk_idx,
                            "n_ranks": rctx.comm.size,
                            "epoch": getattr(rctx.comm, "epoch", 0),
                        },
                    )

        skb.refresh()
        with trace.span("label_frames"):
            labels = skb.predict(features)
    prints = window_fingerprints(labels, window=fingerprint_window)
    changes = fingerprint_change_points(prints)
    phase_nmi = (
        float(normalized_mutual_info(trajectory.phase_ids, labels))
        if trajectory.phase_ids is not None
        else None
    )
    # Global cluster count (model is identical everywhere after merging).
    n_clusters = skb.n_clusters_
    return DistributedInSituResult(
        labels=labels,
        fingerprints=prints,
        fingerprint_changes=changes,
        n_clusters=n_clusters,
        phase_nmi=phase_nmi,
        traffic=rctx.comm.traffic.snapshot(),
        recoveries=rctx.recoveries,
        frames_lost=rctx.frames_lost,
        lost_ranks=tuple(rctx.lost_ranks),
        resumed_round=resumed_round,
    )


def _entry(comm, trajectories, chunk_size, consolidate_every, seed, reduce_algo,
           recover, max_recoveries, checkpoint_dir, checkpoint_every, params):
    res = distributed_insitu_spmd(
        comm, trajectories[comm.rank], chunk_size=chunk_size,
        consolidate_every=consolidate_every, seed=seed,
        reduce_algo=reduce_algo, recover=recover,
        max_recoveries=max_recoveries, checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every, **params,
    )
    return res


def run_distributed_insitu(
    trajectories: Sequence[Trajectory],
    chunk_size: int = 250,
    consolidate_every: int = 4,
    seed: int = 0,
    executor: str = "thread",
    timeout: Optional[float] = 600.0,
    reduce_algo: str = "linear",
    recover: bool = False,
    max_recoveries: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    faults: Optional[Any] = None,
    suspicion_timeout: Optional[float] = None,
    **keybin_params: Any,
) -> List[Any]:
    """Front-end: one rank per trajectory, results in rank order.

    With ``recover=True`` the run survives rank failures: failed ranks'
    slots in the returned list hold the exception that killed them, and
    survivors' :class:`DistributedInSituResult` entries report
    ``recoveries``/``frames_lost``. ``faults`` takes a
    :class:`~repro.comm.faults.FaultPlan` (or its ``parse`` spec string)
    for deterministic chaos testing. ``suspicion_timeout`` (seconds,
    below ``timeout``) turns receive stalls into liveness probes before
    any failure is declared, so a slow-but-alive rank is waited out
    instead of evicted (slow ≠ dead).
    """
    if not trajectories:
        raise ValidationError("need at least one trajectory")
    for i, traj in enumerate(trajectories):
        if traj.n_frames < 1:
            raise ValidationError(
                f"trajectory {i} ({traj.name!r}) has no frames; every rank "
                "needs at least one frame"
            )
    return run_spmd(
        _entry,
        len(trajectories),
        executor=executor,
        args=(list(trajectories), chunk_size, consolidate_every, seed,
              reduce_algo, recover, max_recoveries, checkpoint_dir,
              checkpoint_every, dict(keybin_params)),
        timeout=timeout,
        faults=faults,
        return_exceptions=recover,
        suspicion_timeout=suspicion_timeout,
    )
