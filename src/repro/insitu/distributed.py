"""Distributed in-situ analysis (paper §5.1).

"Simulations can be performed in parallel, with different nodes taking
care of different segments of a trajectory, or, more accurately, different
trajectories given particular starting conditions. As simulations
progress, in-situ analysis is necessary to determine what conformational
spaces have been analyzed…"

This driver couples one simulation per SPMD rank to a *shared* streaming
KeyBin2 state: every rank accumulates local histograms and occupied-cell
counts over its own frames; periodically the histograms are summed with an
allreduce and the cell tables unioned, so every rank labels with the same
global model. A conformation first visited by rank 3's simulation is
recognized when rank 0's trajectory reaches it — the cross-trajectory
convergence §5 is about.

All ranks construct identical projection matrices and binning ranges from
the shared seed and the a-priori feature range, so merged histograms are
meaningful without any calibration traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.base import Communicator, ReduceOp
from repro.comm.spmd import run_spmd
from repro.core.streaming import StreamingKeyBin2
from repro.errors import ValidationError
from repro.insitu.fingerprint import fingerprint_change_points, window_fingerprints
from repro.metrics.external import normalized_mutual_info
from repro.proteins.encode import encode_frames
from repro.proteins.trajectory import Trajectory

__all__ = ["DistributedInSituResult", "distributed_insitu_spmd", "run_distributed_insitu"]


@dataclass
class DistributedInSituResult:
    """Per-rank outcome of a distributed in-situ run."""

    labels: np.ndarray                # final labels for this rank's frames
    fingerprints: list
    fingerprint_changes: np.ndarray
    n_clusters: int                   # global cluster count (same all ranks)
    phase_nmi: Optional[float]
    traffic: Dict[str, int] = field(default_factory=dict)


def _merge_streaming_state(comm: Communicator, skb: StreamingKeyBin2) -> None:
    """Sum histograms and union key counters across ranks, in place.

    Histogram tables ride one allreduce buffer; occupied-cell counters are
    gathered at the master, merged, and broadcast (they are small because
    clustered data occupies few cells).
    """
    assert skb._states is not None
    # --- histograms: one flat allreduce for all projections and depths ---
    flat = np.concatenate(
        [st.hist[d].ravel() for st in skb._states for d in st.depths]
    )
    total = comm.allreduce(flat, op=ReduceOp.SUM)
    offset = 0
    for st in skb._states:
        for d in st.depths:
            size = st.hist[d].size
            merged = total[offset : offset + size].reshape(st.hist[d].shape)
            st.hist[d][...] = merged
            offset += size
    # --- key counters: gather → merge → bcast ---
    payload = [st.keys.to_arrays() for st in skb._states]
    gathered = comm.gather(payload, root=0)
    if comm.rank == 0:
        merged_counters = []
        for proj_idx, st in enumerate(skb._states):
            combined: Dict[bytes, int] = {}
            for rank_payload in gathered:
                keys, counts = rank_payload[proj_idx]
                width = keys.shape[1] if keys.size else 0
                raw = keys.tobytes()
                for i in range(keys.shape[0]):
                    kb = raw[i * width : (i + 1) * width]
                    combined[kb] = combined.get(kb, 0) + int(counts[i])
            merged_counters.append(combined)
    else:
        merged_counters = None
    merged_counters = comm.bcast(merged_counters, root=0)
    # Points seen globally (identical on every rank after the allreduce).
    global_seen = int(comm.allreduce(np.array([skb.n_seen_]))[0])
    for st, combined in zip(skb._states, merged_counters):
        st.keys._counts = dict(combined)
        if combined and st.keys._width is None:
            st.keys._width = len(next(iter(combined)))
        st.n_points = global_seen
    skb.n_seen_ = global_seen


def distributed_insitu_spmd(
    comm: Communicator,
    trajectory: Trajectory,
    chunk_size: int = 250,
    consolidate_every: int = 4,
    fingerprint_window: int = 50,
    seed: int = 0,
    **keybin_params: Any,
) -> DistributedInSituResult:
    """SPMD in-situ analysis: each rank passes its *own* trajectory.

    All ranks share ``seed`` (identical projections/ranges). Every
    ``consolidate_every`` chunks, streaming state is merged globally —
    the only communication, sized O(histograms + occupied cells).
    """
    if chunk_size < 1 or consolidate_every < 1:
        raise ValidationError("chunk_size and consolidate_every must be >= 1")
    features = encode_frames(trajectory.angles)

    params = {
        "feature_range": (0.0, 6.0),
        "candidate_depths": (5, 6, 7, 8),
    }
    params.update(keybin_params)
    skb = StreamingKeyBin2(seed=seed, **params)

    n_frames = features.shape[0]
    n_chunks_local = -(-n_frames // chunk_size)
    # Ranks may hold different trajectory lengths; every rank must join
    # every consolidation, so the consolidation count is agreed globally.
    n_chunks_global = int(comm.allreduce(n_chunks_local, op=ReduceOp.MAX))

    chunk_idx = 0
    for start in range(0, n_chunks_global * chunk_size, chunk_size):
        if start < n_frames:
            stop = min(start + chunk_size, n_frames)
            skb.partial_fit(features[start:stop])
        elif skb._states is None:
            raise ValidationError("rank has no frames at all")
        chunk_idx += 1
        if chunk_idx % consolidate_every == 0 or chunk_idx == n_chunks_global:
            _merge_streaming_state(comm, skb)

    skb.refresh()
    labels = skb.predict(features)
    prints = window_fingerprints(labels, window=fingerprint_window)
    changes = fingerprint_change_points(prints)
    phase_nmi = (
        float(normalized_mutual_info(trajectory.phase_ids, labels))
        if trajectory.phase_ids is not None
        else None
    )
    # Global cluster count (model is identical everywhere after merging).
    n_clusters = skb.n_clusters_
    return DistributedInSituResult(
        labels=labels,
        fingerprints=prints,
        fingerprint_changes=changes,
        n_clusters=n_clusters,
        phase_nmi=phase_nmi,
        traffic=comm.traffic.snapshot(),
    )


def _entry(comm, trajectories, chunk_size, consolidate_every, seed, params):
    res = distributed_insitu_spmd(
        comm, trajectories[comm.rank], chunk_size=chunk_size,
        consolidate_every=consolidate_every, seed=seed, **params,
    )
    return res


def run_distributed_insitu(
    trajectories: Sequence[Trajectory],
    chunk_size: int = 250,
    consolidate_every: int = 4,
    seed: int = 0,
    executor: str = "thread",
    timeout: Optional[float] = 600.0,
    **keybin_params: Any,
) -> List[DistributedInSituResult]:
    """Front-end: one rank per trajectory, results in rank order."""
    if not trajectories:
        raise ValidationError("need at least one trajectory")
    return run_spmd(
        _entry,
        len(trajectories),
        executor=executor,
        args=(list(trajectories), chunk_size, consolidate_every, seed,
              dict(keybin_params)),
        timeout=timeout,
    )
