"""Distributed in-situ analysis (paper §5.1).

"Simulations can be performed in parallel, with different nodes taking
care of different segments of a trajectory, or, more accurately, different
trajectories given particular starting conditions. As simulations
progress, in-situ analysis is necessary to determine what conformational
spaces have been analyzed…"

This driver couples one simulation per SPMD rank to a *shared* streaming
KeyBin2 state: every rank accumulates local histograms and occupied-cell
counts over its own frames; periodically the histograms are summed with an
allreduce and the cell tables unioned, so every rank labels with the same
global model. A conformation first visited by rank 3's simulation is
recognized when rank 0's trajectory reaches it — the cross-trajectory
convergence §5 is about.

All ranks construct identical projection matrices and binning ranges from
the shared seed and the a-priori feature range, so merged histograms are
meaningful without any calibration traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.base import Communicator, ReduceOp
from repro.comm.ring import ring_allreduce
from repro.comm.spmd import run_spmd
from repro.comm.traffic import payload_nbytes
from repro.core.streaming import StreamingKeyBin2
from repro.errors import ValidationError
from repro.obs import default_registry, trace
from repro.insitu.fingerprint import fingerprint_change_points, window_fingerprints
from repro.metrics.external import normalized_mutual_info
from repro.proteins.encode import encode_frames
from repro.proteins.trajectory import Trajectory

__all__ = [
    "DistributedInSituResult",
    "consolidate_streaming_state",
    "distributed_insitu_spmd",
    "run_distributed_insitu",
]


@dataclass
class DistributedInSituResult:
    """Per-rank outcome of a distributed in-situ run."""

    labels: np.ndarray                # final labels for this rank's frames
    fingerprints: list
    fingerprint_changes: np.ndarray
    n_clusters: int                   # global cluster count (same all ranks)
    phase_nmi: Optional[float]
    traffic: Dict[str, int] = field(default_factory=dict)


def consolidate_streaming_state(
    comm: Communicator,
    skb: StreamingKeyBin2,
    reduce_algo: str = "linear",
) -> None:
    """Delta-merge streaming state across ranks, in place.

    Only *increments since the last merge* travel: each rank's
    ``hist_delta`` rides one flat allreduce buffer (and the deltas sum to
    the true global increment no matter how many merges came before — the
    merged totals in ``st.hist`` are never re-reduced, which is what makes
    repeated consolidation idempotent and mass-conserving); key-counter
    deltas are allgathered as sparse arrays and folded into each rank's
    merged table via :meth:`~repro.core.streaming.KeyCounter.merge_arrays`,
    which enforces the capacity cap and accumulates peers' eviction totals.

    ``reduce_algo`` selects the histogram reduction: ``"linear"`` uses the
    communicator's default allreduce, ``"ring"`` the bandwidth-optimal
    :func:`~repro.comm.ring.ring_allreduce` (each rank sends O(2·len)
    bytes regardless of rank count).

    Every round records per-rank telemetry into the obs default registry:
    ``insitu_consolidation_bytes_total{kind,rank,algo}`` (delta bytes on
    the wire — the paper's O(2·K·N_rp·B) term under ``kind="hist"``),
    ``insitu_consolidation_rounds_total``, peer cells folded, and
    eviction totals, plus ``consolidate/...`` phase spans.
    """
    if reduce_algo not in ("linear", "ring"):
        raise ValidationError(
            f"reduce_algo must be 'linear' or 'ring', got {reduce_algo!r}"
        )
    assert skb._states is not None
    reg = default_registry()
    rank = str(comm.rank)
    with trace.span("consolidate"):
        # --- histogram deltas: one flat buffer for all projections/depths ---
        flat_delta = np.concatenate(
            [st.hist_delta[d].ravel() for st in skb._states for d in st.depths]
        )
        with trace.span("hist_allreduce"):
            if reduce_algo == "ring":
                total_delta = ring_allreduce(comm, flat_delta, op=ReduceOp.SUM)
            else:
                total_delta = comm.allreduce(flat_delta, op=ReduceOp.SUM)
        offset = 0
        for st in skb._states:
            for d in st.depths:
                size = st.hist[d].size
                global_inc = total_delta[offset : offset + size].reshape(st.hist[d].shape)
                # st.hist already contains this rank's own delta; add the peers'.
                st.hist[d] += global_inc - st.hist_delta[d]
                offset += size
        # --- key-counter deltas: allgather sparse increments, fold into the
        # merged table. Below capacity the merged tables are the same multiset
        # on every rank; evictions are content-deterministic (count, then key
        # bytes), so replicas that overflow agree on what to drop.
        payload = [
            st.keys_delta.to_arrays()
            + (st.keys_delta.evicted_keys, st.keys_delta.evicted_points)
            for st in skb._states
        ]
        with trace.span("keys_allgather"):
            gathered = comm.allgather(payload)
        evictions_before = sum(st.keys.evicted_keys for st in skb._states)
        cells_folded = 0
        for proj_idx, st in enumerate(skb._states):
            for rank_idx, rank_payload in enumerate(gathered):
                if rank_idx == comm.rank:
                    continue  # own delta is already in st.keys via partial_fit
                keys, counts, ev_keys, ev_points = rank_payload[proj_idx]
                cells_folded += int(keys.shape[0])
                st.keys.merge_arrays(
                    keys, counts, evicted_keys=ev_keys, evicted_points=ev_points
                )
            st.reset_deltas()
        # --- points seen: delta allreduce, folded the same way ---
        seen_inc = int(
            comm.allreduce(np.array([skb.n_seen_delta_], dtype=np.int64))[0]
        )
        skb.n_seen_ += seen_inc - skb.n_seen_delta_
        skb.n_seen_delta_ = 0
        for st in skb._states:
            st.n_points = skb.n_seen_
    if reg.enabled:
        # Per-round wire accounting: what THIS rank contributed to the
        # collective, by payload kind. Summed over rounds this is exactly
        # the O(histogram × rounds) bound tests/insitu pin.
        bytes_total = reg.counter(
            "insitu_consolidation_bytes_total",
            "Delta bytes this rank put on the wire per consolidation payload "
            "kind (hist = flat histogram delta, keys = sparse key-cell delta, "
            "seen = points-seen scalar).",
            ("kind", "rank", "algo"),
        )
        bytes_total.labels(kind="hist", rank=rank, algo=reduce_algo).inc(
            flat_delta.nbytes
        )
        bytes_total.labels(kind="keys", rank=rank, algo=reduce_algo).inc(
            payload_nbytes(payload)
        )
        bytes_total.labels(kind="seen", rank=rank, algo=reduce_algo).inc(8)
        reg.counter(
            "insitu_consolidation_rounds_total",
            "Distributed delta-merge rounds completed, per rank and reduce algo.",
            ("rank", "algo"),
        ).labels(rank=rank, algo=reduce_algo).inc()
        reg.counter(
            "insitu_consolidation_cells_folded_total",
            "Peer key-cells folded into the merged table, per rank.",
            ("rank",),
        ).labels(rank=rank).inc(cells_folded)
        evictions_after = sum(st.keys.evicted_keys for st in skb._states)
        reg.counter(
            "insitu_consolidation_evictions_total",
            "Key-cells evicted by capacity during delta merges, per rank.",
            ("rank",),
        ).labels(rank=rank).inc(evictions_after - evictions_before)


def distributed_insitu_spmd(
    comm: Communicator,
    trajectory: Trajectory,
    chunk_size: int = 250,
    consolidate_every: int = 4,
    fingerprint_window: int = 50,
    seed: int = 0,
    reduce_algo: str = "linear",
    **keybin_params: Any,
) -> DistributedInSituResult:
    """SPMD in-situ analysis: each rank passes its *own* trajectory.

    All ranks share ``seed`` (identical projections/ranges). Every
    ``consolidate_every`` chunks, streaming state is delta-merged globally
    — the only communication, sized O(histograms + new occupied cells).
    ``reduce_algo`` selects the histogram reduction topology (``"linear"``
    or ``"ring"``; see :func:`consolidate_streaming_state`).
    """
    if chunk_size < 1 or consolidate_every < 1:
        raise ValidationError("chunk_size and consolidate_every must be >= 1")
    n_frames = trajectory.n_frames
    n_chunks_local = -(-n_frames // chunk_size)
    # Ranks may hold different trajectory lengths; every rank must join
    # every consolidation, so the consolidation count is agreed globally.
    # The same allreduce carries -n_frames so every rank learns the global
    # minimum and a zero-frame rank fails fast *on all ranks at once*,
    # instead of one rank raising mid-loop while its peers block in the
    # next consolidation until the deadlock timeout.
    agreed = comm.allreduce(
        np.array([n_chunks_local, -n_frames], dtype=np.int64), op=ReduceOp.MAX
    )
    n_chunks_global = int(agreed[0])
    if int(-agreed[1]) < 1:
        raise ValidationError(
            "a rank holds a trajectory with no frames; every rank needs at "
            "least one frame to join the shared model"
        )
    features = encode_frames(trajectory.angles)

    params = {
        "feature_range": (0.0, 6.0),
        "candidate_depths": (5, 6, 7, 8),
    }
    params.update(keybin_params)
    skb = StreamingKeyBin2(seed=seed, **params)

    # Executor ranks run on worker threads, which start from an empty
    # trace context; re-root so every span below attributes to its rank
    # (insitu/rank2/partial_fit/project, insitu/rank2/consolidate/...).
    with trace.propagate(("insitu", f"rank{comm.rank}")):
        chunk_idx = 0
        for start in range(0, n_chunks_global * chunk_size, chunk_size):
            if start < n_frames:
                stop = min(start + chunk_size, n_frames)
                skb.partial_fit(features[start:stop])
            chunk_idx += 1
            if chunk_idx % consolidate_every == 0 or chunk_idx == n_chunks_global:
                consolidate_streaming_state(comm, skb, reduce_algo=reduce_algo)

        skb.refresh()
        with trace.span("label_frames"):
            labels = skb.predict(features)
    prints = window_fingerprints(labels, window=fingerprint_window)
    changes = fingerprint_change_points(prints)
    phase_nmi = (
        float(normalized_mutual_info(trajectory.phase_ids, labels))
        if trajectory.phase_ids is not None
        else None
    )
    # Global cluster count (model is identical everywhere after merging).
    n_clusters = skb.n_clusters_
    return DistributedInSituResult(
        labels=labels,
        fingerprints=prints,
        fingerprint_changes=changes,
        n_clusters=n_clusters,
        phase_nmi=phase_nmi,
        traffic=comm.traffic.snapshot(),
    )


def _entry(comm, trajectories, chunk_size, consolidate_every, seed, reduce_algo,
           params):
    res = distributed_insitu_spmd(
        comm, trajectories[comm.rank], chunk_size=chunk_size,
        consolidate_every=consolidate_every, seed=seed,
        reduce_algo=reduce_algo, **params,
    )
    return res


def run_distributed_insitu(
    trajectories: Sequence[Trajectory],
    chunk_size: int = 250,
    consolidate_every: int = 4,
    seed: int = 0,
    executor: str = "thread",
    timeout: Optional[float] = 600.0,
    reduce_algo: str = "linear",
    **keybin_params: Any,
) -> List[DistributedInSituResult]:
    """Front-end: one rank per trajectory, results in rank order."""
    if not trajectories:
        raise ValidationError("need at least one trajectory")
    for i, traj in enumerate(trajectories):
        if traj.n_frames < 1:
            raise ValidationError(
                f"trajectory {i} ({traj.name!r}) has no frames; every rank "
                "needs at least one frame"
            )
    return run_spmd(
        _entry,
        len(trajectories),
        executor=executor,
        args=(list(trajectories), chunk_size, consolidate_every, seed,
              reduce_algo, dict(keybin_params)),
        timeout=timeout,
    )
