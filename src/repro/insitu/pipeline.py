"""End-to-end in-situ analysis pipeline (paper §5).

Couples a (simulated) running molecular-dynamics trajectory to streaming
KeyBin2 exactly as an in-situ deployment would:

1. the simulation produces frames in chunks (no global view ever exists),
2. each chunk is Ramachandran-encoded and fed to
   :class:`~repro.core.streaming.StreamingKeyBin2` (``partial_fit``),
3. the model refreshes periodically; frames are labeled online with the
   model available *at that time* (late chunks relabel nothing),
4. afterwards, fingerprints are computed from the online labels, and —
   offline, for validation only — the paper's probabilistic stability
   analysis (eqs. 3–4) produces metastable segments to compare against.

Because our trajectories are synthetic, the pipeline also reports
agreement between online fingerprint structure and the *ground-truth*
phases, a quantitative check the paper could not run on MoDEL data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.streaming import StreamingKeyBin2
from repro.errors import ValidationError
from repro.insitu.fingerprint import fingerprint_change_points, window_fingerprints
from repro.insitu.segments import Segment, extract_segments, segment_frame_labels
from repro.insitu.stability import (
    label_probabilities,
    stability_decisions,
    stability_scores,
)
from repro.metrics.external import normalized_mutual_info
from repro.obs import trace
from repro.proteins.encode import encode_frames
from repro.proteins.rmsd import rmsd_time_series, select_representatives
from repro.proteins.trajectory import Trajectory
from repro.util.rng import SeedLike

__all__ = ["InSituPipeline", "InSituResult"]


@dataclass
class InSituResult:
    """Everything the pipeline produces for one trajectory."""

    labels: np.ndarray                 # online per-frame cluster labels
    fingerprints: list                 # per-frame fingerprint sets
    fingerprint_changes: np.ndarray    # detected change frames
    segments: List[Segment]            # offline metastable segments (eqs 3-4)
    stable_mask: np.ndarray            # per-frame stability decision
    stability_labels: np.ndarray       # per-frame winning representative
    n_clusters: int
    phase_nmi: Optional[float] = None  # labels vs ground-truth phases
    segment_nmi: Optional[float] = None  # offline segments vs ground truth
    timings: Dict[str, float] = field(default_factory=dict)


class InSituPipeline:
    """Configurable in-situ analysis run.

    Parameters
    ----------
    chunk_size:
        Frames delivered per simulation step (the in-situ batch).
    refresh_every:
        Chunks between model refreshes ("histograms are communicated
        periodically").
    n_representatives:
        Representatives for the offline stability validation.
    representative_power:
        Power-law exponent for representative sampling; ``inf`` (default)
        is deterministic farthest-point selection, which guarantees the
        distinct conformations eq. 3 assumes.
    stability_window, stability_threshold:
        Eq. 3/4 knobs (paper: previous 100 steps; threshold ``w``).
    fingerprint_window:
        Sliding window for fingerprints.
    keybin_params:
        Extra keyword arguments for :class:`StreamingKeyBin2`.
    """

    def __init__(
        self,
        chunk_size: int = 250,
        refresh_every: int = 4,
        n_representatives: int = 8,
        representative_power: float = float("inf"),
        stability_window: int = 100,
        stability_threshold: float = 0.05,
        fingerprint_window: int = 50,
        seed: SeedLike = 0,
        **keybin_params,
    ):
        if chunk_size < 1 or refresh_every < 1:
            raise ValidationError("chunk_size and refresh_every must be >= 1")
        self.chunk_size = int(chunk_size)
        self.refresh_every = int(refresh_every)
        self.n_representatives = int(n_representatives)
        self.representative_power = float(representative_power)
        self.stability_window = int(stability_window)
        self.stability_threshold = float(stability_threshold)
        self.fingerprint_window = int(fingerprint_window)
        self.seed = seed
        self.keybin_params = dict(keybin_params)

    def run(self, trajectory: Trajectory) -> InSituResult:
        """Analyze one trajectory end to end.

        Each stage runs under an obs phase span (``insitu/encode``, …), so
        the result's ``timings`` dict and the telemetry registry report the
        same wall-clock numbers.
        """
        with trace.propagate(("insitu",)):
            return self._run(trajectory)

    def _run(self, trajectory: Trajectory) -> InSituResult:
        import time

        # timings is part of the result API and must stay accurate even
        # when the obs registry is disabled (spans no-op then), so each
        # stage is clocked explicitly alongside its span.
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        with trace.span("encode"):
            features = encode_frames(trajectory.angles)
        timings["encode"] = time.perf_counter() - t0

        # --- online clustering (the in-situ part) --------------------------
        # Streaming accumulates histograms and keys chunk by chunk; per the
        # paper, points' keys await the *final* clustering assignment, so
        # once the last consolidation lands the whole trajectory is labeled
        # through the final partition (an O(M) key lookup, no re-clustering).
        t0 = time.perf_counter()
        with trace.span("cluster"):
            params = {
                # Secondary-structure codes are known a priori to lie in
                # [0, 6] (the paper's "predetermined space range") —
                # essential because a folding stream's first chunk visits
                # only the first phase.
                "feature_range": (0.0, 6.0),
                # Deeper bins: the known range is wider than any single
                # phase's spread, so extra resolution is needed to
                # separate phases.
                "candidate_depths": (5, 6, 7, 8),
            }
            params.update(self.keybin_params)
            skb = StreamingKeyBin2(seed=self.seed, **params)
            n_frames = features.shape[0]
            chunk_idx = 0
            for start in range(0, n_frames, self.chunk_size):
                stop = min(start + self.chunk_size, n_frames)
                skb.partial_fit(features[start:stop])
                chunk_idx += 1
                if chunk_idx % self.refresh_every == 0:
                    skb.refresh()  # periodic consolidation (checkpoints)
            skb.refresh()
            with trace.span("label_frames"):
                labels = skb.predict(features)
        timings["cluster"] = time.perf_counter() - t0

        # --- fingerprints ----------------------------------------------------
        t0 = time.perf_counter()
        with trace.span("fingerprint"):
            prints = window_fingerprints(labels, window=self.fingerprint_window)
            changes = fingerprint_change_points(prints)
        timings["fingerprint"] = time.perf_counter() - t0

        # --- offline probabilistic validation (eqs. 3–4) ----------------------
        t0 = time.perf_counter()
        with trace.span("validate"):
            reps = select_representatives(
                trajectory.angles,
                self.n_representatives,
                power=self.representative_power,
                seed=self.seed,
            )
            flat = trajectory.angles.reshape(n_frames, -1)
            distances = rmsd_time_series(flat, flat[reps])
            probs = label_probabilities(distances)
            scores = stability_scores(probs, window=self.stability_window)
            stable, winners = stability_decisions(
                scores, self.stability_threshold
            )
            segments = extract_segments(stable, winners)
        timings["validate"] = time.perf_counter() - t0

        phase_nmi = float(
            normalized_mutual_info(trajectory.phase_ids, labels)
        )
        seg_labels = segment_frame_labels(segments, n_frames)
        covered = seg_labels >= 0
        segment_nmi = (
            float(
                normalized_mutual_info(
                    trajectory.phase_ids[covered], seg_labels[covered]
                )
            )
            if covered.any()
            else None
        )

        return InSituResult(
            labels=labels,
            fingerprints=prints,
            fingerprint_changes=changes,
            segments=segments,
            stable_mask=stable,
            stability_labels=winners,
            n_clusters=int(np.unique(labels[labels >= 0]).size),
            phase_nmi=phase_nmi,
            segment_nmi=segment_nmi,
            timings=timings,
        )
