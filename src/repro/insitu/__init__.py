"""In-situ trajectory analysis (paper §5).

Two complementary views of a folding trajectory:

- **cluster fingerprints** (:mod:`repro.insitu.fingerprint`) — the online
  product of KeyBin2: sequences of fine-grained cluster labels whose
  windowed signatures identify the conformational search space a frame
  belongs to;
- **probabilistic stability** (:mod:`repro.insitu.stability`) — the
  paper's offline validation (eqs. 3–4): RMSD-derived label probabilities,
  70% high-density-region scores, and a stable/transitional decision per
  frame, from which :mod:`repro.insitu.segments` extracts metastable
  segments.

:mod:`repro.insitu.pipeline` couples a running simulation to streaming
KeyBin2 the way an in-situ deployment would.
"""

from __future__ import annotations

from repro.insitu.fingerprint import window_fingerprints, fingerprint_change_points
from repro.insitu.stability import (
    label_probabilities,
    hdr_center,
    stability_scores,
    stability_decisions,
)
from repro.insitu.segments import Segment, extract_segments, segment_frame_labels
from repro.insitu.pipeline import InSituPipeline, InSituResult
from repro.insitu.distributed import (
    DistributedInSituResult,
    distributed_insitu_spmd,
    run_distributed_insitu,
)

__all__ = [
    "DistributedInSituResult",
    "distributed_insitu_spmd",
    "run_distributed_insitu",
    "window_fingerprints",
    "fingerprint_change_points",
    "label_probabilities",
    "hdr_center",
    "stability_scores",
    "stability_decisions",
    "Segment",
    "extract_segments",
    "segment_frame_labels",
    "InSituPipeline",
    "InSituResult",
]
