"""Probabilistic stability validation (paper §5.2, eqs. 3–4).

Given RMSD time series between each frame and ``N`` representative
conformations (labels):

1. eq. 3 converts distances to the probability that frame ``i`` *is*
   representative ``l``:  ``Pr(l | i) = (1/d_l,i) / Σ_k (1/d_k,i)``;
2. over the previous ``window`` (paper: 100) frames, each label's
   probability samples form a distribution whose **70% High Density
   Region** centre is the label's stability score at ``i`` (∈ [0, 1]);
3. eq. 4 declares frame ``i`` *stable for label p* when the top score
   leads the runner-up by at least ``w``; otherwise the frame is
   transitional.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "label_probabilities",
    "hdr_center",
    "stability_scores",
    "stability_decisions",
]


def label_probabilities(distances: np.ndarray, floor: float = 1e-9) -> np.ndarray:
    """Eq. 3: inverse-distance label probabilities per frame.

    ``distances`` is (n_labels × n_frames); zeros are floored so an exact
    match yields probability ≈ 1 rather than a division error.
    """
    d = np.asarray(distances, dtype=np.float64)
    if d.ndim != 2:
        raise ValidationError("distances must be (n_labels × n_frames)")
    if np.any(d < 0):
        raise ValidationError("distances must be non-negative")
    inv = 1.0 / np.maximum(d, floor)
    return inv / inv.sum(axis=0, keepdims=True)


def hdr_center(samples: np.ndarray, mass: float = 0.70) -> float:
    """Centre of the smallest interval containing ``mass`` of the samples.

    The sample-based HDR: sort, slide a window covering ``ceil(mass·n)``
    points, take the narrowest window's midpoint.
    """
    s = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    n = s.size
    if n == 0:
        raise ValidationError("samples must be non-empty")
    if not (0.0 < mass <= 1.0):
        raise ValidationError("mass must be in (0, 1]")
    k = max(1, int(np.ceil(mass * n)))
    if k >= n:
        return float((s[0] + s[-1]) / 2.0)
    widths = s[k - 1 :] - s[: n - k + 1]
    i = int(np.argmin(widths))
    return float((s[i] + s[i + k - 1]) / 2.0)


def stability_scores(
    probabilities: np.ndarray,
    window: int = 100,
    mass: float = 0.70,
) -> np.ndarray:
    """Per-frame, per-label HDR-centre stability scores.

    For frame ``i``, each label's score is the 70% HDR centre of that
    label's probabilities over frames ``(i−window, i]``. Early frames use
    the partial history available.
    Returns (n_labels × n_frames).
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 2:
        raise ValidationError("probabilities must be (n_labels × n_frames)")
    if window < 1:
        raise ValidationError("window must be >= 1")
    n_labels, n_frames = p.shape
    out = np.empty_like(p)
    for i in range(n_frames):
        lo = max(0, i - window + 1)
        for l in range(n_labels):
            out[l, i] = hdr_center(p[l, lo : i + 1], mass)
    return out


def stability_decisions(
    scores: np.ndarray, threshold: float = 0.1
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 4: per-frame (stable_mask, winning_label).

    A frame is stable when the best label's score exceeds the runner-up's
    by at least ``threshold`` (``w`` in the paper); the winning label is
    reported either way (it is the *candidate* conformation).
    """
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 2:
        raise ValidationError("scores must be (n_labels × n_frames)")
    if s.shape[0] < 2:
        raise ValidationError("need at least two labels to compare")
    order = np.argsort(s, axis=0)
    top = order[-1]
    top_score = np.take_along_axis(s, top[None, :], axis=0)[0]
    second_score = np.take_along_axis(s, order[-2][None, :], axis=0)[0]
    stable = (top_score - second_score) >= threshold
    return stable, top.astype(np.int64)
