"""Metastable segment extraction.

Turns per-frame (stable, label) decisions into the rectangles of paper
Figure 4: maximal runs of stable frames agreeing on a label, with short
flickers bridged and sub-minimum runs discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["Segment", "extract_segments", "segment_frame_labels"]


@dataclass(frozen=True)
class Segment:
    """A metastable segment: frames ``[start, stop)`` assigned to ``label``."""

    start: int
    stop: int
    label: int

    @property
    def length(self) -> int:
        return self.stop - self.start

    def overlaps(self, other: "Segment") -> bool:
        return self.start < other.stop and other.start < self.stop


def extract_segments(
    stable: np.ndarray,
    labels: np.ndarray,
    min_length: int = 20,
    bridge: int = 5,
) -> List[Segment]:
    """Maximal stable same-label runs.

    Parameters
    ----------
    stable, labels:
        Per-frame decision arrays (equal length).
    min_length:
        Runs shorter than this are dropped (noise, not metastability).
    bridge:
        Unstable gaps up to this length *inside* a run of the same label
        are bridged (momentary score ties during a dwell).
    """
    stable = np.asarray(stable, dtype=bool).ravel()
    labels = np.asarray(labels).ravel()
    if stable.shape != labels.shape:
        raise ValidationError("stable and labels must have the same length")
    if min_length < 1 or bridge < 0:
        raise ValidationError("min_length must be >= 1 and bridge >= 0")
    n = stable.size
    segments: List[Segment] = []
    i = 0
    while i < n:
        if not stable[i]:
            i += 1
            continue
        label = int(labels[i])
        start = i
        j = i + 1
        gap = 0
        end = i + 1  # exclusive end of the last *stable* matching frame
        while j < n:
            if stable[j] and int(labels[j]) == label:
                end = j + 1
                gap = 0
            elif not stable[j] and gap < bridge:
                gap += 1
            else:
                break
            j += 1
        if end - start >= min_length:
            segments.append(Segment(start, end, label))
        i = max(end, i + 1)
    return segments


def segment_frame_labels(segments: List[Segment], n_frames: int) -> np.ndarray:
    """Per-frame label from a segment list; ``-1`` outside all segments."""
    if n_frames < 0:
        raise ValidationError("n_frames must be non-negative")
    out = np.full(n_frames, -1, dtype=np.int64)
    for seg in segments:
        if seg.start < 0 or seg.stop > n_frames:
            raise ValidationError(f"segment {seg} out of range for {n_frames} frames")
        out[seg.start : seg.stop] = seg.label
    return out
