"""Histogram smoothing and discrete derivatives (paper §3.2).

The partitioner needs a smoothed view of each dimension's density before it
can find cuts. The paper uses a moving average with window
``w = sqrt(log2(M)²) = |log2(M)|`` followed by local (least-squares linear)
regression per window; the regression slope is the discrete first
derivative, and differentiating the slopes gives the second derivative that
flags inflection points. This is a Savitzky–Golay-style scheme and — as the
paper argues — reaches KDE-like quality at a fraction of the cost, because
it runs on ``B = O(log M)`` bins instead of ``M`` points.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ValidationError

__all__ = ["paper_window", "moving_average", "local_slopes", "second_derivative"]


def paper_window(n_points: int, n_bins: Optional[int] = None) -> int:
    """The paper's smoothing window: the square root of the bin count.

    §3.2 sets the window "equal to the square root of the number of bins in
    the histogram (w = sqrt(log2²(M)))" — i.e. with the paper's
    ``B = log2²(M)`` bins the window is ``sqrt(B) = log2(M)``. The general
    rule is bin-based: ``w = sqrt(B)``, which keeps the smoothed fraction of
    the space constant across depths. When the bin count is unknown
    (``n_bins=None``) the M-based form ``log2(M)`` is used.
    """
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    if n_bins is not None:
        if n_bins < 1:
            raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
        return max(1, int(round(math.sqrt(n_bins))))
    return max(1, int(round(math.log2(max(n_points, 2)))))


def _check_window(y: np.ndarray, window: int) -> np.ndarray:
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValidationError("smoothing operates on 1-D histograms")
    if window < 1:
        raise ValidationError(f"window must be >= 1, got {window}")
    return y


def moving_average(y: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with reflected boundaries.

    The effective window is ``2·(window // 2) + 1`` (always odd, so the
    result is not phase-shifted). ``window == 1`` returns a copy.
    """
    y = _check_window(y, window)
    half = window // 2
    if half == 0 or y.size <= 1:
        return y.copy()
    half = min(half, y.size - 1)
    padded = np.pad(y, half, mode="reflect")
    kernel_size = 2 * half + 1
    csum = np.cumsum(np.concatenate([[0.0], padded]))
    return (csum[kernel_size:] - csum[:-kernel_size]) / kernel_size


def local_slopes(y: np.ndarray, window: int) -> np.ndarray:
    """First derivative via windowed least-squares linear regression.

    For a centered window of half-width ``h``, the regression slope at bin
    ``i`` has the closed form ``Σ_k k·y[i+k] / Σ_k k²`` (k = −h..h), which a
    single correlation evaluates for every bin at once.
    """
    y = _check_window(y, window)
    half = max(1, window // 2)
    if y.size < 2:
        return np.zeros_like(y)
    half = min(half, y.size - 1)
    k = np.arange(-half, half + 1, dtype=np.float64)
    denom = float(np.sum(k * k))
    padded = np.pad(y, half, mode="reflect")
    # np.correlate slides the kernel without flipping, matching Σ k·y[i+k].
    return np.correlate(padded, k, mode="valid") / denom


def second_derivative(y: np.ndarray, window: int) -> np.ndarray:
    """Second derivative: the slope of the slopes (inflection detector)."""
    return local_slopes(local_slopes(y, window), window)
