"""Privacy properties of the histogram exchange (paper §1).

The paper argues that bins "cannot be used to trace back or reconstruct
the original information", making KeyBin2 "ideal for distributed and
privacy sensitive scenarios". These utilities quantify that claim for a
given configuration:

* :func:`reconstruction_ambiguity` — the per-coordinate uncertainty any
  adversary holding the histograms must accept: at depth ``d`` a value is
  only known to within its bin's width ``span / 2^d``, and only *marginal*
  memberships are revealed, never joint coordinates.
* :func:`histogram_anonymity` — k-anonymity-style occupancy statistics:
  how many points share each published (dimension, bin) cell.

These are design-analysis tools, not a formal privacy proof — the paper
offers none either; differential-privacy noise on the histogram counts
would compose naturally with the pipeline and is left as configuration.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.binning import SpaceRange
from repro.errors import ValidationError

__all__ = ["reconstruction_ambiguity", "histogram_anonymity"]


def reconstruction_ambiguity(space: SpaceRange, depth: int) -> np.ndarray:
    """Per-dimension reconstruction uncertainty (bin width).

    Any reconstruction from the published histograms can pin a projected
    coordinate down only to an interval of this width; the pre-image in
    the original space is an entire affine subspace per projected value,
    so original coordinates are strictly less identifiable still.
    """
    if depth < 1:
        raise ValidationError("depth must be >= 1")
    return space.span / (1 << depth)


def histogram_anonymity(counts: np.ndarray) -> Dict[str, float]:
    """Occupancy statistics of the published cells.

    Returns the minimum / median occupancy over *non-empty* cells and the
    fraction of singleton cells (cells revealing that exactly one point
    lies in a bin — the closest thing to a leak the histogram permits).
    """
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ValidationError("expected an (n_dims × B) histogram table")
    occupied = counts[counts > 0]
    if occupied.size == 0:
        return {"min_occupancy": 0.0, "median_occupancy": 0.0,
                "singleton_fraction": 0.0}
    return {
        "min_occupancy": float(occupied.min()),
        "median_occupancy": float(np.median(occupied)),
        "singleton_fraction": float(np.mean(occupied == 1)),
    }
