"""The fitted KeyBin2 model.

Everything :class:`KeyBin2Model` holds is histogram-scale: the projection
matrix, the binning range, the cut set, and the occupied-cell table. None
of it references training points, which is why a fitted model is a few KB
and can be broadcast to data sites for in-situ labeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.binning import SpaceRange
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.errors import NotFittedError, ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.keys import bin_indices
from repro.kernels.project import project_points
from repro.util.validation import check_array_2d, check_finite

__all__ = ["KeyBin2Model"]


def _json_sanitize(value):
    """Coerce numpy scalars/arrays inside ``meta`` to plain python.

    ``meta`` is free-form bookkeeping and routinely picks up ``np.int64``
    counters or small arrays; the wire format must stay pure JSON so any
    consumer (including the serve layer's clients) can parse it.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(v) for v in value]
    return value


@dataclass
class KeyBin2Model:
    """Fitted state of one accepted projection.

    Attributes
    ----------
    projection:
        (N × N_rp) projection matrix, or ``None`` for identity (data already
        low-dimensional).
    space:
        Binning range over the *projected* space (all projected dims).
    partition:
        Cut sets at the chosen depth, over the kept dimensions only.
    kept_dims:
        Boolean mask (length N_rp) of dimensions that survived collapsing.
    table:
        Occupied-cell table mapping cell codes to dense labels.
    score:
        Histogram-space CH score of this model.
    depth:
        Chosen bin-tree depth.
    n_points_fit:
        Training points behind the histograms (for window bookkeeping).
    """

    projection: Optional[np.ndarray]
    space: SpaceRange
    partition: PrimaryPartition
    kept_dims: np.ndarray
    table: GlobalClusterTable
    score: float
    depth: int
    n_points_fit: int
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.kept_dims = np.asarray(self.kept_dims, dtype=bool).ravel()
        if self.kept_dims.sum() != self.partition.n_dims:
            raise ValidationError(
                "partition dimensionality must equal number of kept dims"
            )
        if self.space.n_dims != self.kept_dims.size:
            raise ValidationError(
                "space range must cover all projected dimensions"
            )

    @property
    def n_clusters(self) -> int:
        return self.table.n_clusters

    @property
    def n_projected_dims(self) -> int:
        return int(self.kept_dims.size)

    # -- inference -------------------------------------------------------------

    def transform(
        self, x: np.ndarray, engine: Optional[KernelEngine] = None
    ) -> np.ndarray:
        """Project raw points into the model's reduced space."""
        x = check_array_2d(x, "X")
        check_finite(x, "X")
        if self.projection is None:
            if x.shape[1] != self.kept_dims.size:
                raise ValidationError(
                    f"model expects {self.kept_dims.size} features, got {x.shape[1]}"
                )
            return x
        if x.shape[1] != self.projection.shape[0]:
            raise ValidationError(
                f"model expects {self.projection.shape[0]} features, got {x.shape[1]}"
            )
        return project_points(x, self.projection, engine=engine)

    def cell_codes_for(
        self, x: np.ndarray, engine: Optional[KernelEngine] = None
    ) -> np.ndarray:
        """Grid-cell code of every point (the key → cell mapping)."""
        projected = self.transform(x, engine=engine)
        kept = projected[:, self.kept_dims]
        kept_range_min = self.space.r_min[self.kept_dims]
        kept_range_max = self.space.r_max[self.kept_dims]
        bins = bin_indices(
            kept, kept_range_min, kept_range_max, self.partition.depth, engine=engine
        )
        intervals = self.partition.intervals_for(bins)
        return self.partition.cell_codes(intervals)

    def predict(
        self, x: np.ndarray, engine: Optional[KernelEngine] = None
    ) -> np.ndarray:
        """Cluster labels for new points; ``-1`` marks cells unseen in fit."""
        return self.table.lookup(self.cell_codes_for(x, engine=engine))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-python representation (json-serializable)."""
        return {
            "projection": None if self.projection is None else self.projection.tolist(),
            "r_min": self.space.r_min.tolist(),
            "r_max": self.space.r_max.tolist(),
            "depth": self.depth,
            "cuts": [c.tolist() for c in self.partition.cuts],
            "kept_dims": self.kept_dims.tolist(),
            "codes": self.table.codes.tolist(),
            "sizes": None if self.table.sizes is None else self.table.sizes.tolist(),
            # CH scores are legitimately ±inf for degenerate partitions
            # (single cluster, zero within-dispersion), but bare Infinity
            # tokens are not valid JSON — encode non-finite scores as the
            # strings float() itself parses back ("inf", "-inf", "nan").
            "score": self.score if np.isfinite(self.score) else repr(self.score),
            "n_points_fit": self.n_points_fit,
            "meta": _json_sanitize(dict(self.meta)),
        }

    def fingerprint(self) -> str:
        """Short content hash of the model's predictive state.

        Two models with the same fingerprint label every point identically;
        ``meta`` is excluded because it is bookkeeping, not behavior. The
        serve layer stamps responses with this so clients can tell exactly
        which model labeled them across hot-swaps.
        """
        import hashlib
        import json

        d = self.to_dict()
        d.pop("meta", None)
        blob = json.dumps(d, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def save(self, path) -> None:
        """Write the model as JSON (the broadcastable wire format).

        The write is atomic: the JSON goes to a temporary file in the same
        directory, then ``os.replace`` swaps it in, so a server hot-reloading
        from disk can never observe a torn/partial model file. Non-finite
        floats are rejected up front (``allow_nan=False``) — bare ``NaN`` /
        ``Infinity`` tokens are not valid JSON and would poison consumers.
        """
        import json
        import os
        import tempfile
        from pathlib import Path

        try:
            text = json.dumps(self.to_dict(), allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"model is not JSON-serializable (NaN/Infinity or foreign "
                f"type in state): {exc}"
            ) from exc
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "KeyBin2Model":
        """Read a model written by :meth:`save`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "KeyBin2Model":
        projection = None if d["projection"] is None else np.asarray(d["projection"])
        sizes = None if d.get("sizes") is None else np.asarray(d["sizes"], dtype=np.int64)
        return cls(
            projection=projection,
            space=SpaceRange(np.asarray(d["r_min"]), np.asarray(d["r_max"])),
            partition=PrimaryPartition(
                int(d["depth"]), [np.asarray(c, dtype=np.int64) for c in d["cuts"]]
            ),
            kept_dims=np.asarray(d["kept_dims"], dtype=bool),
            table=GlobalClusterTable(np.asarray(d["codes"], dtype=np.int64), sizes),
            score=float(d["score"]),
            depth=int(d["depth"]),
            n_points_fit=int(d["n_points_fit"]),
            meta=dict(d.get("meta", {})),
        )
