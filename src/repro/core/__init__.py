"""KeyBin2 core algorithm (paper §3).

Public entry points:

- :class:`~repro.core.estimator.KeyBin2` — the batch estimator
  (fit / predict / fit_predict),
- :class:`~repro.core.streaming.StreamingKeyBin2` — incremental driver for
  streams and batch sequences,
- :func:`~repro.core.distributed.fit_distributed` /
  :func:`~repro.core.distributed.keybin2_spmd` — SPMD drivers over
  :mod:`repro.comm`,
- :class:`~repro.core.keybin1.KeyBin1` — the original density-threshold
  KeyBin, kept as the ablation baseline.
"""

from __future__ import annotations

from repro.core.projection import (
    target_dimension,
    projection_matrix,
)
from repro.core.binning import SpaceRange, format_key
from repro.core.histogram import HistogramSet
from repro.core.smoothing import moving_average, paper_window, local_slopes
from repro.core.partitioning import find_cuts, CutDiagnostics
from repro.core.collapse import collapse_dimensions, uniformity_statistic
from repro.core.assess import histogram_ch_index
from repro.core.primary import PrimaryPartition, GlobalClusterTable
from repro.core.model import KeyBin2Model
from repro.core.outliers import KeyOutlierDetector
from repro.core.estimator import KeyBin2
from repro.core.keybin1 import KeyBin1
from repro.core.streaming import StreamingKeyBin2
from repro.core.distributed import fit_distributed, keybin2_spmd

__all__ = [
    "target_dimension",
    "projection_matrix",
    "SpaceRange",
    "format_key",
    "HistogramSet",
    "moving_average",
    "paper_window",
    "local_slopes",
    "find_cuts",
    "CutDiagnostics",
    "collapse_dimensions",
    "uniformity_statistic",
    "histogram_ch_index",
    "PrimaryPartition",
    "GlobalClusterTable",
    "KeyBin2Model",
    "KeyOutlierDetector",
    "KeyBin2",
    "KeyBin1",
    "StreamingKeyBin2",
    "fit_distributed",
    "keybin2_spmd",
]
