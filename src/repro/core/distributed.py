"""Distributed (SPMD) KeyBin2 driver (paper §3.5).

Implements the paper's master–worker deployment on top of
:mod:`repro.comm`, with an allreduce/ring alternative. Per bootstrap trial:

1. every rank builds the *same* projection matrix from the shared seed
   (no communication),
2. per-rank projected ranges are merged with an elementwise min/max
   allreduce (2 small vectors),
3. per-rank histograms are consolidated — either gathered at the master,
   merged, partitioned and broadcast (paper's topology), or allreduced so
   every rank partitions the identical global histogram deterministically
   (``"allreduce"``/``"ring"``),
4. occupied-cell tables are unioned (tiny: a few ints per cluster) and the
   global table broadcast, so labels are consistent across ranks,
5. the CH score is computed from the global histogram; the best-scoring
   trial wins on every rank simultaneously (same data ⇒ same decision).

The only payloads proportional to anything are the histograms —
O(N_rp · B) integers per rank per trial — which is the paper's
O(2·K·N_rp·B) total communication claim; ``comm.traffic`` measures it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.base import Communicator, ReduceOp
from repro.comm.ring import ring_allreduce
from repro.comm.spmd import run_spmd
from repro.core.assess import histogram_ch_index
from repro.core.binning import SpaceRange
from repro.core.collapse import collapse_dimensions
from repro.core.model import KeyBin2Model
from repro.core.partitioning import find_cuts
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.core.projection import projection_matrix, target_dimension
from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices, prefix_bins
from repro.kernels.project import project_points
from repro.util.rng import spawn_generators
from repro.util.validation import check_array_2d, check_finite

__all__ = ["keybin2_spmd", "fit_distributed", "DistributedFitResult"]

CONSOLIDATION_MODES = ("master", "allreduce", "ring")


def _merge_ranges(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reduce op for stacked (2 × N) [min; max] bounds."""
    return np.stack([np.minimum(a[0], b[0]), np.maximum(a[1], b[1])])


def _consolidate_histograms(
    comm: Communicator,
    local: Dict[int, np.ndarray],
    depths: Sequence[int],
    mode: str,
) -> Dict[int, np.ndarray]:
    """Return the global (summed) histogram tables on every rank."""
    n_dims = next(iter(local.values())).shape[0]
    buf = np.concatenate([local[d].ravel() for d in depths])
    if mode == "ring":
        total = ring_allreduce(comm, buf, op=ReduceOp.SUM)
    elif mode == "allreduce":
        total = comm.allreduce(buf, op=ReduceOp.SUM)
    elif mode == "master":
        summed = comm.reduce(buf, op=ReduceOp.SUM, root=0)
        total = comm.bcast(summed, root=0)
    else:
        raise ValidationError(f"mode must be one of {CONSOLIDATION_MODES}")
    out: Dict[int, np.ndarray] = {}
    offset = 0
    for d in depths:
        size = n_dims * (1 << d)
        out[d] = total[offset : offset + size].reshape(n_dims, 1 << d)
        offset += size
    return out


def keybin2_spmd(
    comm: Communicator,
    x_local: np.ndarray,
    n_projections: int = 8,
    n_components: Optional[int] = None,
    candidate_depths: Sequence[int] = (3, 4, 5, 6),
    projection: str = "gaussian",
    projection_factor: float = 1.5,
    range_margin: float = 0.05,
    collapse: bool = True,
    uniform_threshold: float = 0.05,
    min_support_bins: int = 3,
    min_cut_prominence: float = 0.10,
    smoother: str = "ma",
    seed: Optional[int] = 0,
    consolidation: str = "master",
    engine: Optional[KernelEngine] = None,
) -> Tuple[np.ndarray, KeyBin2Model]:
    """SPMD KeyBin2: every rank calls this with its local shard.

    Returns ``(local_labels, model)``; the model is identical on all ranks
    and labels are globally consistent (label ``i`` means the same cluster
    everywhere).

    ``seed`` must be a plain integer (identical across ranks) — it is the
    shared source of the projection matrices.
    """
    x_local = check_array_2d(x_local, "x_local", min_rows=1)
    check_finite(x_local, "x_local")
    if consolidation not in CONSOLIDATION_MODES:
        raise ValidationError(f"consolidation must be one of {CONSOLIDATION_MODES}")
    n = x_local.shape[1]
    n_check = comm.allreduce(np.array([n, -n]), op=ReduceOp.MAX)
    if int(n_check[0]) != n or int(-n_check[1]) != n:
        raise ValidationError("all ranks must hold the same number of features")

    depths = tuple(sorted(set(int(d) for d in candidate_depths)))
    deepest = depths[-1]
    rngs = spawn_generators(seed, n_projections)
    m_local = x_local.shape[0]
    m_global = int(comm.allreduce(m_local))

    best: Optional[Dict[str, Any]] = None
    fallback: Optional[Dict[str, Any]] = None

    for trial, rng in enumerate(rngs):
        if projection == "none":
            matrix = None
            projected = x_local
        else:
            n_rp = (
                target_dimension(n, factor=projection_factor)
                if n_components is None
                else int(n_components)
            )
            n_rp = min(max(n_rp, 1), n)
            matrix = projection_matrix(n, n_rp, seed=rng, kind=projection)
            projected = project_points(x_local, matrix, engine=engine)

        # Global range: elementwise min/max allreduce of local bounds.
        local_bounds = SpaceRange.from_data(projected, margin=range_margin).to_array()
        global_bounds = comm.allreduce(local_bounds, op=_merge_ranges)
        space = SpaceRange.from_array(global_bounds)

        deep_bins = bin_indices(projected, space.r_min, space.r_max, deepest,
                                engine=engine)
        local_hist: Dict[int, np.ndarray] = {}
        for d in depths:
            b = deep_bins if d == deepest else prefix_bins(deep_bins, deepest, d)
            local_hist[d] = accumulate_histogram(b, 1 << d, engine=engine)

        global_hist = _consolidate_histograms(comm, local_hist, depths, consolidation)

        if collapse:
            kept = collapse_dimensions(
                global_hist[deepest],
                uniform_threshold=uniform_threshold,
                min_support_bins=min_support_bins,
            )
        else:
            kept = np.ones(projected.shape[1], dtype=bool)

        for d in depths:
            counts_kept = global_hist[d][kept]
            if consolidation == "master":
                # Paper topology: the master partitions, workers receive cuts.
                if comm.rank == 0:
                    cuts = [
                        find_cuts(counts_kept[j], n_points=m_global,
                                  min_prominence=min_cut_prominence,
                                  smoother=smoother)
                        for j in range(counts_kept.shape[0])
                    ]
                else:
                    cuts = None
                cuts = comm.bcast(cuts, root=0)
            else:
                # Identical global histograms ⇒ identical cuts everywhere.
                cuts = [
                    find_cuts(counts_kept[j], n_points=m_global,
                              min_prominence=min_cut_prominence,
                              smoother=smoother)
                    for j in range(counts_kept.shape[0])
                ]
            partition = PrimaryPartition(d, cuts)
            bins_d = deep_bins if d == deepest else prefix_bins(deep_bins, deepest, d)
            intervals = partition.intervals_for(bins_d[:, kept])
            codes = partition.cell_codes(intervals)
            local_table = GlobalClusterTable.from_points(codes)

            # Union of occupied cells across ranks (tiny payload).
            tables = comm.gather((local_table.codes, local_table.sizes), root=0)
            if comm.rank == 0:
                merged = local_table
                for peer_codes, peer_sizes in tables[1:]:
                    merged = merged.merge(GlobalClusterTable(peer_codes, peer_sizes))
                payload = (merged.codes, merged.sizes)
            else:
                payload = None
            g_codes, g_sizes = comm.bcast(payload, root=0)
            table = GlobalClusterTable(g_codes, g_sizes)
            labels = table.lookup(codes)

            cell_intervals = partition.decode_cells(table.codes)
            score = histogram_ch_index(counts_kept, partition.cuts, cell_intervals)
            candidate = {
                "model": KeyBin2Model(
                    projection=matrix,
                    space=space,
                    partition=partition,
                    kept_dims=kept,
                    table=table,
                    score=score,
                    depth=d,
                    n_points_fit=m_global,
                    meta={"trial": trial, "consolidation": consolidation,
                          "ranks": comm.size},
                ),
                "labels": labels,
                "score": score,
                "n_clusters": table.n_clusters,
            }
            if candidate["n_clusters"] >= 2:
                if best is None or candidate["score"] > best["score"]:
                    best = candidate
            elif fallback is None:
                fallback = candidate

    chosen = best if best is not None else fallback
    assert chosen is not None
    return chosen["labels"], chosen["model"]


class DistributedFitResult:
    """Outcome of :func:`fit_distributed`.

    Attributes
    ----------
    labels:
        Per-rank label arrays, in rank order (concatenate for the global
        assignment if shards were contiguous splits).
    model:
        The fitted :class:`~repro.core.model.KeyBin2Model` (identical on
        all ranks; rank 0's copy).
    traffic:
        Per-rank traffic snapshots (messages/bytes sent and received).
    """

    def __init__(self, labels: List[np.ndarray], model: KeyBin2Model,
                 traffic: List[Dict[str, int]]):
        self.labels = labels
        self.model = model
        self.traffic = traffic

    @property
    def n_clusters(self) -> int:
        return self.model.n_clusters

    def concatenated_labels(self) -> np.ndarray:
        return np.concatenate(self.labels)


def _spmd_entry(comm: Communicator, shards: List[np.ndarray], params: Dict[str, Any]):
    labels, model = keybin2_spmd(comm, shards[comm.rank], **params)
    return labels, model.to_dict(), comm.traffic.snapshot()


def fit_distributed(
    shards: Sequence[np.ndarray],
    executor: str = "thread",
    timeout: Optional[float] = 600.0,
    **params: Any,
) -> DistributedFitResult:
    """Fit KeyBin2 over pre-sharded data, one rank per shard.

    Convenience front-end for tests and benchmarks; real deployments call
    :func:`keybin2_spmd` directly from their own SPMD program (e.g. under
    ``mpiexec``).
    """
    shards = [np.asarray(s) for s in shards]
    if not shards:
        raise ValidationError("need at least one shard")
    results = run_spmd(
        _spmd_entry, len(shards), executor=executor,
        args=(list(shards), params), timeout=timeout,
    )
    labels = [r[0] for r in results]
    model = KeyBin2Model.from_dict(results[0][1])
    traffic = [r[2] for r in results]
    return DistributedFitResult(labels, model, traffic)
