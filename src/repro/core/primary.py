"""Primary clusters and the global cluster table (paper §3, step 5).

A *primary cluster* is a maximal run of bins between two cuts along one
dimension — a partial, single-dimension clustering. The cross product of
primary clusters forms the interval grid; the *occupied* cells of that grid
are the global clusters. Points map to cells through their keys alone, so
assignment is embarrassingly parallel and the cell table (a few integers
per cluster) is all that ranks must share to label consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.kernels.labels import intervals_for_bins

__all__ = ["PrimaryPartition", "GlobalClusterTable"]


@dataclass(frozen=True)
class PrimaryPartition:
    """Per-dimension cut sets at a fixed depth.

    Attributes
    ----------
    depth:
        Bin-tree depth the cuts refer to (bins are in ``[0, 2^depth)``).
    cuts:
        One sorted int64 array per kept dimension.
    """

    depth: int
    cuts: tuple

    def __init__(self, depth: int, cuts: Sequence[np.ndarray]):
        if depth < 1:
            raise ValidationError(f"depth must be >= 1, got {depth}")
        n_bins = 1 << depth
        clean: List[np.ndarray] = []
        for j, c in enumerate(cuts):
            arr = np.asarray(c, dtype=np.int64).ravel()
            if arr.size and (arr.min() < 0 or arr.max() >= n_bins - 1):
                raise ValidationError(
                    f"dimension {j}: cuts must lie in [0, {n_bins - 2}]"
                )
            if arr.size and np.any(np.diff(arr) <= 0):
                raise ValidationError(f"dimension {j}: cuts must be strictly increasing")
            clean.append(arr)
        object.__setattr__(self, "depth", int(depth))
        object.__setattr__(self, "cuts", tuple(clean))

    @property
    def n_dims(self) -> int:
        return len(self.cuts)

    @property
    def n_intervals(self) -> np.ndarray:
        """Primary-cluster count per dimension."""
        return np.array([c.size + 1 for c in self.cuts], dtype=np.int64)

    @property
    def n_cells(self) -> int:
        """Size of the full interval grid (occupied or not)."""
        return int(np.prod(self.n_intervals))

    def intervals_for(self, bins: np.ndarray) -> np.ndarray:
        """Map (M × n_dims) bin indices to per-dimension interval ids."""
        bins = np.asarray(bins)
        if bins.ndim != 2 or bins.shape[1] != self.n_dims:
            raise ValidationError(
                f"expected (M × {self.n_dims}) bins, got {bins.shape}"
            )
        return intervals_for_bins(bins, self.cuts)

    def cell_codes(self, intervals: np.ndarray) -> np.ndarray:
        """Mixed-radix code of each point's grid cell."""
        radices = self.n_intervals
        code = np.zeros(intervals.shape[0], dtype=np.int64)
        for j in range(self.n_dims):
            code *= radices[j]
            code += intervals[:, j].astype(np.int64)
        return code

    def decode_cells(self, codes: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`cell_codes`: (|codes| × n_dims) interval ids."""
        radices = self.n_intervals
        codes = np.asarray(codes, dtype=np.int64).copy()
        out = np.empty((codes.shape[0], self.n_dims), dtype=np.int64)
        for j in range(self.n_dims - 1, -1, -1):
            out[:, j] = codes % radices[j]
            codes //= radices[j]
        return out


class GlobalClusterTable:
    """Dense labels for the occupied cells of the interval grid.

    The table is the sorted array of occupied cell codes; a point's label is
    the position of its cell code in that array (``-1`` for cells never seen
    during fit — novel regions at predict time).
    """

    def __init__(self, codes: np.ndarray, sizes: Optional[np.ndarray] = None):
        codes = np.asarray(codes, dtype=np.int64).ravel()
        if codes.size and np.any(np.diff(codes) <= 0):
            order = np.argsort(codes)
            codes = codes[order]
            if sizes is not None:
                sizes = np.asarray(sizes, dtype=np.int64).ravel()[order]
            if np.any(np.diff(codes) == 0):
                raise ValidationError("cell codes must be unique")
        self.codes = codes
        self.sizes = (
            None if sizes is None else np.asarray(sizes, dtype=np.int64).ravel()
        )
        if self.sizes is not None and self.sizes.shape != self.codes.shape:
            raise ValidationError("sizes must align with codes")

    @classmethod
    def from_points(cls, codes_of_points: np.ndarray) -> "GlobalClusterTable":
        """Build the table from the per-point cell codes seen during fit."""
        codes, sizes = np.unique(np.asarray(codes_of_points, dtype=np.int64),
                                 return_counts=True)
        return cls(codes, sizes)

    @property
    def n_clusters(self) -> int:
        return int(self.codes.size)

    def lookup(self, codes_of_points: np.ndarray) -> np.ndarray:
        """Labels in ``[0, n_clusters)``; ``-1`` marks unseen cells."""
        pts = np.asarray(codes_of_points, dtype=np.int64)
        if self.codes.size == 0:
            return np.full(pts.shape, -1, dtype=np.int64)
        pos = np.searchsorted(self.codes, pts)
        pos_clipped = np.clip(pos, 0, self.codes.size - 1)
        hit = self.codes[pos_clipped] == pts
        labels = np.where(hit, pos_clipped, -1)
        return labels.astype(np.int64)

    def merge(self, other: "GlobalClusterTable") -> "GlobalClusterTable":
        """Union of two tables (distributed fit: cells seen on any rank)."""
        if other.n_clusters == 0:
            return GlobalClusterTable(self.codes.copy(),
                                      None if self.sizes is None else self.sizes.copy())
        all_codes = np.concatenate([self.codes, other.codes])
        if self.sizes is not None and other.sizes is not None:
            all_sizes = np.concatenate([self.sizes, other.sizes])
            codes, inverse = np.unique(all_codes, return_inverse=True)
            sizes = np.zeros(codes.size, dtype=np.int64)
            np.add.at(sizes, inverse, all_sizes)
            return GlobalClusterTable(codes, sizes)
        codes = np.unique(all_codes)
        return GlobalClusterTable(codes)
