"""Histogram partitioning via discrete optimization (paper §3.2).

This replaces KeyBin1's density-threshold heuristic. Per dimension:

1. smooth the merged histogram (moving average, window
   ``w = |log2(M)|``),
2. take the local-regression first derivative; sign changes −→+ mark
   valleys (candidate cuts) and +→− mark modes,
3. the second derivative confirms genuine inflection structure around a
   valley (a flat plateau produces no inflection pair and is rejected),
4. score each candidate valley by its *prominence* — how far the density
   drops below the smaller of its neighbouring modes — and keep cuts whose
   prominence clears a relative threshold. This is the discrete
   optimization: prominent valleys are exactly the cut set that maximizes
   between-partition mass separation while minimizing within-partition
   spread for a fixed number of cuts, and the bootstrap layer (§3.3)
   compares different cut cardinalities through the CH index.

Runs of empty bins between occupied regions are always cuts: disconnected
support can never belong to one cluster in the key space.

A cut at position ``c`` separates bins ``<= c`` from bins ``> c``, matching
``searchsorted(cuts, bin, side="left")`` downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.smoothing import local_slopes, moving_average, paper_window
from repro.errors import ValidationError

__all__ = ["CutDiagnostics", "find_cuts", "kde_density"]


@dataclass
class CutDiagnostics:
    """Intermediate artifacts of the cut search (for tests, plots, docs)."""

    smoothed: np.ndarray
    slopes: np.ndarray
    candidate_valleys: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    prominences: np.ndarray = field(default_factory=lambda: np.empty(0))
    modes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    gap_cuts: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))


def _sign_changes(slopes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Indices where the slope crosses −→+ (valleys) and +→− (modes)."""
    sign = np.sign(slopes)
    # Treat exact zeros as continuing the previous sign so plateaus do not
    # spray spurious crossings.
    for i in range(1, sign.size):
        if sign[i] == 0:
            sign[i] = sign[i - 1]
    change = np.flatnonzero(sign[1:] != sign[:-1]) + 1
    valleys = change[sign[change] > 0]
    modes = change[sign[change] < 0]
    return valleys.astype(np.int64), modes.astype(np.int64)


def _prominence(
    smoothed: np.ndarray, valley: int, modes: np.ndarray
) -> float:
    """Depth of a valley below the smaller of its flanking peaks."""
    left_modes = modes[modes < valley]
    right_modes = modes[modes > valley]
    left_peak = smoothed[left_modes[-1]] if left_modes.size else smoothed[:valley + 1].max()
    right_peak = smoothed[right_modes[0]] if right_modes.size else smoothed[valley:].max()
    return float(min(left_peak, right_peak) - smoothed[valley])


def _gap_cuts(counts: np.ndarray, min_gap: int) -> np.ndarray:
    """Cut inside every run of >= min_gap empty bins separating support."""
    occupied = np.flatnonzero(counts > 0)
    if occupied.size < 2:
        return np.empty(0, dtype=np.int64)
    gaps = np.diff(occupied)
    big = np.flatnonzero(gaps > min_gap)
    # Cut at the middle of the empty run.
    return (occupied[big] + gaps[big] // 2).astype(np.int64)


def kde_density(counts: np.ndarray, bandwidth: Optional[float] = None) -> np.ndarray:
    """Gaussian-KDE smoothed density evaluated at every bin centre.

    The alternative smoother §3.2 compares against: treat bin centres as a
    weighted sample and evaluate a Gaussian kernel density estimate back on
    the bin grid. Bandwidth defaults to Scott's rule on the weighted
    sample. Returns a curve scaled to the histogram's total mass so it is
    directly comparable to the moving-average smoother.
    """
    counts = np.asarray(counts, dtype=np.float64).ravel()
    total = counts.sum()
    if counts.size < 2 or total <= 0:
        return counts.copy()
    centers = np.arange(counts.size, dtype=np.float64)
    mean = float(np.sum(centers * counts) / total)
    var = float(np.sum((centers - mean) ** 2 * counts) / total)
    if bandwidth is None:
        sigma = np.sqrt(max(var, 1e-12))
        # Silverman's rule with the robust scale (min of sigma and IQR/1.34)
        # and the effective sample size of the weights; the robust scale
        # keeps multimodal histograms from inflating the bandwidth.
        cdf = np.cumsum(counts) / total
        q1 = float(np.searchsorted(cdf, 0.25))
        q3 = float(np.searchsorted(cdf, 0.75))
        robust = min(sigma, max((q3 - q1) / 1.34, 1e-6))
        neff = total ** 2 / max(np.sum(counts**2), 1.0)
        bandwidth = max(0.9 * robust * neff ** (-1.0 / 5.0), 0.5)
    # O(B²) kernel evaluation — B is O(log²M), so this stays tiny, but it
    # is still measurably slower than the O(B·w) moving average (the
    # paper's argument for the simpler smoother).
    diff = centers[:, None] - centers[None, :]
    kernel = np.exp(-0.5 * (diff / bandwidth) ** 2)
    density = kernel @ counts
    density *= total / max(density.sum(), 1e-300)
    return density


def find_cuts(
    counts: np.ndarray,
    n_points: Optional[int] = None,
    window: Optional[int] = None,
    min_prominence: float = 0.10,
    min_gap: Optional[int] = None,
    smoother: str = "ma",
    return_diagnostics: bool = False,
):
    """Find partition cuts in a single dimension's merged histogram.

    Parameters
    ----------
    counts:
        1-D bin counts for one dimension.
    n_points:
        Total points behind the histogram; sets the paper window when
        ``window`` is not given. Defaults to ``counts.sum()``.
    window:
        Smoothing / regression window override.
    min_prominence:
        Relative prominence threshold: a valley survives when its depth
        below the smaller flanking mode exceeds
        ``min_prominence · max(smoothed)``.
    min_gap:
        Empty-bin run length that forces a cut regardless of prominence.
        Defaults to the smoothing window (shorter runs are smoothing
        artifacts).
    smoother:
        ``"ma"`` — the paper's moving-average + local regression (default);
        ``"kde"`` — Gaussian kernel density estimation (the alternative
        §3.2 benchmarks against; similar cuts, higher cost).
    return_diagnostics:
        Also return a :class:`CutDiagnostics`.

    Returns
    -------
    Sorted int64 array of cut positions (possibly empty → one cluster),
    optionally with diagnostics.
    """
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if counts.size < 1:
        raise ValidationError("counts must be non-empty")
    if np.any(counts < 0):
        raise ValidationError("counts must be non-negative")
    if not (0.0 <= min_prominence <= 1.0):
        raise ValidationError(f"min_prominence must be in [0, 1], got {min_prominence}")
    if smoother not in ("ma", "kde"):
        raise ValidationError(f"smoother must be 'ma' or 'kde', got {smoother!r}")
    total = counts.sum()
    if n_points is None:
        n_points = int(max(total, 1))
    if window is None:
        window = paper_window(n_points, n_bins=counts.size)

    if smoother == "kde":
        smoothed = kde_density(counts)
    else:
        smoothed = moving_average(counts, window)
    slopes = local_slopes(smoothed, window)
    diag = CutDiagnostics(smoothed=smoothed, slopes=slopes)

    cuts: List[int] = []
    if total > 0 and counts.size >= 3:
        valleys, modes = _sign_changes(slopes)
        diag.candidate_valleys = valleys
        diag.modes = modes
        peak = smoothed.max()
        if peak > 0 and valleys.size:
            proms = np.array([_prominence(smoothed, int(v), modes) for v in valleys])
            diag.prominences = proms
            keep = proms >= min_prominence * peak
            cuts.extend(int(v) for v in valleys[keep])
        gap = window if min_gap is None else min_gap
        gcuts = _gap_cuts(counts, int(gap))
        diag.gap_cuts = gcuts
        cuts.extend(int(g) for g in gcuts)

    # Deduplicate nearby cuts: two cuts closer than the window describe the
    # same valley once smoothing noise is accounted for.
    unique_sorted = sorted(set(cuts))
    deduped: List[int] = []
    for c in unique_sorted:
        if not deduped or c - deduped[-1] >= max(1, window):
            deduped.append(c)
    # A cut at/after the last bin separates nothing.
    result = np.array([c for c in deduped if 0 <= c < counts.size - 1], dtype=np.int64)
    if return_diagnostics:
        return result, diag
    return result
