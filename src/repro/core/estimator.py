"""The KeyBin2 estimator (paper §3, steps 1–6).

Non-parametric: the number of clusters is *discovered*, not supplied. The
bootstrap loop draws ``n_projections`` random projections; each trial bins
the projected data hierarchically, collapses uninformative dimensions,
finds cuts at every candidate depth, and scores the induced clustering with
the histogram-space Calinski–Harabasz index. The best (projection, depth)
pair becomes the fitted model.

Example
-------
>>> from repro import KeyBin2
>>> from repro.data import gaussian_mixture
>>> X, y = gaussian_mixture(n_points=2000, n_dims=16, n_clusters=4, seed=0)
>>> kb = KeyBin2(seed=0).fit(X)
>>> kb.n_clusters_ >= 4
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.assess import histogram_ch_index
from repro.core.binning import SpaceRange
from repro.core.collapse import collapse_dimensions
from repro.core.model import KeyBin2Model
from repro.core.partitioning import find_cuts
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.core.projection import projection_matrix, target_dimension, PROJECTION_KINDS
from repro.errors import NotFittedError, ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices, prefix_bins
from repro.kernels.project import project_points
from repro.util.rng import SeedLike, spawn_generators
from repro.util.validation import check_array_2d, check_finite

__all__ = ["KeyBin2", "TrialResult"]


@dataclass
class TrialResult:
    """Summary of one bootstrap trial (one random projection)."""

    trial: int
    depth: int
    score: float
    n_clusters: int
    n_kept_dims: int


class KeyBin2:
    """Key-based binning clusterer with random projections and bootstrapping.

    Parameters
    ----------
    n_projections:
        Bootstrap trials ``t`` — how many random projections to assess.
    n_components:
        Projected dimensionality ``N_rp``. ``None`` applies the paper rule
        ``1.5·log(N)``.
    candidate_depths:
        Bin-tree depths to evaluate; the paper observes depths 2–4 suffice
        for convex problems. Default ``(3, 4, 5, 6)``. The string
        ``"auto"`` applies the paper's bin-count rule ``B = log2²(M)``:
        the deepest candidate is ``ceil(log2(log2²(M)))`` with the three
        shallower depths below it (resolved at fit time from M).
    projection:
        ``"gaussian"`` | ``"sparse"`` | ``"orthonormal"`` | ``"none"``.
        ``"none"`` clusters in the original space (KeyBin1-style; only
        sensible for small N).
    range_margin:
        Fractional padding applied to the measured projected range.
    collapse:
        Whether to drop uninformative dimensions (KS test, §3.1).
    uniform_threshold, min_support_bins:
        Collapse-test knobs, see :func:`repro.core.collapse.collapse_dimensions`.
    min_cut_prominence:
        Relative valley prominence for a cut, see
        :func:`repro.core.partitioning.find_cuts`.
    min_cluster_fraction:
        Cells holding less than this fraction of points are dropped from the
        cluster table; their points become noise (``-1``). ``0`` keeps every
        occupied cell (the paper's behaviour — it reports extra small
        clusters rather than hiding them).
    smoother:
        Histogram smoother for the partitioner: ``"ma"`` (paper's moving
        average + local regression) or ``"kde"`` (Gaussian KDE — the
        costlier alternative §3.2 benchmarks against).
    simultaneous_projections:
        Apply §3.4's optimization: stack all bootstrap projection matrices
        into a single GEMM so the data is read once instead of ``t`` times.
        Identical results, better throughput for large ``M``.
    seed:
        Seed / Generator for reproducibility.
    engine:
        Optional :class:`~repro.kernels.engine.KernelEngine` (chunked
        execution); default processes each array in one launch.

    Attributes (after fit)
    ----------------------
    model_:            the accepted :class:`~repro.core.model.KeyBin2Model`
    labels_:           training labels (−1 = dropped tiny cell)
    n_clusters_:       cluster count of the accepted model
    score_:            its histogram-space CH score
    trials_:           per-trial :class:`TrialResult` list
    n_features_in_:    original dimensionality
    """

    def __init__(
        self,
        n_projections: int = 8,
        n_components: Optional[int] = None,
        candidate_depths: Sequence[int] = (3, 4, 5, 6),
        projection: str = "gaussian",
        projection_factor: float = 1.5,
        range_margin: float = 0.05,
        collapse: bool = True,
        uniform_threshold: float = 0.05,
        min_support_bins: int = 3,
        min_cut_prominence: float = 0.10,
        min_cluster_fraction: float = 0.0,
        smoother: str = "ma",
        simultaneous_projections: bool = False,
        seed: SeedLike = None,
        engine: Optional[KernelEngine] = None,
    ):
        if projection not in PROJECTION_KINDS + ("none",):
            raise ValidationError(
                f"projection must be one of {PROJECTION_KINDS + ('none',)}"
            )
        if smoother not in ("ma", "kde"):
            raise ValidationError("smoother must be 'ma' or 'kde'")
        if n_projections < 1:
            raise ValidationError("n_projections must be >= 1")
        if not (0.0 <= min_cluster_fraction < 1.0):
            raise ValidationError("min_cluster_fraction must be in [0, 1)")
        self.n_projections = int(n_projections)
        self.n_components = n_components
        if isinstance(candidate_depths, str):
            if candidate_depths != "auto":
                raise ValidationError(
                    "candidate_depths must be a depth sequence or 'auto'"
                )
            self.candidate_depths = "auto"
        else:
            if not candidate_depths:
                raise ValidationError("candidate_depths must be non-empty")
            self.candidate_depths = tuple(
                sorted(set(int(d) for d in candidate_depths))
            )
        self.projection = projection
        self.projection_factor = float(projection_factor)
        self.range_margin = float(range_margin)
        self.collapse = bool(collapse)
        self.uniform_threshold = float(uniform_threshold)
        self.min_support_bins = int(min_support_bins)
        self.min_cut_prominence = float(min_cut_prominence)
        self.min_cluster_fraction = float(min_cluster_fraction)
        self.smoother = smoother
        self.simultaneous_projections = bool(simultaneous_projections)
        self.seed = seed
        self.engine = engine

        self.model_: Optional[KeyBin2Model] = None
        self.labels_: Optional[np.ndarray] = None
        self.trials_: List[TrialResult] = []

    # -- fitting -----------------------------------------------------------------

    def fit(self, x: np.ndarray) -> "KeyBin2":
        """Learn a clustering of ``x`` (M × N)."""
        x = check_array_2d(x, "X", min_rows=2)
        check_finite(x, "X")
        m, n = x.shape
        self.n_features_in_ = n
        self._resolved_depths = resolve_depths(self.candidate_depths, m)
        rngs = spawn_generators(self.seed, self.n_projections)

        best: Optional[Dict[str, Any]] = None
        fallback: Optional[Dict[str, Any]] = None
        self.trials_ = []

        precomputed = self._project_all_trials(x, rngs)

        for t, rng in enumerate(rngs):
            outcome = self._run_trial(
                x, t, rng,
                precomputed=None if precomputed is None else precomputed[t],
            )
            self.trials_.append(
                TrialResult(
                    trial=t,
                    depth=outcome["depth"],
                    score=outcome["score"],
                    n_clusters=outcome["n_clusters"],
                    n_kept_dims=outcome["n_kept_dims"],
                )
            )
            if outcome["n_clusters"] >= 2:
                if best is None or outcome["score"] > best["score"]:
                    best = outcome
            elif fallback is None:
                fallback = outcome

        chosen = best if best is not None else fallback
        assert chosen is not None  # n_projections >= 1 guarantees a trial ran
        self.model_ = chosen["model"]
        self.labels_ = chosen["labels"]
        self.score_ = chosen["score"]
        self.n_clusters_ = chosen["n_clusters"]
        return self

    def _target_components(self, n: int) -> int:
        n_rp = (
            target_dimension(n, factor=self.projection_factor)
            if self.n_components is None
            else int(self.n_components)
        )
        return min(max(n_rp, 1), n)

    def _project_all_trials(self, x: np.ndarray, rngs) -> Optional[list]:
        """§3.4's optimization: stack all trial matrices into one GEMM.

        One (N × t·N_rp) multiplication replaces t separate projections —
        the data is read once instead of t times. Returns a per-trial list
        of ``(matrix, projected)`` pairs, or ``None`` when disabled.
        """
        if not self.simultaneous_projections or self.projection == "none":
            return None
        n = x.shape[1]
        n_rp = self._target_components(n)
        matrices = [
            projection_matrix(n, n_rp, seed=rng, kind=self.projection)
            for rng in rngs
        ]
        stacked = np.hstack(matrices)
        projected_all = project_points(x, stacked, engine=self.engine)
        return [
            (matrices[t], projected_all[:, t * n_rp : (t + 1) * n_rp])
            for t in range(len(rngs))
        ]

    def _run_trial(
        self, x: np.ndarray, trial: int, rng, precomputed=None
    ) -> Dict[str, Any]:
        """One bootstrap trial: project, bin, collapse, cut, score."""
        m, n = x.shape
        if precomputed is not None:
            matrix, projected = precomputed
        elif self.projection == "none":
            matrix = None
            projected = x
        else:
            n_rp = self._target_components(n)
            matrix = projection_matrix(n, n_rp, seed=rng, kind=self.projection)
            projected = project_points(x, matrix, engine=self.engine)

        space = SpaceRange.from_data(projected, margin=self.range_margin)
        depths = self._resolved_depths
        deepest = depths[-1]
        deep_bins = bin_indices(
            projected, space.r_min, space.r_max, deepest, engine=self.engine
        )

        # Histograms at every candidate depth from the single deep binning.
        counts_by_depth = {}
        for d in depths:
            b = deep_bins if d == deepest else prefix_bins(deep_bins, deepest, d)
            counts_by_depth[d] = accumulate_histogram(b, 1 << d, engine=self.engine)

        if self.collapse:
            kept = collapse_dimensions(
                counts_by_depth[deepest],
                uniform_threshold=self.uniform_threshold,
                min_support_bins=self.min_support_bins,
            )
        else:
            kept = np.ones(projected.shape[1], dtype=bool)

        best_for_trial: Optional[Dict[str, Any]] = None
        for d in depths:
            counts_kept = counts_by_depth[d][kept]
            cuts = [
                find_cuts(
                    counts_kept[j],
                    n_points=m,
                    min_prominence=self.min_cut_prominence,
                    smoother=self.smoother,
                )
                for j in range(counts_kept.shape[0])
            ]
            partition = PrimaryPartition(d, cuts)
            bins_d = deep_bins if d == deepest else prefix_bins(deep_bins, deepest, d)
            intervals = partition.intervals_for(bins_d[:, kept])
            codes = partition.cell_codes(intervals)
            table = GlobalClusterTable.from_points(codes)
            if self.min_cluster_fraction > 0.0 and table.n_clusters > 1:
                min_size = int(np.ceil(self.min_cluster_fraction * m))
                keep_cells = table.sizes >= min_size
                if keep_cells.any():
                    table = GlobalClusterTable(
                        table.codes[keep_cells], table.sizes[keep_cells]
                    )
            labels = table.lookup(codes)
            cell_intervals = partition.decode_cells(table.codes)
            score = histogram_ch_index(counts_kept, partition.cuts, cell_intervals)
            candidate = {
                "model": KeyBin2Model(
                    projection=matrix,
                    space=space,
                    partition=partition,
                    kept_dims=kept,
                    table=table,
                    score=score,
                    depth=d,
                    n_points_fit=m,
                    meta={"trial": trial},
                ),
                "labels": labels,
                "score": score,
                "depth": d,
                "n_clusters": table.n_clusters,
                "n_kept_dims": int(kept.sum()),
            }
            if (
                best_for_trial is None
                or _score_key(candidate) > _score_key(best_for_trial)
            ):
                best_for_trial = candidate
        assert best_for_trial is not None
        return best_for_trial

    # -- inference ------------------------------------------------------------------

    def _require_fitted(self) -> KeyBin2Model:
        if self.model_ is None:
            raise NotFittedError("KeyBin2 instance is not fitted; call fit() first")
        return self.model_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Labels for new points under the fitted model (−1 = unseen cell)."""
        return self._require_fitted().predict(x, engine=self.engine)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the training labels."""
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_


def resolve_depths(candidate_depths, n_points: int) -> tuple:
    """Resolve a depth specification against the data size.

    ``"auto"`` applies the paper's bin-count rule ``B = log2²(M)``: the
    deepest candidate is ``ceil(log2(log2²(M)))`` (clamped to [3, 12]),
    with three shallower depths below it. Sequences pass through.
    """
    if candidate_depths == "auto":
        import math

        log2m = math.log2(max(n_points, 4))
        deepest = int(min(max(math.ceil(math.log2(log2m ** 2)), 3), 12))
        shallowest = max(2, deepest - 3)
        return tuple(range(shallowest, deepest + 1))
    return tuple(candidate_depths)


def _score_key(candidate: Dict[str, Any]) -> tuple:
    """Ordering for trial candidates: multi-cluster beats single-cluster,
    then higher CH score wins."""
    multi = candidate["n_clusters"] >= 2
    return (multi, candidate["score"])
