"""Histogram-space Calinski–Harabasz index (paper §3.3, eqs. 2a–2c).

Rates a candidate clustering (a cut set over the histogram space, plus the
occupied cells of the induced interval grid) using only bin keys and bin
densities — never point coordinates — so the assessment cost is O(B) per
dimension regardless of dataset size. This is what lets the bootstrap over
random projections pick the most separable model cheaply.

Definitions (following the paper):

* a *cluster* ``C_q`` is an occupied cell of the interval grid; its extent
  along dimension ``j`` is a contiguous bin range,
* the cluster centroid ``c_q[j]`` is the modal bin of the (marginal)
  histogram restricted to that range,
* the dataset centre ``c[j]`` is the 50th-percentile bin of the full
  marginal histogram,
* within-dispersion ``W_Q`` (eq. 2b) sums density-weighted squared bin
  offsets from ``c_q``, and between-dispersion ``B_Q`` (eq. 2c) sums
  squared centroid offsets from ``c`` weighted by cluster mass,
* the index (eq. 2a) is ``(B_Q/W_Q) · (|Bins|−|Q|)/(|Q|−1) · log2(|Q|−1)``.

Deviation note: the paper's trailing ``log2(|Q|−1)`` factor is exactly zero
for two-cluster models (log2 1 = 0), which would make every 2-cluster
partition score 0 regardless of quality. We use ``max(log2(|Q|−1), 1)`` so
2-cluster models remain comparable; for |Q| ≥ 3 this matches the paper.
Single-cluster models score ``-inf`` (nothing to rate).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["histogram_ch_index", "marginal_percentile_bin", "interval_stats"]


def marginal_percentile_bin(counts: np.ndarray, percentile: float = 50.0) -> int:
    """Bin index of the given mass percentile of a 1-D histogram."""
    counts = np.asarray(counts, dtype=np.float64).ravel()
    total = counts.sum()
    if total <= 0:
        return counts.size // 2
    target = total * percentile / 100.0
    return int(np.searchsorted(np.cumsum(counts), target))


def interval_stats(
    counts: np.ndarray, cuts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-interval (mode bin, mass, within-dispersion) for one dimension.

    ``cuts`` partitions bins into ``len(cuts)+1`` intervals; interval ``i``
    spans bins ``(cuts[i-1], cuts[i]]`` in searchsorted-right convention.
    """
    counts = np.asarray(counts, dtype=np.float64).ravel()
    cuts = np.asarray(cuts, dtype=np.int64).ravel()
    boundaries = np.concatenate([[-1], cuts, [counts.size - 1]])
    n_intervals = boundaries.size - 1
    modes = np.empty(n_intervals, dtype=np.int64)
    masses = np.empty(n_intervals, dtype=np.float64)
    within = np.empty(n_intervals, dtype=np.float64)
    bin_ids = np.arange(counts.size, dtype=np.float64)
    for i in range(n_intervals):
        lo = int(boundaries[i]) + 1
        hi = int(boundaries[i + 1]) + 1
        seg = counts[lo:hi]
        masses[i] = seg.sum()
        if masses[i] > 0:
            mode = lo + int(np.argmax(seg))
        else:
            mode = (lo + hi - 1) // 2
        modes[i] = mode
        within[i] = float(np.sum((bin_ids[lo:hi] - mode) ** 2 * seg))
    return modes, masses, within


def histogram_ch_index(
    counts: np.ndarray,
    cuts: Sequence[np.ndarray],
    cell_intervals: np.ndarray,
    paper_exact: bool = False,
) -> float:
    """Calinski–Harabasz score of a cut set on the histogram space.

    Parameters
    ----------
    counts:
        (n_dims × B) consolidated histogram at the working depth (kept
        dimensions only).
    cuts:
        Per-dimension sorted cut arrays (same convention as
        :func:`repro.core.partitioning.find_cuts`).
    cell_intervals:
        (|Q| × n_dims) integer array: for each occupied cell (cluster), its
        interval index along every dimension. Produced during assignment or
        gathered from ranks — tiny either way.
    paper_exact:
        Use the paper's literal ``log2(|Q|−1)`` factor (zero at |Q| = 2)
        instead of the guarded variant.

    Returns
    -------
    The score; ``-inf`` when |Q| < 2 or the within-dispersion is zero in a
    degenerate way that makes the ratio meaningless.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValidationError("counts must be (n_dims × B)")
    n_dims, n_bins = counts.shape
    if len(cuts) != n_dims:
        raise ValidationError(f"need one cut array per dimension ({n_dims})")
    cells = np.asarray(cell_intervals, dtype=np.int64)
    if cells.ndim != 2 or cells.shape[1] != n_dims:
        raise ValidationError("cell_intervals must be (|Q| × n_dims)")
    n_clusters = cells.shape[0]
    if n_clusters < 2:
        return float("-inf")

    w_q = 0.0
    b_q = 0.0
    for j in range(n_dims):
        modes, masses, within = interval_stats(counts[j], np.asarray(cuts[j]))
        centre = marginal_percentile_bin(counts[j], 50.0)
        idx = cells[:, j]
        if np.any(idx < 0) or np.any(idx >= modes.size):
            raise ValidationError("cell interval index out of range")
        w_q += float(np.sum(within[idx]))
        b_q += float(np.sum((modes[idx] - centre) ** 2 * masses[idx]))

    if w_q <= 0.0:
        # Perfectly tight clusters: infinitely good separation unless the
        # between term is also zero (all mass in one spot).
        return float("inf") if b_q > 0 else float("-inf")

    total_bins = n_dims * n_bins
    shape_factor = (total_bins - n_clusters) / (n_clusters - 1)
    if n_clusters > 2:
        log_factor = math.log2(n_clusters - 1)
    else:  # n_clusters == 2
        log_factor = 0.0 if paper_exact else 1.0
    return (b_q / w_q) * shape_factor * log_factor
