"""Distribution-drift detection and automatic re-projection response.

In-situ streams are open-world: the metastable basin a protein run starts
in says nothing about the transition it ends in. Adaptive binning
(:mod:`repro.core.adaptive`) keeps the *grid* honest when the range
drifts; this module keeps the *models* honest when the shape of the
distribution drifts inside the grid.

Detection — :class:`WindowDriftDetector`
    A reference/current pair of histogram windows per projection, in the
    spirit of xStream's windowed density comparison: each ``partial_fit``
    batch folds its deepest-depth histogram into the *current* window,
    and once the current window has seen ``window`` rows the detector
    scores the divergence between the normalized reference and current
    windows, then swaps (reference ← current, current ← 0). The score is
    the maximum over projected dimensions of the per-dimension total
    variation distance — TV is bounded in [0, 1], zero for identical
    distributions, robust to empty bins (no log ratios), and cheap
    (one pass over ``n_dims × 2^depth`` counts).

Response — :class:`DriftResponder`
    Detection alone is a metric; the response loop closes it: when any
    projection's latest score crosses the threshold, the responder calls
    ``skb.refresh(publish_to=...)`` so the collapse/cut/score pipeline
    re-derives cluster models from the post-drift histograms, then
    invokes an optional ``publish`` callable — in a fleet deployment, a
    router ``reload`` request pointing at the freshly saved artifact,
    which rides the existing staged-rollout path (canary → staged →
    complete) so a drift response is never a cliff-edge swap.
    A cooldown (measured in detector swaps) keeps one long transition
    from triggering a republish storm.

Both windows live at the deepest candidate depth and are **rebinned**
through :meth:`WindowDriftDetector.rebin` whenever the adaptive grid
widens, so a range-growth event does not masquerade as shape drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import ValidationError

__all__ = ["WindowDriftDetector", "DriftResponder", "DriftEvent", "tv_distance"]


def tv_distance(p_counts: np.ndarray, q_counts: np.ndarray) -> float:
    """Total variation distance between two count vectors.

    Both inputs are raw (unnormalized) non-negative counts over the same
    bins; each is normalized by its own mass. An empty vector is treated
    as indistinguishable from anything (distance 0) — a window that saw
    no rows carries no evidence of drift.
    """
    p = np.asarray(p_counts, dtype=np.float64).ravel()
    q = np.asarray(q_counts, dtype=np.float64).ravel()
    if p.shape != q.shape:
        raise ValidationError("tv_distance needs equal-length count vectors")
    ps, qs = p.sum(), q.sum()
    if ps <= 0 or qs <= 0:
        return 0.0
    return float(0.5 * np.abs(p / ps - q / qs).sum())


class WindowDriftDetector:
    """Reference/current histogram-window divergence scorer for one
    projection state.

    Parameters
    ----------
    n_dims, n_bins:
        Shape of the deepest-depth marginal histogram this detector is
        fed: ``n_dims`` projected dimensions × ``n_bins = 2^deepest``
        bins each.
    window:
        Number of rows a current window must absorb before it is scored
        against the reference and swapped in as the new reference.
    threshold:
        Score at or above which :attr:`drifted` reports True for the
        most recent completed window. Stored here (rather than only in
        the responder) so checkpoints carry the operating point.
    """

    def __init__(
        self, n_dims: int, n_bins: int, window: int, threshold: float = 0.25
    ) -> None:
        if n_dims < 1 or n_bins < 2:
            raise ValidationError("WindowDriftDetector needs n_dims >= 1, n_bins >= 2")
        if window < 1:
            raise ValidationError(f"drift window must be >= 1 row, got {window}")
        if not (0.0 < threshold <= 1.0):
            raise ValidationError(
                f"drift threshold must be in (0, 1], got {threshold} (TV is bounded by 1)"
            )
        self.n_dims = int(n_dims)
        self.n_bins = int(n_bins)
        self.window = int(window)
        self.threshold = float(threshold)
        self.ref = np.zeros((self.n_dims, self.n_bins), dtype=np.int64)
        self.cur = np.zeros((self.n_dims, self.n_bins), dtype=np.int64)
        self.ref_count = 0
        self.cur_count = 0
        #: Score of the most recently completed window; None before the
        #: first reference/current pair exists.
        self.last_score: Optional[float] = None
        #: Monotone count of completed (scored) windows — the responder's
        #: cooldown clock.
        self.swaps = 0

    def update(self, batch_hist: np.ndarray, n_rows: int) -> Optional[float]:
        """Fold one batch's deepest-depth histogram into the current window.

        Returns the divergence score when this batch *completes* a
        window (and performs the reference swap), else None. The first
        completed window only seeds the reference — there is nothing to
        compare against yet — so the first score arrives with the second
        completed window.
        """
        h = np.asarray(batch_hist, dtype=np.int64)
        if h.shape != (self.n_dims, self.n_bins):
            raise ValidationError(
                f"drift update expects a ({self.n_dims}, {self.n_bins}) "
                f"histogram, got {h.shape}"
            )
        if n_rows < 0:
            raise ValidationError("n_rows must be >= 0")
        self.cur += h
        self.cur_count += int(n_rows)
        if self.cur_count < self.window:
            return None
        score: Optional[float] = None
        if self.ref_count > 0:
            score = max(
                tv_distance(self.ref[j], self.cur[j]) for j in range(self.n_dims)
            )
            self.last_score = score
        # Swap: the window just scored becomes the new reference.
        self.ref, self.cur = self.cur, self.ref
        self.ref_count = self.cur_count
        self.cur[...] = 0
        self.cur_count = 0
        self.swaps += 1
        return score

    @property
    def drifted(self) -> bool:
        """Whether the most recent completed window crossed the threshold."""
        return self.last_score is not None and self.last_score >= self.threshold

    def rebin(self, maps: np.ndarray) -> None:
        """Re-index both windows onto a widened grid.

        ``maps`` is the (n_dims × n_bins) old-bin → new-bin index map from
        :func:`repro.core.adaptive.rebin_maps`. Mass-conserving
        scatter-add, same as the state histograms — so a grid widening
        between two windows does not register as divergence.
        """
        maps = np.asarray(maps, dtype=np.int64)
        if maps.shape != (self.n_dims, self.n_bins):
            raise ValidationError(
                f"drift rebin expects ({self.n_dims}, {self.n_bins}) maps, "
                f"got {maps.shape}"
            )
        for name in ("ref", "cur"):
            old = getattr(self, name)
            new = np.zeros_like(old)
            for j in range(self.n_dims):
                np.add.at(new[j], maps[j], old[j])
            setattr(self, name, new)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "n_dims": self.n_dims,
            "n_bins": self.n_bins,
            "window": self.window,
            "threshold": self.threshold,
            "ref": self.ref.copy(),
            "cur": self.cur.copy(),
            "ref_count": int(self.ref_count),
            "cur_count": int(self.cur_count),
            "last_score": self.last_score,
            "swaps": int(self.swaps),
        }

    @classmethod
    def from_state_dict(cls, sd: Dict[str, Any]) -> "WindowDriftDetector":
        det = cls(
            int(sd["n_dims"]),
            int(sd["n_bins"]),
            int(sd["window"]),
            float(sd["threshold"]),
        )
        det.ref = np.asarray(sd["ref"], dtype=np.int64).reshape(det.ref.shape)
        det.cur = np.asarray(sd["cur"], dtype=np.int64).reshape(det.cur.shape)
        det.ref_count = int(sd["ref_count"])
        det.cur_count = int(sd["cur_count"])
        ls = sd.get("last_score")
        det.last_score = None if ls is None else float(ls)
        det.swaps = int(sd.get("swaps", 0))
        return det


@dataclass
class DriftEvent:
    """One detection → response cycle, as returned by
    :meth:`DriftResponder.step`."""

    #: Index of the projection whose score triggered the response.
    projection: int
    #: The triggering divergence score.
    score: float
    #: Detector swap count at trigger time (the cooldown clock value).
    swap: int
    #: Whether ``skb.refresh`` ran (False only if publishing alone failed).
    refreshed: bool
    #: Result of the ``publish`` callable, or None when no publisher is
    #: configured. Publish exceptions propagate — a failed fleet
    #: republish is an operational event, not something to swallow.
    publish_result: Any = None


@dataclass
class DriftResponder:
    """Closes the loop from drift score to re-projection and republish.

    Call :meth:`step` after every ``partial_fit`` (or on whatever cadence
    the harness prefers); it inspects the estimator's drift detectors
    and, when any projection's latest completed window crossed its
    threshold *and* the cooldown has elapsed, refreshes the cluster
    models and invokes the publisher.

    Attributes
    ----------
    skb:
        The :class:`~repro.core.streaming.StreamingKeyBin2` being
        watched. Must have been constructed with ``drift_window > 0``.
    publish_to:
        Forwarded to ``skb.refresh(publish_to=...)`` — the model-store
        slot the refreshed models land in.
    publish:
        Optional zero-argument callable run after a successful refresh —
        typically saves an artifact and sends the router a
        ``{"op": "reload", "path": ...}`` request so the new models ride
        the staged rollout. Its return value lands in
        :attr:`DriftEvent.publish_result`.
    cooldown_swaps:
        Minimum number of detector window swaps between two responses
        (per the global clock: the max swap count across projections).
        1 means "at most one response per completed window".
    """

    skb: Any
    publish_to: Optional[str] = None
    publish: Optional[Callable[[], Any]] = None
    cooldown_swaps: int = 1
    _last_response_swap: int = field(default=-(10**9), init=False)
    #: Every event this responder has emitted, newest last.
    history: List[DriftEvent] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.cooldown_swaps < 1:
            raise ValidationError("cooldown_swaps must be >= 1")
        if getattr(self.skb, "drift_window", 0) <= 0:
            raise ValidationError(
                "DriftResponder needs an estimator with drift detection "
                "enabled (construct StreamingKeyBin2 with drift_window > 0)"
            )

    def step(self) -> Optional[DriftEvent]:
        """Check detectors; respond when drifted and out of cooldown.

        Returns the :class:`DriftEvent` when a response fired, else None.
        """
        detectors = self.skb.drift_detectors
        clock = max((d.swaps for d in detectors if d is not None), default=0)
        if clock - self._last_response_swap < self.cooldown_swaps:
            return None
        worst: Optional[int] = None
        worst_score = -1.0
        for i, det in enumerate(detectors):
            if det is not None and det.drifted and det.last_score > worst_score:
                worst, worst_score = i, float(det.last_score)
        if worst is None:
            return None
        self._last_response_swap = clock
        self.skb.refresh(publish_to=self.publish_to)
        result = self.publish() if self.publish is not None else None
        event = DriftEvent(
            projection=worst,
            score=worst_score,
            swap=clock,
            refreshed=True,
            publish_result=result,
        )
        self.history.append(event)
        from repro.obs import default_registry

        reg = default_registry()
        if reg.enabled:
            reg.counter(
                "stream_drift_responses_total",
                "Drift-triggered refresh+republish responses",
                ("projection",),
            ).labels(projection=str(worst)).inc()
        return event
