"""Space ranges and key formatting (paper §3, step 2).

Binning happens over a *predetermined* range ``[r_min, r_max]`` per
dimension. In batch mode the range is measured from the data (with a safety
margin for points near the boundary); in distributed mode per-rank ranges
are merged with an elementwise min/max allreduce; in streaming mode the
first batch seeds the range and later out-of-range values clip into the
boundary bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_array_2d, check_finite

__all__ = ["SpaceRange", "format_key"]

#: Width given to a dimension whose observed span is zero (constant value);
#: keeps bin arithmetic finite and puts the constant in a middle bin.
_DEGENERATE_HALF_WIDTH = 0.5


@dataclass(frozen=True)
class SpaceRange:
    """Per-dimension binning range ``[r_min, r_max]``.

    Immutable; merging and expansion return new instances so fitted models
    can safely share ranges.
    """

    r_min: np.ndarray
    r_max: np.ndarray

    def __post_init__(self) -> None:
        r_min = np.asarray(self.r_min, dtype=np.float64).ravel()
        r_max = np.asarray(self.r_max, dtype=np.float64).ravel()
        if r_min.shape != r_max.shape:
            raise ValidationError("r_min and r_max must have the same length")
        if r_min.size == 0:
            raise ValidationError("SpaceRange needs at least one dimension")
        if not (np.all(np.isfinite(r_min)) and np.all(np.isfinite(r_max))):
            raise ValidationError("SpaceRange bounds must be finite")
        if np.any(r_max <= r_min):
            raise ValidationError("r_max must be strictly greater than r_min")
        object.__setattr__(self, "r_min", r_min)
        object.__setattr__(self, "r_max", r_max)

    @property
    def n_dims(self) -> int:
        return int(self.r_min.shape[0])

    @property
    def span(self) -> np.ndarray:
        return self.r_max - self.r_min

    @classmethod
    def from_data(cls, x: np.ndarray, margin: float = 0.05) -> "SpaceRange":
        """Measure the range of ``x`` (M × N), widened by ``margin`` per side.

        The margin keeps boundary points out of the extreme bins so a
        slightly wider later batch (streaming) does not saturate them.
        Zero-span (constant) dimensions get a unit-width window centred on
        the constant.
        """
        x = check_array_2d(x, "x")
        check_finite(x, "x")
        if margin < 0:
            raise ValidationError(f"margin must be >= 0, got {margin}")
        lo = x.min(axis=0)
        hi = x.max(axis=0)
        span = hi - lo
        degenerate = span == 0
        pad = np.where(degenerate, _DEGENERATE_HALF_WIDTH, span * margin)
        return cls(lo - pad, hi + pad)

    def merge(self, other: "SpaceRange") -> "SpaceRange":
        """Elementwise union of two ranges (the distributed min/max reduce)."""
        if other.n_dims != self.n_dims:
            raise ValidationError(
                f"cannot merge ranges with {self.n_dims} and {other.n_dims} dims"
            )
        return SpaceRange(
            np.minimum(self.r_min, other.r_min),
            np.maximum(self.r_max, other.r_max),
        )

    def expand(self, factor: float) -> "SpaceRange":
        """Symmetrically widen every dimension by ``factor`` of its span."""
        if factor < 0:
            raise ValidationError(f"factor must be >= 0, got {factor}")
        pad = self.span * factor
        return SpaceRange(self.r_min - pad, self.r_max + pad)

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of rows of ``x`` lying fully inside the range."""
        x = np.asarray(x, dtype=np.float64)
        return np.all((x >= self.r_min) & (x <= self.r_max), axis=1)

    def to_array(self) -> np.ndarray:
        """(2 × N) stacked bounds — the wire format for allreduce merging."""
        return np.stack([self.r_min, self.r_max])

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SpaceRange":
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] != 2:
            raise ValidationError("expected a (2 × N) bounds array")
        return cls(arr[0], arr[1])


def format_key(bins: np.ndarray, depth: int) -> str:
    """Human-readable key: zero-padded bin labels concatenated across dims.

    Mirrors the paper's example — a point in bin 35 of dim 1, 64 of dim 2
    and 6 of dim 3 has key ``"356406"``.
    """
    bins = np.asarray(bins).ravel()
    width = len(str((1 << depth) - 1))
    return "".join(str(int(b)).zfill(width) for b in bins)
