"""Dimension collapsing via Kolmogorov–Smirnov statistics (paper §3.1).

After histograms are consolidated, "statistically anomalous dimensions are
identified with the Kolmogorov–Smirnov test and collapsed." A projected
dimension earns its keep only if its marginal density carries cluster
structure; two failure modes are collapsed:

* **noise-like** — the density is statistically indistinguishable from
  uniform over its occupied range (KS statistic below a threshold). Cutting
  such a dimension manufactures clusters out of sampling noise.
* **degenerate** — essentially all mass sits in a couple of bins (a nearly
  constant direction). No ordering information survives binning there.

Both tests run on the histogram only — O(B) per dimension, independent of
the number of points, as required for in-situ use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError

__all__ = ["uniformity_statistic", "effective_support", "collapse_dimensions"]


def uniformity_statistic(counts: np.ndarray) -> float:
    """KS distance between a histogram's ECDF and the uniform CDF.

    Computed over the occupied range (first to last non-empty bin), so a
    cluster sitting in a corner of a wide binning window is not mistaken
    for structure. Returns 0.0 for empty or single-bin support (perfectly
    "uniform": nothing to cut).
    """
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if counts.size == 0:
        raise ValidationError("counts must be non-empty")
    if np.any(counts < 0):
        raise ValidationError("counts must be non-negative")
    occupied = np.flatnonzero(counts > 0)
    if occupied.size == 0:
        return 0.0
    lo, hi = occupied[0], occupied[-1]
    support = counts[lo : hi + 1]
    total = support.sum()
    if support.size <= 1 or total == 0:
        return 0.0
    ecdf = np.cumsum(support) / total
    # Uniform CDF evaluated at the right edge of each bin.
    uniform = np.arange(1, support.size + 1) / support.size
    return float(np.max(np.abs(ecdf - uniform)))


def effective_support(counts: np.ndarray) -> int:
    """Number of bins needed to hold 99% of the mass (degeneracy check)."""
    counts = np.asarray(counts, dtype=np.float64).ravel()
    total = counts.sum()
    if total == 0:
        return 0
    sorted_desc = np.sort(counts)[::-1]
    cum = np.cumsum(sorted_desc)
    return int(np.searchsorted(cum, 0.99 * total) + 1)


def collapse_dimensions(
    counts: np.ndarray,
    uniform_threshold: float = 0.05,
    min_support_bins: int = 3,
) -> np.ndarray:
    """Decide which projected dimensions to keep.

    Parameters
    ----------
    counts:
        (n_dims × B) consolidated histogram at the working depth.
    uniform_threshold:
        Dimensions whose KS-vs-uniform statistic is below this are
        collapsed as noise-like. The classic large-sample KS critical value
        at α=0.05 is ``1.36/sqrt(M)``; a fixed small threshold is used
        instead because histogram bins correlate neighbouring samples.
    min_support_bins:
        Dimensions whose 99%-mass support covers fewer bins are collapsed
        as degenerate.

    Returns
    -------
    Boolean keep-mask of length n_dims. If every dimension would collapse,
    the single most structured dimension (largest KS statistic) is kept so
    downstream steps always have a space to work in.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValidationError("expected an (n_dims × B) histogram table")
    if not (0.0 <= uniform_threshold <= 1.0):
        raise ValidationError("uniform_threshold must be in [0, 1]")
    n_dims = counts.shape[0]
    stats = np.array([uniformity_statistic(counts[j]) for j in range(n_dims)])
    support = np.array([effective_support(counts[j]) for j in range(n_dims)])
    keep = (stats >= uniform_threshold) & (support >= min_support_bins)
    if not keep.any():
        keep = np.zeros(n_dims, dtype=bool)
        keep[int(np.argmax(stats))] = True
    return keep
