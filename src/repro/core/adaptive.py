"""Adaptive binning ranges: the dyadic widening chain (open-world streams).

Fixed-range binning assumes a known, stationary ``[r_min, r_max]`` per
projected dimension — the main blocker for open-world streams
(ROADMAP "Adaptive streaming bins + drift handling"). This module supplies
the range-widening machinery :class:`~repro.core.streaming.StreamingKeyBin2`
uses in ``adaptive=True`` mode, built around one invariant: **every widened
grid must rebin the old histogram exactly** — each old bin maps onto
exactly one new bin, so rebinning is an integer scatter-add that conserves
total mass bit-for-bit and keeps the delta-merge protocol in
``tests/insitu/`` exact.

The widening chain
------------------

Arbitrary per-rank range growth would break two properties the distributed
pipeline depends on:

* **alignment** — an old bin must never straddle a new bin boundary, or
  rebinning needs fractional mass splitting (inexact, order-dependent);
* **mergeability** — two ranks that widened differently must be able to
  agree on a common grid that both can rebin onto exactly, and the
  agreement must be *associative* (independent of consolidation cadence).

Both hold when grids are restricted to a single totally-ordered chain,
one grid per *level* ``g``, derived from the base range
``[base_min, base_max]`` (span ``s``) by alternately doubling downward and
upward::

    level 0:  [base_min,          base_max        ]   span s
    level 1:  [base_min -  1·s,   base_max        ]   span 2·s
    level 2:  [base_min -  1·s,   base_max +  2·s ]   span 4·s
    level 3:  [base_min -  5·s,   base_max +  2·s ]   span 8·s
    ...

Step ``k`` (1-indexed) extends the span by ``2^(k-1)·s`` — downward when
``k`` is odd, upward when ``k`` is even — so level ``g`` spans exactly
``2^g·s`` and its bottom/top extensions are the data-independent integers
``B(g)``/``T(g)`` of :func:`chain_extents`. Because the chain is totally
ordered, merging two ranks' grids is ``max(level)`` per dimension —
trivially associative, so the final grid is a pure function of the pooled
observed range, not of when consolidations happened.

Rebin exactness
---------------

At depth ``d`` (``2^d`` bins per dimension), old level ``g`` and new level
``g' >= g``: the new bin width is ``2^(g'-g)`` old widths, and the old
origin sits ``(B(g') - B(g))·s`` above the new origin — an offset whose
every term ``2^(k-1)·s`` (odd ``k`` in ``(g, g']``) is a multiple of
``2^g·s``, i.e. of whole old-*grid* spans and hence of old bin widths. Old
bin boundaries therefore align with new bin boundaries, and old bin ``i``
falls entirely inside new bin

    ``i' = (i·2^g + (B(g') - B(g))·2^d) >> g'``

— pure int64 arithmetic (:func:`rebin_maps`), no floats anywhere.

:class:`TailSketch` is a small Ben-Haim/Tom-Tov merge-closest-bins sketch
(histogrammar's ``AdaptivelyBin`` lineage) each projection state feeds
with per-batch extremes; it summarizes the observed tails so the optional
``anticipate`` mode can widen past the minimal cover when a tail is still
growing (fewer rebins on fast-expanding streams, at the price of a grid
that is no longer a pure function of the pooled range — off by default).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "MAX_LEVEL",
    "chain_extents",
    "grid_bounds",
    "cover_levels",
    "rebin_maps",
    "TailSketch",
]

#: Widening-level cap. Level ``g`` multiplies the base span by ``2^g``:
#: 48 doublings cover ~14 decimal orders of magnitude of range growth —
#: anything past that is a data bug, not drift — while keeping every
#: integer in the rebin map (``<= 2^(MAX_LEVEL + 8)``) safely inside int64.
MAX_LEVEL = 48

# B(g)/T(g): bottom/top extension of level g, in base-span units.
# Step k adds 2^(k-1) — downward (B) when k is odd, upward (T) when even.
_B_TABLE = np.zeros(MAX_LEVEL + 1, dtype=np.int64)
_T_TABLE = np.zeros(MAX_LEVEL + 1, dtype=np.int64)
for _k in range(1, MAX_LEVEL + 1):
    _B_TABLE[_k] = _B_TABLE[_k - 1] + ((1 << (_k - 1)) if _k % 2 else 0)
    _T_TABLE[_k] = _T_TABLE[_k - 1] + (0 if _k % 2 else (1 << (_k - 1)))
del _k


def _as_levels(levels: np.ndarray) -> np.ndarray:
    levels = np.asarray(levels, dtype=np.int64).ravel()
    if levels.size and (levels.min() < 0 or levels.max() > MAX_LEVEL):
        raise ValidationError(
            f"widening levels must lie in [0, {MAX_LEVEL}], got range "
            f"[{levels.min()}, {levels.max()}]"
        )
    return levels


def chain_extents(levels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(B, T)`` extensions of each level, in base-span units.

    ``B + T + 1 == 2^level`` by construction: level ``g`` spans ``2^g``
    base spans, one of which is the base itself.
    """
    levels = _as_levels(levels)
    return _B_TABLE[levels], _T_TABLE[levels]


def grid_bounds(
    base_min: np.ndarray, base_max: np.ndarray, levels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Float bounds ``[r_min(g), r_max(g)]`` of the level-``g`` chain grid.

    Every rank computes these with the identical float expression
    ``base ∓ extent·span``, so ranks that agree on levels agree on bounds
    bit-for-bit — the property distributed grid agreement rests on.
    """
    base_min = np.asarray(base_min, dtype=np.float64).ravel()
    base_max = np.asarray(base_max, dtype=np.float64).ravel()
    bottom, top = chain_extents(levels)
    if base_min.shape != base_max.shape or base_min.shape != bottom.shape:
        raise ValidationError("base bounds and levels must have equal length")
    span = base_max - base_min
    r_min = base_min - bottom.astype(np.float64) * span
    r_max = base_max + top.astype(np.float64) * span
    if not (np.all(np.isfinite(r_min)) and np.all(np.isfinite(r_max))):
        raise ValidationError(
            "chain grid bounds overflowed float64; the widening level cap "
            "should make this unreachable for sane base ranges"
        )
    return r_min, r_max


def cover_levels(
    base_min: np.ndarray,
    base_max: np.ndarray,
    need_lo: np.ndarray,
    need_hi: np.ndarray,
    start: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Minimal chain level covering ``[need_lo, need_hi]`` per dimension.

    Returns the smallest ``g >= start`` with ``r_min(g) <= need_lo`` and
    ``r_max(g) >= need_hi``. Deterministic float comparisons only, so every
    rank maps the same pooled need to the same levels. Raises when even
    :data:`MAX_LEVEL` cannot cover the need (range grew ~2^48-fold —
    report the data problem instead of silently saturating).
    """
    base_min = np.asarray(base_min, dtype=np.float64).ravel()
    base_max = np.asarray(base_max, dtype=np.float64).ravel()
    need_lo = np.asarray(need_lo, dtype=np.float64).ravel()
    need_hi = np.asarray(need_hi, dtype=np.float64).ravel()
    n = base_min.shape[0]
    levels = (
        np.zeros(n, dtype=np.int64) if start is None
        else _as_levels(start).copy()
    )
    if not (np.all(np.isfinite(need_lo)) and np.all(np.isfinite(need_hi))):
        raise ValidationError("cover_levels needs finite need bounds")
    for _ in range(MAX_LEVEL + 1):
        r_min, r_max = grid_bounds(base_min, base_max, levels)
        uncovered = (need_lo < r_min) | (need_hi > r_max)
        if not uncovered.any():
            return levels
        if np.any(levels[uncovered] >= MAX_LEVEL):
            bad = int(np.flatnonzero(uncovered & (levels >= MAX_LEVEL))[0])
            raise ValidationError(
                f"dimension {bad}: observed range [{need_lo[bad]}, "
                f"{need_hi[bad]}] exceeds the level-{MAX_LEVEL} chain grid "
                f"(base [{base_min[bad]}, {base_max[bad]}]); this is a "
                "~2^48-fold range explosion — clean the stream"
            )
        levels[uncovered] += 1
    raise ValidationError("cover_levels failed to converge")  # pragma: no cover


def rebin_maps(
    old_levels: np.ndarray, new_levels: np.ndarray, depth: int
) -> np.ndarray:
    """Exact old-bin → new-bin index map per dimension, ``(n_dims, 2^depth)``.

    ``maps[j, i]`` is the depth-``depth`` bin on the level-``new`` grid
    that entirely contains bin ``i`` of the level-``old`` grid of
    dimension ``j`` — the alignment argument in the module docstring. All
    int64; rebinning a histogram is ``np.add.at(new[j], maps[j], old[j])``
    and conserves mass exactly.
    """
    old_levels = _as_levels(old_levels)
    new_levels = _as_levels(new_levels)
    if old_levels.shape != new_levels.shape:
        raise ValidationError("old and new levels must have equal length")
    if np.any(new_levels < old_levels):
        raise ValidationError(
            "the widening chain only grows; new levels must be >= old"
        )
    if depth < 1 or depth > 8:
        raise ValidationError(f"depth must be in [1, 8], got {depth}")
    n_bins = 1 << depth
    i = np.arange(n_bins, dtype=np.int64)
    offset = (_B_TABLE[new_levels] - _B_TABLE[old_levels]) * n_bins
    maps = (
        (i[None, :] << old_levels[:, None]) + offset[:, None]
    ) >> new_levels[:, None]
    # The alignment proof guarantees this; assert it anyway — a wrong map
    # would silently corrupt every downstream histogram.
    if maps.size and (maps.min() < 0 or maps.max() >= n_bins):
        raise ValidationError("rebin map escaped [0, n_bins); chain invariant broken")
    return maps


class TailSketch:
    """Ben-Haim/Tom-Tov merge-closest-bins sketch of one dimension's values.

    The streaming-histogram sketch of *A Streaming Parallel Decision Tree
    Algorithm* (the scheme behind histogrammar's ``AdaptivelyBin``): keep
    at most ``max_bins`` (centroid, count) pairs; inserting a value adds a
    unit bin and merges the two closest centroids when over budget.
    Projection states feed it per-batch extremes — O(1) per batch — so it
    cheaply summarizes how the observed tails move without storing points.

    Used for warmup anticipation: :meth:`headroom` extrapolates the tail
    trajectory so ``anticipate > 0`` mode can widen past the minimal cover
    while a range is still growing. It never influences the grid unless an
    out-of-range event already occurred, preserving the bit-identity of
    adaptive and fixed mode on in-range streams.
    """

    def __init__(self, max_bins: int = 64):
        if max_bins < 2:
            raise ValidationError("TailSketch needs max_bins >= 2")
        self.max_bins = int(max_bins)
        self._centers: List[float] = []
        self._counts: List[float] = []
        self.n = 0

    def update(self, value: float) -> None:
        """Insert one value (callers feed batch minima/maxima)."""
        v = float(value)
        if not np.isfinite(v):
            raise ValidationError("TailSketch values must be finite")
        self.n += 1
        centers, counts = self._centers, self._counts
        lo, hi = 0, len(centers)
        while lo < hi:  # insertion point, keeping centers sorted
            mid = (lo + hi) // 2
            if centers[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(centers) and centers[lo] == v:
            counts[lo] += 1.0
            return
        centers.insert(lo, v)
        counts.insert(lo, 1.0)
        if len(centers) > self.max_bins:
            gaps = [centers[i + 1] - centers[i] for i in range(len(centers) - 1)]
            i = int(np.argmin(gaps))
            c1, c2 = counts[i], counts[i + 1]
            centers[i] = (centers[i] * c1 + centers[i + 1] * c2) / (c1 + c2)
            counts[i] = c1 + c2
            del centers[i + 1], counts[i + 1]

    def update_many(self, values) -> None:
        for v in np.asarray(values, dtype=np.float64).ravel():
            self.update(float(v))

    @property
    def min(self) -> Optional[float]:
        return self._centers[0] if self._centers else None

    @property
    def max(self) -> Optional[float]:
        return self._centers[-1] if self._centers else None

    def quantile(self, q: float) -> Optional[float]:
        """Crude centroid-interpolated quantile (tails only need crude)."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError("quantile must lie in [0, 1]")
        if not self._centers:
            return None
        total = sum(self._counts)
        rank = q * total
        cum = 0.0
        for center, count in zip(self._centers, self._counts):
            cum += count
            if cum >= rank:
                return center
        return self._centers[-1]

    def headroom(self, factor: float) -> Tuple[float, float]:
        """Anticipated ``(lo, hi)`` bounds: observed extremes pushed outward
        by ``factor`` times the sketch's tail width (extreme − 5%/95%
        quantile). A heavy, still-moving tail yields generous headroom; a
        tight stationary one yields almost none.
        """
        if factor < 0:
            raise ValidationError("headroom factor must be >= 0")
        if not self._centers:
            return (np.inf, -np.inf)
        lo, hi = self._centers[0], self._centers[-1]
        q_lo = self.quantile(0.05)
        q_hi = self.quantile(0.95)
        return (lo - factor * max(q_lo - lo, 0.0),
                hi + factor * max(hi - q_hi, 0.0))

    def state_dict(self) -> Dict[str, Any]:
        return {
            "max_bins": self.max_bins,
            "centers": list(self._centers),
            "counts": list(self._counts),
            "n": self.n,
        }

    @classmethod
    def from_state_dict(cls, d: Dict[str, Any]) -> "TailSketch":
        out = cls(int(d["max_bins"]))
        out._centers = [float(c) for c in d["centers"]]
        out._counts = [float(c) for c in d["counts"]]
        out.n = int(d["n"])
        return out
