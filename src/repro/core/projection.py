"""Random projection construction (paper §3.1).

The paper projects the original ``N``-dimensional space into
``N_rp = 1.5·log(N)`` dimensions using a matrix of unit column vectors.
Unlike Johnson–Lindenstrauss-style bounds, KeyBin2 needs only that the
*ordering* of points along each projected direction spreads the data, so
``N_rp`` can be far below the JL bound — the hypergeometric argument in the
paper (eq. 1) just wants a decent chance of hitting an informative
direction, hence the logarithmic rule.

Three matrix families are provided:

``"gaussian"``
    i.i.d. normal entries, columns normalized to unit length. In high
    dimensions random Gaussian columns are nearly orthogonal, which is
    the property §3.1 leans on.
``"sparse"``
    Achlioptas ±1/0 entries (probabilities 1/6, 2/3, 1/6), normalized.
    Same guarantees in expectation, 3× fewer multiplies.
``"orthonormal"``
    QR-orthogonalized Gaussian columns — exactly orthogonal, the ideal
    rotation; slightly more expensive to build.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.util.rng import SeedLike, as_generator

__all__ = ["target_dimension", "projection_matrix", "PROJECTION_KINDS"]

PROJECTION_KINDS = ("gaussian", "sparse", "orthonormal")


def target_dimension(
    n_features: int,
    factor: float = 1.5,
    min_dim: int = 2,
) -> int:
    """The paper's reduced dimensionality rule ``N_rp = 1.5·log(N)``.

    Natural log, rounded up, floored at ``min_dim`` and capped at
    ``n_features`` (projecting *up* never helps).
    """
    if n_features < 1:
        raise ValidationError(f"n_features must be >= 1, got {n_features}")
    if factor <= 0:
        raise ValidationError(f"factor must be positive, got {factor}")
    raw = math.ceil(factor * math.log(max(n_features, 2)))
    return int(min(max(raw, min_dim), n_features))


def projection_matrix(
    n_features: int,
    n_components: int,
    seed: SeedLike = None,
    kind: str = "gaussian",
) -> np.ndarray:
    """Build an ``(n_features × n_components)`` unit-column projection matrix."""
    if n_features < 1 or n_components < 1:
        raise ValidationError("n_features and n_components must be >= 1")
    if n_components > n_features:
        raise ValidationError(
            f"n_components ({n_components}) cannot exceed n_features ({n_features})"
        )
    rng = as_generator(seed)
    if kind == "gaussian":
        a = rng.standard_normal((n_features, n_components))
    elif kind == "sparse":
        # Achlioptas: sqrt(3) * {+1 w.p. 1/6, 0 w.p. 2/3, -1 w.p. 1/6}
        u = rng.random((n_features, n_components))
        a = np.zeros((n_features, n_components))
        a[u < 1 / 6] = 1.0
        a[u > 5 / 6] = -1.0
        # Guard against an all-zero column (possible for tiny n_features).
        dead = np.flatnonzero(np.abs(a).sum(axis=0) == 0)
        for j in dead:
            a[rng.integers(n_features), j] = rng.choice([-1.0, 1.0])
    elif kind == "orthonormal":
        g = rng.standard_normal((n_features, n_components))
        q, r = np.linalg.qr(g)
        # Fix signs so the distribution is Haar-uniform.
        q *= np.sign(np.diag(r))
        return np.ascontiguousarray(q)
    else:
        raise ValidationError(
            f"unknown projection kind {kind!r}; choose from {PROJECTION_KINDS}"
        )
    norms = np.linalg.norm(a, axis=0, keepdims=True)
    # Degenerate zero-norm columns cannot occur for gaussian (prob. 0) and
    # were patched for sparse, but guard anyway.
    norms[norms == 0] = 1.0
    a /= norms
    return np.ascontiguousarray(a)
