"""Incremental KeyBin2 for streams and batch sequences (paper §3, step 2).

The streaming pipeline keeps, per candidate projection, only:

* the projection matrix,
* the binning range (seeded by the first batch, widened by a safety
  factor; later out-of-range values clip into boundary bins),
* per-depth marginal histograms (O(N_rp · B) integers), and
* a capped sparse counter of occupied deep-key cells, which is what the
  final clustering assignment needs to enumerate clusters.

``partial_fit`` is O(batch); ``refresh`` re-runs collapse → cut → score on
the accumulated histograms and installs the best model, mirroring the
paper's "histograms are communicated periodically" regime. ``predict``
labels new points with the current model without storing them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive import (
    TailSketch,
    cover_levels,
    grid_bounds,
    rebin_maps,
)
from repro.core.assess import histogram_ch_index
from repro.core.binning import SpaceRange
from repro.core.drift import WindowDriftDetector
from repro.core.collapse import collapse_dimensions
from repro.core.model import KeyBin2Model
from repro.core.partitioning import find_cuts
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.core.projection import projection_matrix, target_dimension
from repro.errors import NotFittedError, ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices, prefix_bins
from repro.kernels.project import project_points
from repro.obs import default_registry, trace
from repro.util.rng import SeedLike, spawn_generators
from repro.util.validation import check_array_2d, check_finite

__all__ = ["KeyCounter", "StreamingKeyBin2"]


class KeyCounter:
    """Capped sparse counter of occupied deep-key cells.

    Keys are rows of small integers (deep bin indices per kept dimension).
    Storage is fully vectorized: keys of width ≤ 8 bytes are byte-encoded
    into a **sorted** uint64 code array (dimension 0 in the most
    significant byte, so numeric order equals lexicographic byte order —
    the same canonical encoding the fused kernel path emits); wider keys
    fall back to a sorted structured-bytes array. Folding a batch is one
    ``np.unique`` merge instead of a per-key dict walk, which is what
    removed the Python-loop bottleneck from ``partial_fit``.

    When the number of distinct keys exceeds ``capacity``, the
    smallest-count half of the entries is evicted — dropping only cells
    that would have formed negligible clusters. The eviction count is
    tracked so callers can report the approximation.
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._codes: Optional[np.ndarray] = None  # sorted codes (see above)
        self._counts: np.ndarray = np.empty(0, dtype=np.int64)
        self.evicted_keys = 0
        self.evicted_points = 0
        self._width: Optional[int] = None

    def __len__(self) -> int:
        return 0 if self._codes is None else int(self._codes.shape[0])

    # -- encoding ----------------------------------------------------------

    @staticmethod
    def _encode_rows(rows: np.ndarray) -> np.ndarray:
        """Canonical code array for (M × w) uint8 rows.

        w ≤ 8: zero-padded big-endian uint64 (value = Σ rows[:, j]·256^(7−j));
        w > 8: a structured-bytes view that compares lexicographically.
        """
        w = rows.shape[1]
        if w <= 8:
            buf = np.zeros((rows.shape[0], 8), dtype=np.uint8)
            buf[:, :w] = rows
            return buf.view(">u8").ravel().astype(np.uint64, copy=False)
        return rows.view([("", np.uint8)] * w).ravel().copy()

    def _decode_codes(self, codes: np.ndarray) -> np.ndarray:
        w = self._width
        assert w is not None
        if w <= 8:
            return codes.astype(">u8").view(np.uint8).reshape(-1, 8)[:, :w].copy()
        return codes.view(np.uint8).reshape(-1, w).copy()

    def _check_width(self, width: int) -> None:
        if self._width is None:
            self._width = int(width)
        elif width != self._width:
            raise ValidationError(
                f"key width changed from {self._width} to {width}"
            )

    # -- folding -----------------------------------------------------------

    def _fold(
        self, codes: np.ndarray, counts: np.ndarray, sorted_unique: bool = False
    ) -> None:
        """Merge (codes, counts) — codes need not be unique or sorted —
        then enforce the capacity cap.

        ``sorted_unique=True`` asserts the codes are already strictly
        increasing (``np.unique`` output); uint64 codes are otherwise
        checked, because the sorted case takes an O(K + u) merge instead
        of re-sorting the whole table — the difference between a ~1 ms
        and a ~7 ms fold at steady state, per projection per batch.
        """
        if codes.dtype == np.uint64:
            if not sorted_unique:
                sorted_unique = codes.shape[0] < 2 or bool(
                    np.all(codes[1:] > codes[:-1])
                )
            if not sorted_unique:
                uniq, inverse = np.unique(codes, return_inverse=True)
                agg = np.zeros(uniq.shape[0], dtype=np.int64)
                np.add.at(agg, inverse, counts)
                codes, counts = uniq, agg
            self._merge_sorted(codes, counts)
        else:
            # Wide structured-bytes keys: numpy defines only equality for
            # structured dtypes, so no searchsorted merge — re-unique the
            # concatenation (rare path: > 8 projected dimensions).
            if self._codes is not None and self._codes.shape[0]:
                codes = np.concatenate([self._codes, codes])
                counts = np.concatenate([self._counts, counts])
            uniq, inverse = np.unique(codes, return_inverse=True)
            merged = np.zeros(uniq.shape[0], dtype=np.int64)
            np.add.at(merged, inverse, counts)
            self._codes = uniq
            self._counts = merged
        if self._codes.shape[0] > self.capacity:
            self._evict()

    def _merge_sorted(self, ucodes: np.ndarray, ucounts: np.ndarray) -> None:
        """Merge strictly-increasing unique uint64 codes into the sorted
        table without re-sorting it: binary-search each new code, add the
        counts of codes already present in place, splice the rest in."""
        if self._codes is None or self._codes.shape[0] == 0:
            # Copy: the table is mutated in place by later folds and must
            # not alias a caller's array (merge_encoded hands in fused-
            # kernel output the caller may still hold).
            self._codes = ucodes.copy()
            self._counts = ucounts.astype(np.int64, copy=True)
            return
        idx = np.searchsorted(self._codes, ucodes)
        in_bounds = idx < self._codes.shape[0]
        present = np.zeros(ucodes.shape[0], dtype=bool)
        present[in_bounds] = self._codes[idx[in_bounds]] == ucodes[in_bounds]
        if present.all():
            # Steady state: every key already tracked. idx entries are
            # distinct (ucodes strictly increase), so fancy += is exact.
            self._counts[idx] += ucounts
            return
        self._counts[idx[present]] += ucounts[present]
        miss = ~present
        self._codes = np.insert(self._codes, idx[miss], ucodes[miss])
        self._counts = np.insert(self._counts, idx[miss], ucounts[miss])

    def _evict(self) -> None:
        # A stable argsort on counts over the code-sorted table orders by
        # (count, key bytes) — eviction stays a pure function of the table
        # contents, so distributed replicas holding the same cells evict
        # the same cells regardless of insertion order.
        assert self._codes is not None
        order = np.argsort(self._counts, kind="stable")
        n_drop = self._codes.shape[0] - self.capacity // 2
        drop = order[:n_drop]
        self.evicted_keys += int(n_drop)
        self.evicted_points += int(self._counts[drop].sum())
        keep = np.ones(self._codes.shape[0], dtype=bool)
        keep[drop] = False
        self._codes = self._codes[keep]
        self._counts = self._counts[keep]

    def update(self, rows: np.ndarray) -> None:
        """Count unique rows of an (M × D) uint8 array."""
        rows = np.ascontiguousarray(rows, dtype=np.uint8)
        if rows.ndim != 2:
            raise ValidationError("KeyCounter.update needs a 2-D array")
        self._check_width(rows.shape[1])
        if rows.shape[0] == 0:
            return
        codes = self._encode_rows(rows)
        uniq, counts = np.unique(codes, return_counts=True)
        self._fold(uniq, counts.astype(np.int64, copy=False), sorted_unique=True)

    def merge_encoded(
        self, codes: np.ndarray, counts: np.ndarray, *, width: int
    ) -> "KeyCounter":
        """Fold byte-encoded uint64 codes with their counts, in place.

        The zero-copy handoff from the fused kernel path
        (:attr:`repro.kernels.fused.FusedResult.key_codes`): codes are
        already in this counter's canonical encoding, so no row
        materialization or re-encoding happens. Only valid for key widths
        ≤ 8 (wider keys go through :meth:`merge_arrays`).
        """
        if width < 1 or width > 8:
            raise ValidationError(
                f"merge_encoded requires key width in [1, 8], got {width}"
            )
        self._check_width(int(width))
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        counts = np.asarray(counts, dtype=np.int64).ravel()
        if codes.shape[0] != counts.shape[0]:
            raise ValidationError(
                "merge_encoded needs matching (K,) codes and counts"
            )
        if codes.shape[0] == 0:
            return self
        self._fold(codes, counts)
        return self

    def merge_arrays(
        self,
        keys: np.ndarray,
        counts: np.ndarray,
        *,
        evicted_keys: int = 0,
        evicted_points: int = 0,
    ) -> "KeyCounter":
        """Fold an arrays-format table (the :meth:`to_arrays` wire format)
        into this counter, in place.

        This is the one sanctioned way to merge counters across ranks: the
        capacity cap is enforced on the merged table (evicting
        smallest-count cells exactly as :meth:`update` would), and the
        source counter's ``evicted_keys``/``evicted_points`` totals are
        accumulated so the merged counter reports the *global*
        approximation, not just its own.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint8)
        counts = np.asarray(counts, dtype=np.int64)
        if keys.ndim != 2 or counts.ndim != 1 or keys.shape[0] != counts.shape[0]:
            raise ValidationError(
                "merge_arrays needs a (K × D) key array and matching (K,) counts"
            )
        if evicted_keys < 0 or evicted_points < 0:
            raise ValidationError("eviction totals cannot be negative")
        self.evicted_keys += int(evicted_keys)
        self.evicted_points += int(evicted_points)
        if keys.shape[0] == 0:
            return self
        self._check_width(keys.shape[1])
        self._fold(self._encode_rows(keys), counts)
        return self

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(keys (K × D) uint8, counts (K,)) of surviving cells, in
        byte-lexicographic key order."""
        if self._codes is None or self._codes.shape[0] == 0 or self._width is None:
            return np.empty((0, 0), dtype=np.uint8), np.empty(0, dtype=np.int64)
        return self._decode_codes(self._codes), self._counts.copy()

    def copy(self) -> "KeyCounter":
        """Independent deep copy (two array copies, no re-encoding)."""
        out = KeyCounter(self.capacity)
        out._codes = None if self._codes is None else self._codes.copy()
        out._counts = self._counts.copy()
        out.evicted_keys = self.evicted_keys
        out.evicted_points = self.evicted_points
        out._width = self._width
        return out

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable plain representation (see :meth:`from_state_dict`)."""
        keys, counts = self.to_arrays()
        return {
            "capacity": self.capacity,
            "width": self._width,
            "keys": keys,
            "counts": counts,
            "evicted_keys": self.evicted_keys,
            "evicted_points": self.evicted_points,
        }

    @classmethod
    def from_state_dict(cls, d: Dict[str, Any]) -> "KeyCounter":
        out = cls(int(d["capacity"]))
        out._width = None if d["width"] is None else int(d["width"])
        keys = np.ascontiguousarray(d["keys"], dtype=np.uint8)
        counts = np.asarray(d["counts"], dtype=np.int64)
        if keys.shape[0]:
            # _fold sorts and uniques, so checkpoints written by the older
            # insertion-ordered implementation restore correctly too.
            out._fold(out._encode_rows(keys), counts)
        out.evicted_keys = int(d["evicted_keys"])
        out.evicted_points = int(d["evicted_points"])
        return out


def _projected_bounds(
    feature_range, matrix, n_features: int, cover_sigmas: float = 2.0
) -> SpaceRange:
    """Concentration bounds of the projected space from feature bounds.

    The exact box-corner extremes of ``Σ_r x_r·a_rj`` are hopelessly loose
    for random unit directions (width O(√N·(high−low))) — real data
    concentrates. A bounded feature contributes at most
    ``(high_r − low_r)/2`` deviation around its midpoint, and for a unit
    column the projected standard deviation is therefore at most
    ``max_r (high_r − low_r)/2`` (Hoeffding/McDiarmid scale, independent of
    N). The range is the projected midpoint ± ``cover_sigmas`` of that
    scale; the vanishingly rare exceedances clip into boundary bins.
    """
    low, high = feature_range
    low = np.broadcast_to(np.asarray(low, dtype=np.float64), (n_features,))
    high = np.broadcast_to(np.asarray(high, dtype=np.float64), (n_features,))
    if np.any(high <= low):
        raise ValidationError("feature_range must satisfy high > low per feature")
    if matrix is None:
        pad = (high - low) * 0.05
        return SpaceRange(low - pad, high + pad)
    mid = (low + high) / 2.0
    center = mid @ matrix
    scale = float(np.max((high - low) / 2.0))
    half = cover_sigmas * scale
    return SpaceRange(center - half, center + half)


def _rebin_key_counter(kc: KeyCounter, maps: np.ndarray) -> KeyCounter:
    """Re-index a key counter's deep-bin rows through old→new bin maps.

    Each key dimension's bin label is mapped through ``maps[j]`` (the
    exact grid-widening map from :func:`repro.core.adaptive.rebin_maps`),
    then the rows are re-folded into a fresh counter. Cells that land on
    the same widened key merge — total tracked mass and the eviction
    ledger are preserved exactly.
    """
    sd = kc.state_dict()
    out = KeyCounter(kc.capacity)
    out._width = kc._width
    keys = sd["keys"]
    if keys.shape[0]:
        new_rows = np.empty(keys.shape, dtype=np.uint8)
        for j in range(keys.shape[1]):
            new_rows[:, j] = maps[j][keys[:, j]]
        out.merge_arrays(
            new_rows, sd["counts"],
            evicted_keys=sd["evicted_keys"], evicted_points=sd["evicted_points"],
        )
    else:
        out.evicted_keys = int(sd["evicted_keys"])
        out.evicted_points = int(sd["evicted_points"])
    return out


class _ProjectionState:
    """Per-projection streaming accumulators.

    ``hist``/``keys`` always hold the rank's best current view: the merged
    global state plus anything accumulated locally since the last merge.
    ``hist_delta``/``keys_delta`` hold *only* the increments since the last
    merge — the delta a distributed consolidation puts on the wire. A rank
    that never consolidates simply carries a delta equal to its history.

    ``hist_local``/``keys_local`` accumulate the *merged portion of this
    rank's own history*: every successful merge folds the just-shipped
    delta into them (:meth:`reset_deltas`), so at any moment

        own full history = hist_local + hist_delta  (resp. keys).

    This is the per-rank ledger fault recovery rebuilds from: after a peer
    dies, survivors discard the merged global view (which contains the
    dead rank's mass) and re-merge their own ledgers — exact survivor-only
    mass without ever re-reading a frame. The fold happens off the hot
    path (at merge time), so ``partial_fit`` pays nothing for it.
    """

    def __init__(
        self,
        matrix: Optional[np.ndarray],
        space: SpaceRange,
        depths: Sequence[int],
        key_capacity: int,
        adaptive: bool = False,
        drift_window: int = 0,
        drift_threshold: float = 0.25,
    ):
        self.matrix = matrix
        self.space = space
        self.depths = tuple(sorted(set(int(d) for d in depths)))
        self.key_capacity = int(key_capacity)
        n_dims = space.n_dims
        self.hist = {d: np.zeros((n_dims, 1 << d), dtype=np.int64) for d in self.depths}
        self.hist_delta = {
            d: np.zeros((n_dims, 1 << d), dtype=np.int64) for d in self.depths
        }
        self.hist_local = {
            d: np.zeros((n_dims, 1 << d), dtype=np.int64) for d in self.depths
        }
        self.keys = KeyCounter(key_capacity)
        self.keys_delta = KeyCounter(key_capacity)
        self.keys_local = KeyCounter(key_capacity)
        self.n_points = 0
        # -- adaptive grid state (see repro.core.adaptive) ------------------
        # The grid is always `grid_bounds(base_space, levels)`; a fixed-range
        # state simply stays at level 0 forever, so `space` == `base_space`.
        self.adaptive = bool(adaptive)
        self.base_space = space
        self.levels = np.zeros(n_dims, dtype=np.int64)
        # Running envelope of everything this rank has observed (projected
        # coordinates), clamped to at least the base bounds. Pure function
        # of the data seen, independent of batching — the input every rank
        # feeds the distributed grid agreement.
        self.need_lo = space.r_min.copy()
        self.need_hi = space.r_max.copy()
        # Monotone epoch, bumped on every rebin; deltas from mismatched
        # epochs are rebinned (never dropped) by the consolidation layer.
        self.bin_epoch = 0
        self.rebin_count = 0
        # Cumulative out-of-range accounting: entries whose pre-clip bin
        # fell outside the grid, per dimension per side. In fixed mode
        # these rows clip (and are counted); in adaptive mode the grid
        # widens and the batch re-runs, so the counts record quarantine
        # events that were subsequently recovered exactly.
        self.oor_low = np.zeros(n_dims, dtype=np.int64)
        self.oor_high = np.zeros(n_dims, dtype=np.int64)
        # Per-dimension tail sketches (adaptive only): fed batch extremes,
        # consulted for anticipatory headroom when `anticipate > 0`.
        self.sketches: Optional[List[TailSketch]] = (
            [TailSketch() for _ in range(n_dims)] if self.adaptive else None
        )
        # Reference/current window drift detector at the deepest depth.
        self.drift: Optional[WindowDriftDetector] = (
            WindowDriftDetector(
                n_dims, 1 << self.depths[-1], drift_window, drift_threshold
            )
            if drift_window > 0
            else None
        )

    # -- adaptive grid ------------------------------------------------------

    def observe(self, lo: np.ndarray, hi: np.ndarray) -> None:
        """Fold observed per-dimension extremes into the need envelope."""
        np.minimum(self.need_lo, lo, out=self.need_lo)
        np.maximum(self.need_hi, hi, out=self.need_hi)

    def feed_sketches(self, lo: np.ndarray, hi: np.ndarray) -> None:
        if self.sketches is None:
            return
        for j, sk in enumerate(self.sketches):
            sk.update(float(lo[j]))
            sk.update(float(hi[j]))

    def anticipated_need(self, factor: float) -> Tuple[np.ndarray, np.ndarray]:
        """Sketch-extrapolated (lo, hi) envelope for anticipatory widening."""
        assert self.sketches is not None
        lo = self.need_lo.copy()
        hi = self.need_hi.copy()
        for j, sk in enumerate(self.sketches):
            if sk.n == 0:
                continue
            s_lo, s_hi = sk.headroom(factor)
            lo[j] = min(lo[j], s_lo)
            hi[j] = max(hi[j], s_hi)
        return lo, hi

    def target_levels(self) -> np.ndarray:
        """Smallest chain levels (≥ current) whose grid covers the need."""
        return cover_levels(
            self.base_space.r_min,
            self.base_space.r_max,
            self.need_lo,
            self.need_hi,
            start=self.levels,
        )

    def rebin_to(self, new_levels: np.ndarray) -> bool:
        """Widen the grid to ``new_levels`` and exactly re-index all state.

        Levels only ever grow (``new_levels`` is clamped below by the
        current levels); returns False when nothing changes. The deepest
        histograms are scatter-added through the exact old-bin → new-bin
        maps (:func:`repro.core.adaptive.rebin_maps`); shallower depths
        are then *recomputed* from the deepest by prefix-group sums —
        their invariant (``hist[d]`` equals the depth-``d`` grouping of
        ``hist[deepest]``) is what makes that exact, and a direct
        shallow-depth rebin would not be (the shallow grids of two chain
        levels need not align). Key tables are decoded, mapped per
        dimension, and re-folded; drift windows ride along. Total mass is
        conserved bin-for-bin by construction.
        """
        new_levels = np.maximum(
            np.asarray(new_levels, dtype=np.int64), self.levels
        )
        if np.array_equal(new_levels, self.levels):
            return False
        deepest = self.depths[-1]
        maps = rebin_maps(self.levels, new_levels, deepest)
        n_dims = self.space.n_dims
        for table in (self.hist, self.hist_delta, self.hist_local):
            old = table[deepest]
            new = np.zeros_like(old)
            for j in range(n_dims):
                np.add.at(new[j], maps[j], old[j])
            table[deepest] = new
            for d in self.depths[:-1]:
                table[d] = new.reshape(n_dims, 1 << d, -1).sum(axis=2)
        self.keys = _rebin_key_counter(self.keys, maps)
        self.keys_delta = _rebin_key_counter(self.keys_delta, maps)
        self.keys_local = _rebin_key_counter(self.keys_local, maps)
        if self.drift is not None:
            self.drift.rebin(maps)
        self.levels = new_levels
        r_min, r_max = grid_bounds(
            self.base_space.r_min, self.base_space.r_max, new_levels
        )
        self.space = SpaceRange(r_min, r_max)
        self.bin_epoch += 1
        self.rebin_count += 1
        return True

    def reset_deltas(self) -> None:
        """Fold the merged deltas into the own-history ledger, then zero them."""
        for d in self.depths:
            self.hist_local[d] += self.hist_delta[d]
            self.hist_delta[d][...] = 0
        dk = self.keys_delta.state_dict()
        self.keys_local.merge_arrays(
            dk["keys"], dk["counts"],
            evicted_keys=dk["evicted_keys"], evicted_points=dk["evicted_points"],
        )
        self.keys_delta = KeyCounter(self.key_capacity)

    def rebuild_from_local(self) -> None:
        """Reset to "nothing merged yet": state := own history, all of it
        pending as a delta.

        The recovery path calls this on every survivor before re-merging
        on the shrunken communicator; the subsequent consolidation then
        reconstructs a global view containing exactly the survivors' mass.
        """
        for d in self.depths:
            own = self.hist_local[d] + self.hist_delta[d]
            self.hist[d] = own
            self.hist_delta[d] = own.copy()
            self.hist_local[d] = np.zeros_like(own)
        own_keys = self.keys_local
        dk = self.keys_delta.state_dict()
        own_keys.merge_arrays(
            dk["keys"], dk["counts"],
            evicted_keys=dk["evicted_keys"], evicted_points=dk["evicted_points"],
        )
        self.keys = own_keys
        self.keys_delta = own_keys.copy()
        self.keys_local = KeyCounter(self.key_capacity)


class StreamingKeyBin2:
    """Incremental KeyBin2.

    Parameters mirror :class:`~repro.core.estimator.KeyBin2`, plus:

    range_expand:
        Extra fractional widening of the first batch's measured range, to
        absorb later drift (out-of-range values clip).
    feature_range:
        Optional ``(low, high)`` bounds of the *original* features, known a
        priori (the paper's "predetermined space range"). Scalars or
        per-feature arrays. When given, exact projected bounds are derived
        from each projection matrix instead of measuring the first batch —
        essential for non-stationary streams whose early batches do not
        visit the whole space (e.g. folding trajectories, where secondary-
        structure codes always lie in [0, 6]).
    key_capacity:
        Cap on tracked occupied cells per projection (see
        :class:`KeyCounter`).
    fused:
        When True (default), ``partial_fit`` accumulates through the fused
        kernel path (:mod:`repro.kernels.fused`): one batched GEMM per
        chunk for all projections, bin + histogram + key packing in a
        single pass, no full-size intermediates. ``False`` runs the
        original reference kernels — bit-identical results (the
        equivalence suite enforces this), just slower; kept as the
        semantic baseline.
    backend:
        Kernel backend for the fused path: a name (``"numpy"``,
        ``"numba"``), a :class:`~repro.kernels.backend.KernelBackend`
        instance, or None to consult ``REPRO_KERNEL_BACKEND`` / auto-detect.
    adaptive:
        When True, the binning grid widens itself as out-of-range data
        arrives: each projection tracks the observed coordinate envelope
        and, on any out-of-range event, doubles its range along the
        alternating chain of :mod:`repro.core.adaptive` and **exactly**
        rebins all accumulated histograms and key tables onto the wider
        grid, then re-runs the batch — no row is ever silently clamped.
        On a stream whose a-priori ``feature_range`` is correct nothing
        ever goes out of range, so adaptive mode is bit-identical to
        fixed mode there. Default False (the paper's fixed-range regime).
    drift_window:
        Rows per drift-detection window (0 disables detection). When
        positive, each projection keeps reference/current histogram
        windows at the deepest depth and scores their total-variation
        divergence every ``drift_window`` rows — exposed as the
        ``stream_drift_score`` gauge and via :attr:`drift_detectors` for
        :class:`repro.core.drift.DriftResponder`.
    drift_threshold:
        TV score in (0, 1] at which a completed window reports drift.
    anticipate:
        Tail-headroom factor for anticipatory widening (adaptive mode
        only). 0 (default) widens exactly to cover observed data; a
        positive factor additionally extrapolates each dimension's tail
        sketch outward after an out-of-range event, trading a slightly
        wider grid for fewer rebin cycles on fast-growing ranges. Leaving
        it at 0 keeps accumulation history-independent (cadence
        invariant); anticipation makes the grid depend on batch extremes
        seen so far, so it is strictly opt-in.

    Usage::

        skb = StreamingKeyBin2(seed=0)
        for batch, _ in stream:
            skb.partial_fit(batch)
        skb.refresh()                 # consolidate → model_
        labels = skb.predict(batch)
    """

    def __init__(
        self,
        n_projections: int = 4,
        n_components: Optional[int] = None,
        candidate_depths: Sequence[int] = (4, 5, 6, 7),
        projection: str = "gaussian",
        projection_factor: float = 1.5,
        range_expand: float = 0.25,
        feature_range=None,
        collapse: bool = True,
        uniform_threshold: float = 0.05,
        min_support_bins: int = 3,
        min_cut_prominence: float = 0.10,
        key_capacity: int = 100_000,
        fused: bool = True,
        backend=None,
        adaptive: bool = False,
        drift_window: int = 0,
        drift_threshold: float = 0.25,
        anticipate: float = 0.0,
        seed: SeedLike = None,
        engine: Optional[KernelEngine] = None,
    ):
        if n_projections < 1:
            raise ValidationError("n_projections must be >= 1")
        if drift_window < 0:
            raise ValidationError("drift_window must be >= 0 (0 disables)")
        if anticipate < 0:
            raise ValidationError("anticipate must be >= 0")
        if not candidate_depths:
            raise ValidationError("candidate_depths must be non-empty")
        if max(candidate_depths) > 8:
            raise ValidationError(
                "streaming mode stores deep keys as uint8; depths above 8 "
                "are not supported"
            )
        self.n_projections = int(n_projections)
        self.n_components = n_components
        self.candidate_depths = tuple(sorted(set(int(d) for d in candidate_depths)))
        self.projection = projection
        self.projection_factor = float(projection_factor)
        self.range_expand = float(range_expand)
        self.feature_range = feature_range
        self.collapse = bool(collapse)
        self.uniform_threshold = float(uniform_threshold)
        self.min_support_bins = int(min_support_bins)
        self.min_cut_prominence = float(min_cut_prominence)
        self.key_capacity = int(key_capacity)
        self.fused = bool(fused)
        self.backend = backend
        self.adaptive = bool(adaptive)
        self.drift_window = int(drift_window)
        self.drift_threshold = float(drift_threshold)
        self.anticipate = float(anticipate)
        self.seed = seed
        self.engine = engine
        # Lazily-resolved backend instance (backends carry per-consumer
        # scratch buffers, so each model owns one).
        self._backend_instance = None

        self._states: Optional[List[_ProjectionState]] = None
        self.model_: Optional[KeyBin2Model] = None
        self.n_seen_ = 0
        # Points accumulated locally since the last distributed merge; the
        # delta counterpart of n_seen_ (see insitu.distributed).
        self.n_seen_delta_ = 0
        # Points THIS rank has ever ingested (never touched by merges); the
        # frame ledger fault recovery and lost-mass accounting rely on.
        self.n_own_ = 0
        # Meta dict carried by the checkpoint this instance was restored
        # from (None when the instance was constructed normally).
        self.restored_meta_: Optional[Dict[str, Any]] = None

    # -- accumulation -------------------------------------------------------

    def _initialize(self, x: np.ndarray) -> None:
        n = x.shape[1]
        self.n_features_in_ = n
        rngs = spawn_generators(self.seed, self.n_projections)
        states: List[_ProjectionState] = []
        for rng in rngs:
            if self.projection == "none":
                matrix = None
                projected = x
            else:
                n_rp = (
                    target_dimension(n, factor=self.projection_factor)
                    if self.n_components is None
                    else int(self.n_components)
                )
                n_rp = min(max(n_rp, 1), n)
                matrix = projection_matrix(n, n_rp, seed=rng, kind=self.projection)
                projected = project_points(x, matrix, engine=self.engine)
            if self.feature_range is not None:
                space = _projected_bounds(self.feature_range, matrix, n)
            else:
                space = SpaceRange.from_data(projected, margin=0.05).expand(
                    self.range_expand
                )
            states.append(
                _ProjectionState(
                    matrix, space, self.candidate_depths, self.key_capacity,
                    adaptive=self.adaptive,
                    drift_window=self.drift_window,
                    drift_threshold=self.drift_threshold,
                )
            )
        self._states = states

    def partial_fit(self, x: np.ndarray) -> "StreamingKeyBin2":
        """Accumulate one batch (a single point works too — M = 1 streams)."""
        x = check_array_2d(x, "X")
        if not self.fused or self._states is None:
            # The fused backends reject non-finite values per chunk (any
            # NaN/Inf input propagates to a non-finite projected
            # coordinate — IEEE inf·0 is NaN, so even a zero projection
            # weight cannot mask one), which makes a dedicated O(M·N)
            # validation pass here pure overhead on the fused path. The
            # first batch still takes it: range initialization reduces
            # over x before any kernel runs.
            check_finite(x, "X")
        if self._states is None:
            self._initialize(x)
        assert self._states is not None
        if x.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"batch has {x.shape[1]} features, stream started with "
                f"{self.n_features_in_}"
            )
        with trace.span("partial_fit"):
            if self.fused:
                self._accumulate_fused(x)
            else:
                self._accumulate_reference(x)
        self.n_seen_ += x.shape[0]
        self.n_seen_delta_ += x.shape[0]
        self.n_own_ += x.shape[0]
        reg = default_registry()
        if reg.enabled:
            reg.counter(
                "stream_points_total",
                "Points accumulated by StreamingKeyBin2.partial_fit.",
            ).inc(x.shape[0])
        return self

    def _resolve_backend(self):
        if self._backend_instance is None:
            from repro.kernels.backend import get_backend

            self._backend_instance = get_backend(self.backend)
        return self._backend_instance

    def _accumulate_fused(self, x: np.ndarray) -> None:
        """Fused accumulation: one batched GEMM per chunk for all states,
        bin + histogram + key packing in a single backend pass.

        Bit-identical to :meth:`_accumulate_reference`: the batch
        histogram is computed once and added to both the running view and
        the consolidation delta, and keys fold through the same canonical
        byte encoding with the same once-per-batch eviction cadence.

        Adaptive mode wraps the kernel in a widen-and-retry loop: results
        are batch-local, so nothing touches the accumulators until a pass
        completes with zero out-of-range entries. On any out-of-range
        event the grid widens (at least one level on every offending
        dimension — the forced progression that terminates the float
        boundary case where ``x == r_max`` floors to ``2^depth``), the
        accumulated state is exactly rebinned, and the whole batch
        re-runs on the wider grid.
        """
        from repro.kernels.fused import (
            DEFAULT_FUSED_CHUNK,
            FusedStateSpec,
            fused_partial_fit,
        )

        assert self._states is not None
        chunk = (
            DEFAULT_FUSED_CHUNK if self.engine is None else self.engine.block_size
        )

        def run():
            specs = [
                FusedStateSpec(st.matrix, st.space.r_min, st.space.r_max, st.depths)
                for st in self._states
            ]
            return fused_partial_fit(
                x, specs, backend=self._resolve_backend(), chunk_size=chunk,
                track_bounds=self.adaptive,
            )

        results = run()
        if self.adaptive:
            for st, res in zip(self._states, results):
                st.observe(res.obs_lo, res.obs_hi)
                st.feed_sketches(res.obs_lo, res.obs_hi)
            while True:
                widened = False
                for idx, (st, res) in enumerate(zip(self._states, results)):
                    oor_dims = (res.oor_low > 0) | (res.oor_high > 0)
                    if not oor_dims.any():
                        continue
                    st.oor_low += res.oor_low
                    st.oor_high += res.oor_high
                    self._note_out_of_range(idx, res.oor_low, res.oor_high)
                    if self.anticipate > 0:
                        st.observe(*st.anticipated_need(self.anticipate))
                    target = np.maximum(
                        st.target_levels(), st.levels + oor_dims.astype(np.int64)
                    )
                    if st.rebin_to(target):
                        self._note_rebin(idx)
                    widened = True
                if not widened:
                    break
                results = run()
        for idx, (state, res) in enumerate(zip(self._states, results)):
            if not self.adaptive:
                # Fixed-range mode: out-of-range rows clip into boundary
                # bins (the paper's regime) but are no longer silent.
                state.oor_low += res.oor_low
                state.oor_high += res.oor_high
                self._note_out_of_range(idx, res.oor_low, res.oor_high)
            for d in state.depths:
                state.hist[d] += res.hist[d]
                state.hist_delta[d] += res.hist[d]
            if res.key_codes is not None:
                width = state.space.n_dims
                state.keys.merge_encoded(res.key_codes, res.key_counts, width=width)
                state.keys_delta.merge_encoded(
                    res.key_codes, res.key_counts, width=width
                )
            else:
                state.keys.merge_arrays(res.key_rows, res.key_counts)
                state.keys_delta.merge_arrays(res.key_rows, res.key_counts)
            state.n_points += x.shape[0]
            self._feed_drift(idx, state, res.hist[state.depths[-1]], x.shape[0])

    def _accumulate_reference(self, x: np.ndarray) -> None:
        """Reference accumulation through the unfused kernels.

        The semantic baseline the equivalence suite pins the fused path
        against; also what runs with ``fused=False``.
        """
        assert self._states is not None
        deepest = self.candidate_depths[-1]
        for idx, state in enumerate(self._states):
            with trace.span("project"):
                projected = (
                    x if state.matrix is None
                    else project_points(x, state.matrix, engine=self.engine)
                )
            if self.adaptive:
                lo = projected.min(axis=0)
                hi = projected.max(axis=0)
                state.observe(lo, hi)
                state.feed_sketches(lo, hi)
                if state.rebin_to(state.target_levels()):
                    self._note_rebin(idx)
            with trace.span("bin"):
                # Same widen-and-retry contract as the fused path; the
                # pre-widening above covers observed extremes, so at most
                # the float boundary case (x == r_max) retries here.
                while True:
                    oor_low = np.zeros(state.space.n_dims, dtype=np.int64)
                    oor_high = np.zeros(state.space.n_dims, dtype=np.int64)
                    deep = bin_indices(
                        projected, state.space.r_min, state.space.r_max,
                        deepest, engine=self.engine,
                        oor_low=oor_low, oor_high=oor_high,
                    )
                    oor_dims = (oor_low > 0) | (oor_high > 0)
                    if oor_dims.any():
                        state.oor_low += oor_low
                        state.oor_high += oor_high
                        self._note_out_of_range(idx, oor_low, oor_high)
                    if not self.adaptive or not oor_dims.any():
                        break
                    if self.anticipate > 0:
                        state.observe(*state.anticipated_need(self.anticipate))
                    target = np.maximum(
                        state.target_levels(),
                        state.levels + oor_dims.astype(np.int64),
                    )
                    if state.rebin_to(target):
                        self._note_rebin(idx)
            with trace.span("histogram"):
                for d in state.depths:
                    b = deep if d == deepest else prefix_bins(deep, deepest, d)
                    accumulate_histogram(
                        b, 1 << d, out=state.hist[d], engine=self.engine
                    )
                    accumulate_histogram(
                        b, 1 << d, out=state.hist_delta[d], engine=self.engine
                    )
            with trace.span("keys"):
                deep_u8 = deep.astype(np.uint8)
                state.keys.update(deep_u8)
                state.keys_delta.update(deep_u8)
            state.n_points += x.shape[0]
            if state.drift is not None:
                batch_hist = np.zeros_like(state.hist[deepest])
                accumulate_histogram(
                    deep, 1 << deepest, out=batch_hist, engine=self.engine
                )
                self._feed_drift(idx, state, batch_hist, x.shape[0])

    # -- adaptive/drift telemetry ------------------------------------------

    def _note_rebin(self, idx: int) -> None:
        reg = default_registry()
        if reg.enabled:
            reg.counter(
                "stream_rebin_total",
                "Adaptive grid rebin (range-widening) events per projection.",
                ("projection",),
            ).labels(projection=str(idx)).inc()

    def _note_out_of_range(
        self, idx: int, oor_low: np.ndarray, oor_high: np.ndarray
    ) -> None:
        reg = default_registry()
        if not reg.enabled:
            return
        counter = reg.counter(
            "stream_out_of_range_total",
            "Rows whose pre-clip bin index fell outside the grid, by "
            "projected dimension and side.",
            ("projection", "dim", "side"),
        )
        for j in np.flatnonzero(oor_low):
            counter.labels(
                projection=str(idx), dim=str(int(j)), side="low"
            ).inc(int(oor_low[j]))
        for j in np.flatnonzero(oor_high):
            counter.labels(
                projection=str(idx), dim=str(int(j)), side="high"
            ).inc(int(oor_high[j]))

    def _feed_drift(
        self, idx: int, state: _ProjectionState, batch_deep_hist: np.ndarray,
        n_rows: int,
    ) -> None:
        if state.drift is None:
            return
        score = state.drift.update(batch_deep_hist, n_rows)
        if score is not None:
            reg = default_registry()
            if reg.enabled:
                reg.gauge(
                    "stream_drift_score",
                    "Latest reference/current window TV divergence per "
                    "projection.",
                    ("projection",),
                ).labels(projection=str(idx)).set(float(score))

    @property
    def drift_detectors(self) -> List[Optional[WindowDriftDetector]]:
        """Per-projection drift detectors (empty before the first batch;
        entries are None when ``drift_window`` is 0)."""
        if self._states is None:
            return []
        return [st.drift for st in self._states]

    # -- consolidation ---------------------------------------------------------

    def refresh(self, publish_to=None) -> "StreamingKeyBin2":
        """Re-partition the accumulated histograms and install the best model.

        Parameters
        ----------
        publish_to:
            Optional :class:`repro.serve.ModelRegistry` (or anything with a
            ``publish(model)`` method). When given, the freshly consolidated
            model is atomically hot-swapped into the registry, so an online
            server keeps answering from the previous version until the new
            one is fully installed.
        """
        if self._states is None or self.n_seen_ == 0:
            raise NotFittedError("no data accumulated; call partial_fit first")
        with trace.span("refresh"):
            best_model, fallback = self._refresh_models()
        self.model_ = best_model if best_model is not None else fallback
        reg = default_registry()
        if reg.enabled:
            reg.counter(
                "stream_refreshes_total",
                "StreamingKeyBin2.refresh consolidations performed.",
            ).inc()
            # Edge-bin saturation: the share of deepest-depth mass sitting
            # in boundary bins. On a fixed grid a high value means the
            # range is clipping real structure (the obs report warns);
            # adaptive mode keeps it near the natural tail mass.
            gauge = reg.gauge(
                "stream_edge_bin_fraction",
                "Fraction of deepest-depth histogram mass in boundary bins, "
                "per projection.",
                ("projection",),
            )
            deepest = self.candidate_depths[-1]
            for idx, st in enumerate(self._states):
                h = st.hist[deepest]
                total = int(h.sum())
                if total:
                    edge = int(h[:, 0].sum() + h[:, -1].sum())
                    gauge.labels(projection=str(idx)).set(edge / total)
        if publish_to is not None and self.model_ is not None:
            publish_to.publish(self.model_)
        return self

    def _refresh_models(self):
        """Score every (projection, depth) candidate; return (best, fallback)."""
        assert self._states is not None
        deepest = self.candidate_depths[-1]
        best_model: Optional[KeyBin2Model] = None
        fallback: Optional[KeyBin2Model] = None
        for trial, state in enumerate(self._states):
            with trace.span("collapse"):
                if self.collapse:
                    kept = collapse_dimensions(
                        state.hist[deepest],
                        uniform_threshold=self.uniform_threshold,
                        min_support_bins=self.min_support_bins,
                    )
                else:
                    kept = np.ones(state.space.n_dims, dtype=bool)
            deep_keys, key_counts = state.keys.to_arrays()
            for d in self.candidate_depths:
                counts_kept = state.hist[d][kept]
                cuts = [
                    find_cuts(
                        counts_kept[j],
                        n_points=state.n_points,
                        min_prominence=self.min_cut_prominence,
                    )
                    for j in range(counts_kept.shape[0])
                ]
                partition = PrimaryPartition(d, cuts)
                if deep_keys.size:
                    bins_d = deep_keys[:, kept].astype(np.int32) >> (deepest - d)
                    intervals = partition.intervals_for(bins_d)
                    codes = partition.cell_codes(intervals)
                    uniq_codes, inverse = np.unique(codes, return_inverse=True)
                    sizes = np.zeros(uniq_codes.size, dtype=np.int64)
                    np.add.at(sizes, inverse, key_counts)
                    table = GlobalClusterTable(uniq_codes, sizes)
                else:  # no keys survived (pathological capacity)
                    table = GlobalClusterTable(np.empty(0, dtype=np.int64))
                cell_intervals = partition.decode_cells(table.codes)
                score = histogram_ch_index(counts_kept, partition.cuts, cell_intervals)
                model = KeyBin2Model(
                    projection=state.matrix,
                    space=state.space,
                    partition=partition,
                    kept_dims=kept,
                    table=table,
                    score=score,
                    depth=d,
                    n_points_fit=state.n_points,
                    meta={
                        "trial": trial,
                        "streaming": True,
                        "evicted_points": state.keys.evicted_points,
                    },
                )
                if table.n_clusters >= 2:
                    if best_model is None or score > best_model.score:
                        best_model = model
                elif fallback is None:
                    fallback = model
        return best_model, fallback

    # -- checkpointing -------------------------------------------------------

    _CKPT_FORMAT = "keybin2-stream-state"
    # Version 2 adds the adaptive-grid and drift fields (base bounds,
    # chain levels, need envelope, epoch, OOR ledger, sketches, detector
    # windows). Version-1 checkpoints still load: every new field defaults
    # to its fixed-range value (levels 0, need == space, no detector).
    _CKPT_VERSION = 2
    _CKPT_MAGIC = b"KB2SCKPT"

    _CONFIG_FIELDS = (
        "n_projections", "n_components", "candidate_depths", "projection",
        "projection_factor", "range_expand", "feature_range", "collapse",
        "uniform_threshold", "min_support_bins", "min_cut_prominence",
        "key_capacity", "fused", "backend", "adaptive", "drift_window",
        "drift_threshold", "anticipate",
    )

    def state_dict(self) -> Dict[str, Any]:
        """Complete accumulated state as plain python + numpy.

        Everything ``partial_fit``/``refresh``/``predict`` depend on is
        captured: configuration, per-projection matrices and ranges (the
        entire consumption of the seed's RNG stream), histograms, deltas,
        the own-history ledgers, and key-counter tables. The fitted
        ``model_`` is deliberately excluded — ``refresh()`` rebuilds it
        deterministically from the histograms.
        """
        config = {name: getattr(self, name) for name in self._CONFIG_FIELDS}
        # Backend instances are process-local (scratch buffers); persist the
        # name so the restored instance re-resolves an equivalent backend.
        if not isinstance(config["backend"], (str, type(None))):
            config["backend"] = getattr(config["backend"], "name", None)
        # The seed is provenance only (matrices/ranges are stored), but a
        # plain seed is kept so a restored instance reports its origin.
        config["seed"] = self.seed if isinstance(self.seed, (int, type(None))) else None
        states = None
        if self._states is not None:
            states = []
            for st in self._states:
                states.append({
                    "matrix": st.matrix,
                    "r_min": st.space.r_min,
                    "r_max": st.space.r_max,
                    "depths": st.depths,
                    "key_capacity": st.key_capacity,
                    "hist": {d: st.hist[d] for d in st.depths},
                    "hist_delta": {d: st.hist_delta[d] for d in st.depths},
                    "hist_local": {d: st.hist_local[d] for d in st.depths},
                    "keys": st.keys.state_dict(),
                    "keys_delta": st.keys_delta.state_dict(),
                    "keys_local": st.keys_local.state_dict(),
                    "n_points": st.n_points,
                    # v2 adaptive-grid / drift fields.
                    "base_r_min": st.base_space.r_min,
                    "base_r_max": st.base_space.r_max,
                    "levels": st.levels,
                    "need_lo": st.need_lo,
                    "need_hi": st.need_hi,
                    "bin_epoch": st.bin_epoch,
                    "rebin_count": st.rebin_count,
                    "oor_low": st.oor_low,
                    "oor_high": st.oor_high,
                    "sketches": (
                        None if st.sketches is None
                        else [sk.state_dict() for sk in st.sketches]
                    ),
                    "drift": None if st.drift is None else st.drift.state_dict(),
                })
        return {
            "format": self._CKPT_FORMAT,
            "version": self._CKPT_VERSION,
            "config": config,
            "n_seen": self.n_seen_,
            "n_seen_delta": self.n_seen_delta_,
            "n_own": self.n_own_,
            "n_features_in": getattr(self, "n_features_in_", None),
            "states": states,
        }

    def save_state(self, path, meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically checkpoint the streaming state to ``path``.

        Crash-consistent like :meth:`KeyBin2Model.save`: the payload goes
        to a temporary file in the target directory, is fsynced, then
        ``os.replace``d into place — a write interrupted at any point
        leaves the previous checkpoint untouched. The payload carries a
        magic header, a format version, and a SHA-256 digest, so
        :meth:`load_state` detects truncation or corruption instead of
        deserializing garbage. ``meta`` is an optional plain dict stored
        verbatim (round counters, chunk cursors, …) and surfaced as
        ``restored_meta_`` on load.
        """
        import hashlib
        import os
        import pickle
        import struct
        import tempfile
        from pathlib import Path

        payload = dict(self.state_dict())
        payload["meta"] = dict(meta) if meta else {}
        blob = pickle.dumps(payload, protocol=4)
        digest = hashlib.sha256(blob).digest()
        header = (
            self._CKPT_MAGIC
            + struct.pack("<I", self._CKPT_VERSION)
            + digest
            + struct.pack("<Q", len(blob))
        )
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header)
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load_state(cls, path, engine: Optional[KernelEngine] = None
                   ) -> "StreamingKeyBin2":
        """Restore a checkpoint written by :meth:`save_state`.

        The restored instance is bit-identical in behavior: the next
        ``partial_fit`` produces the same histograms, key counters and —
        after ``refresh()`` — the same labels as the uninterrupted run.
        Raises :class:`~repro.errors.CheckpointError` on a missing,
        truncated, corrupt, or future-versioned file.
        """
        import hashlib
        import pickle
        import struct
        from pathlib import Path

        from repro.errors import CheckpointError

        head_len = len(cls._CKPT_MAGIC) + 4 + 32 + 8
        try:
            raw = Path(path).read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if len(raw) < head_len or not raw.startswith(cls._CKPT_MAGIC):
            raise CheckpointError(f"{path} is not a streaming checkpoint")
        off = len(cls._CKPT_MAGIC)
        (version,) = struct.unpack_from("<I", raw, off)
        if version > cls._CKPT_VERSION:
            raise CheckpointError(
                f"{path} has checkpoint version {version}; this build reads "
                f"<= {cls._CKPT_VERSION}"
            )
        digest = raw[off + 4 : off + 36]
        (blob_len,) = struct.unpack_from("<Q", raw, off + 36)
        blob = raw[head_len : head_len + blob_len]
        if len(blob) != blob_len or hashlib.sha256(blob).digest() != digest:
            raise CheckpointError(
                f"{path} is truncated or corrupt (integrity check failed)"
            )
        payload = pickle.loads(blob)
        if payload.get("format") != cls._CKPT_FORMAT:
            raise CheckpointError(f"{path} carries unknown format "
                                  f"{payload.get('format')!r}")
        config = dict(payload["config"])
        seed = config.pop("seed", None)
        skb = cls(seed=seed, engine=engine, **config)
        skb.n_seen_ = int(payload["n_seen"])
        skb.n_seen_delta_ = int(payload["n_seen_delta"])
        skb.n_own_ = int(payload["n_own"])
        if payload["n_features_in"] is not None:
            skb.n_features_in_ = int(payload["n_features_in"])
        if payload["states"] is not None:
            states: List[_ProjectionState] = []
            for sd in payload["states"]:
                space = SpaceRange(sd["r_min"], sd["r_max"])
                st = _ProjectionState(
                    sd["matrix"],
                    space,
                    sd["depths"],
                    sd["key_capacity"],
                    adaptive=skb.adaptive,
                )
                for d in st.depths:
                    st.hist[d] = np.asarray(sd["hist"][d], dtype=np.int64)
                    st.hist_delta[d] = np.asarray(sd["hist_delta"][d], dtype=np.int64)
                    st.hist_local[d] = np.asarray(sd["hist_local"][d], dtype=np.int64)
                st.keys = KeyCounter.from_state_dict(sd["keys"])
                st.keys_delta = KeyCounter.from_state_dict(sd["keys_delta"])
                st.keys_local = KeyCounter.from_state_dict(sd["keys_local"])
                st.n_points = int(sd["n_points"])
                # v2 adaptive/drift fields; v1 checkpoints fall back to the
                # fixed-range interpretation (level-0 grid == the stored
                # space, need envelope == the grid, no sketches/detector).
                if sd.get("base_r_min") is not None:
                    st.base_space = SpaceRange(sd["base_r_min"], sd["base_r_max"])
                st.levels = np.asarray(
                    sd.get("levels", np.zeros(space.n_dims)), dtype=np.int64
                )
                st.need_lo = np.asarray(
                    sd.get("need_lo", space.r_min), dtype=np.float64
                ).copy()
                st.need_hi = np.asarray(
                    sd.get("need_hi", space.r_max), dtype=np.float64
                ).copy()
                st.bin_epoch = int(sd.get("bin_epoch", 0))
                st.rebin_count = int(sd.get("rebin_count", 0))
                st.oor_low = np.asarray(
                    sd.get("oor_low", np.zeros(space.n_dims)), dtype=np.int64
                ).copy()
                st.oor_high = np.asarray(
                    sd.get("oor_high", np.zeros(space.n_dims)), dtype=np.int64
                ).copy()
                sketches = sd.get("sketches")
                if sketches is not None:
                    st.sketches = [
                        TailSketch.from_state_dict(s) for s in sketches
                    ]
                drift_sd = sd.get("drift")
                if drift_sd is not None:
                    st.drift = WindowDriftDetector.from_state_dict(drift_sd)
                elif skb.drift_window <= 0:
                    st.drift = None
                states.append(st)
            skb._states = states
        skb.restored_meta_ = dict(payload.get("meta", {}))
        return skb

    # -- inference -----------------------------------------------------------------

    @property
    def n_clusters_(self) -> int:
        if self.model_ is None:
            raise NotFittedError("call refresh() before reading n_clusters_")
        return self.model_.n_clusters

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Label points with the current model (−1 = cell unseen so far)."""
        if self.model_ is None:
            raise NotFittedError("call refresh() before predict()")
        return self.model_.predict(x, engine=self.engine)
