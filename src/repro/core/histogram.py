"""Binning histograms (paper §3, steps 2–3).

A :class:`HistogramSet` holds, for each requested depth ``d``, an
``(n_dims × 2^d)`` table of bin counts. It is the *entire* state that ever
leaves a data site: histogram sets merge by addition (associative and
commutative, so any reduction topology — master/worker, ring, tree — gives
the same result), and they flatten to a single int64 buffer for
zero-copy collectives.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.binning import SpaceRange
from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices_at_depths

__all__ = ["HistogramSet"]


class HistogramSet:
    """Per-dimension, per-depth bin-count tables.

    Parameters
    ----------
    n_dims:
        Number of (projected) dimensions.
    depths:
        Bin-tree depths to maintain; depth ``d`` has ``2^d`` bins. The paper
        keeps several depths because bin width is the accuracy/robustness
        trade-off (§3.2) and the bootstrap picks the best one.
    """

    def __init__(self, n_dims: int, depths: Sequence[int]):
        if n_dims < 1:
            raise ValidationError(f"n_dims must be >= 1, got {n_dims}")
        depths = sorted(set(int(d) for d in depths))
        if not depths:
            raise ValidationError("depths must be non-empty")
        if depths[0] < 1 or depths[-1] > 31:
            raise ValidationError(f"depths must lie in [1, 31], got {depths}")
        self.n_dims = int(n_dims)
        self.depths: Tuple[int, ...] = tuple(depths)
        self.counts: Dict[int, np.ndarray] = {
            d: np.zeros((n_dims, 1 << d), dtype=np.int64) for d in depths
        }

    # -- construction -------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        x_projected: np.ndarray,
        space: SpaceRange,
        depths: Sequence[int],
        engine: Optional[KernelEngine] = None,
    ) -> "HistogramSet":
        """Bin projected points at every depth and accumulate the counts."""
        hist = cls(x_projected.shape[1], depths)
        hist.update(x_projected, space, engine=engine)
        return hist

    def update(
        self,
        x_projected: np.ndarray,
        space: SpaceRange,
        engine: Optional[KernelEngine] = None,
    ) -> "HistogramSet":
        """Accumulate a batch of projected points (streaming entry point)."""
        x_projected = np.asarray(x_projected, dtype=np.float64)
        if x_projected.ndim != 2 or x_projected.shape[1] != self.n_dims:
            raise ValidationError(
                f"expected (M × {self.n_dims}) points, got {x_projected.shape}"
            )
        if space.n_dims != self.n_dims:
            raise ValidationError("space range dimensionality mismatch")
        if x_projected.shape[0] == 0:
            return self
        bins = bin_indices_at_depths(
            x_projected, space.r_min, space.r_max, self.depths, engine=engine
        )
        for d, b in bins.items():
            accumulate_histogram(b, 1 << d, out=self.counts[d], engine=engine)
        return self

    def add_counts(self, depth: int, counts: np.ndarray) -> "HistogramSet":
        """Accumulate raw counts (e.g. received from a peer) at one depth."""
        counts = np.asarray(counts, dtype=np.int64)
        if depth not in self.counts:
            raise ValidationError(f"depth {depth} not tracked by this set")
        if counts.shape != self.counts[depth].shape:
            raise ValidationError(
                f"counts shape {counts.shape} != {self.counts[depth].shape}"
            )
        if np.any(counts < 0):
            raise ValidationError("histogram counts must be non-negative")
        self.counts[depth] += counts
        return self

    # -- algebra -------------------------------------------------------------

    def merge(self, other: "HistogramSet") -> "HistogramSet":
        """In-place elementwise addition of another compatible set."""
        if not isinstance(other, HistogramSet):
            raise ValidationError("can only merge another HistogramSet")
        if other.n_dims != self.n_dims or other.depths != self.depths:
            raise ValidationError(
                "histogram sets must have identical dims and depths to merge"
            )
        for d in self.depths:
            self.counts[d] += other.counts[d]
        return self

    def __add__(self, other: "HistogramSet") -> "HistogramSet":
        out = self.copy()
        return out.merge(other)

    def copy(self) -> "HistogramSet":
        out = HistogramSet(self.n_dims, self.depths)
        for d in self.depths:
            out.counts[d] = self.counts[d].copy()
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramSet):
            return NotImplemented
        return (
            self.n_dims == other.n_dims
            and self.depths == other.depths
            and all(np.array_equal(self.counts[d], other.counts[d]) for d in self.depths)
        )

    # -- queries --------------------------------------------------------------

    def total_count(self, depth: Optional[int] = None) -> int:
        """Number of points accumulated (identical across depths)."""
        d = self.depths[0] if depth is None else depth
        return int(self.counts[d][0].sum())

    def density(self, depth: int) -> np.ndarray:
        """Normalized (n_dims × 2^depth) float densities; zeros if empty."""
        c = self.counts[depth]
        total = c.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            dens = np.where(total > 0, c / np.maximum(total, 1), 0.0)
        return dens

    def nbytes(self) -> int:
        """Wire size — what one rank ships per consolidation round."""
        return int(sum(c.nbytes for c in self.counts.values()))

    # -- wire format ------------------------------------------------------------

    def to_buffer(self) -> np.ndarray:
        """Flatten all depth tables into one int64 vector (for allreduce)."""
        return np.concatenate([self.counts[d].ravel() for d in self.depths])

    @classmethod
    def buffer_length(cls, n_dims: int, depths: Sequence[int]) -> int:
        depths = sorted(set(int(d) for d in depths))
        return int(sum(n_dims * (1 << d) for d in depths))

    @classmethod
    def from_buffer(
        cls, buf: np.ndarray, n_dims: int, depths: Sequence[int]
    ) -> "HistogramSet":
        """Inverse of :meth:`to_buffer`."""
        hist = cls(n_dims, depths)
        buf = np.asarray(buf, dtype=np.int64).ravel()
        expected = cls.buffer_length(n_dims, depths)
        if buf.shape[0] != expected:
            raise ValidationError(
                f"buffer length {buf.shape[0]} != expected {expected}"
            )
        offset = 0
        for d in hist.depths:
            size = n_dims * (1 << d)
            hist.counts[d] = buf[offset : offset + size].reshape(n_dims, 1 << d).copy()
            offset += size
        return hist
