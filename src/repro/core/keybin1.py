"""KeyBin version 1 — the predecessor algorithm (Chen et al., CLUSTER'17).

Kept as an ablation baseline: it demonstrates the three limitations KeyBin2
fixes (§1). Differences from KeyBin2:

* **no random projection** — bins the original dimensions directly, so
  correlated clusters whose 1-D projections overlap cannot be separated;
* **density-threshold partitioning** — a bin belongs to a dense region when
  its count exceeds ``density_threshold`` × the dimension's peak; cuts fall
  midway between dense regions. Not robust when densities are hard to
  estimate (streams, skewed clusters);
* **no bootstrap / model assessment** — the first (only) binning is final.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.binning import SpaceRange
from repro.core.model import KeyBin2Model
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.errors import NotFittedError, ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices
from repro.util.validation import check_array_2d, check_finite

__all__ = ["KeyBin1", "threshold_cuts"]


def threshold_cuts(counts: np.ndarray, density_threshold: float = 0.05) -> np.ndarray:
    """KeyBin1's partitioning heuristic.

    Bins with count ≥ ``density_threshold · max(counts)`` are *dense*;
    maximal dense runs are regions, and a cut is placed at the midpoint of
    every gap between consecutive regions.
    """
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if counts.size == 0:
        raise ValidationError("counts must be non-empty")
    if not (0.0 < density_threshold <= 1.0):
        raise ValidationError("density_threshold must be in (0, 1]")
    peak = counts.max()
    if peak <= 0:
        return np.empty(0, dtype=np.int64)
    dense = counts >= density_threshold * peak
    # Region boundaries: starts and ends of dense runs.
    padded = np.concatenate([[False], dense, [False]])
    starts = np.flatnonzero(padded[1:] & ~padded[:-1])
    ends = np.flatnonzero(~padded[1:] & padded[:-1]) - 1
    cuts: List[int] = []
    for i in range(len(starts) - 1):
        gap_lo, gap_hi = ends[i], starts[i + 1]
        cuts.append(int((gap_lo + gap_hi) // 2))
    return np.array(
        [c for c in cuts if 0 <= c < counts.size - 1], dtype=np.int64
    )


class KeyBin1:
    """The original key-based binning clusterer.

    Parameters
    ----------
    depth:
        Fixed bin-tree depth (no depth search).
    density_threshold:
        The partitioning heuristic's knob.
    range_margin:
        Fractional padding of the measured range.

    Attributes (after fit): ``model_``, ``labels_``, ``n_clusters_``.
    """

    def __init__(
        self,
        depth: int = 5,
        density_threshold: float = 0.05,
        range_margin: float = 0.05,
        engine: Optional[KernelEngine] = None,
    ):
        if depth < 1 or depth > 31:
            raise ValidationError("depth must be in [1, 31]")
        self.depth = int(depth)
        self.density_threshold = float(density_threshold)
        self.range_margin = float(range_margin)
        self.engine = engine
        self.model_: Optional[KeyBin2Model] = None
        self.labels_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "KeyBin1":
        x = check_array_2d(x, "X", min_rows=2)
        check_finite(x, "X")
        m, n = x.shape
        self.n_features_in_ = n
        space = SpaceRange.from_data(x, margin=self.range_margin)
        bins = bin_indices(x, space.r_min, space.r_max, self.depth, engine=self.engine)
        counts = accumulate_histogram(bins, 1 << self.depth, engine=self.engine)
        cuts = [
            threshold_cuts(counts[j], self.density_threshold) for j in range(n)
        ]
        partition = PrimaryPartition(self.depth, cuts)
        intervals = partition.intervals_for(bins)
        codes = partition.cell_codes(intervals)
        table = GlobalClusterTable.from_points(codes)
        self.labels_ = table.lookup(codes)
        self.model_ = KeyBin2Model(
            projection=None,
            space=space,
            partition=partition,
            kept_dims=np.ones(n, dtype=bool),
            table=table,
            score=float("nan"),  # KeyBin1 performs no model assessment
            depth=self.depth,
            n_points_fit=m,
            meta={"algorithm": "keybin1"},
        )
        self.n_clusters_ = table.n_clusters
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise NotFittedError("KeyBin1 instance is not fitted; call fit() first")
        return self.model_.predict(x, engine=self.engine)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_
