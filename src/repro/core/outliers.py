"""Key-space anomaly detection.

The paper's introduction motivates KeyBin-style analysis for "clustering,
pattern recognition, and anomaly detection, all considering and
constraining data movement". The fitted model already contains everything
an occupancy-based detector needs: the occupied-cell table with per-cell
densities. A point is anomalous when its key maps to a cell that is empty
or nearly empty relative to the training mass — no distances, no extra
passes over the data, and scoring works anywhere the (tiny) model has been
broadcast.

Scores are ``-log10`` relative cell frequencies, so they grow with rarity;
points in cells never seen during fit get the maximum score.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.model import KeyBin2Model
from repro.errors import NotFittedError, ValidationError

__all__ = ["KeyOutlierDetector"]


class KeyOutlierDetector:
    """Occupancy-based outlier scoring on a fitted KeyBin2 model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.model.KeyBin2Model` whose table
        carries cell sizes (models fitted by this library always do).
    contamination:
        Expected outlier fraction; sets the decision threshold at the
        corresponding quantile of the *training* score distribution.

    Examples
    --------
    >>> from repro import KeyBin2
    >>> from repro.core.outliers import KeyOutlierDetector
    >>> kb = KeyBin2(seed=0).fit(X)                     # doctest: +SKIP
    >>> det = KeyOutlierDetector(kb.model_)             # doctest: +SKIP
    >>> mask = det.predict(X_new)                       # doctest: +SKIP
    """

    def __init__(self, model: KeyBin2Model, contamination: float = 0.01):
        if model.table.sizes is None:
            raise ValidationError(
                "model's cluster table has no cell sizes; refit with this "
                "library's estimators"
            )
        if not (0.0 < contamination < 0.5):
            raise ValidationError("contamination must be in (0, 0.5)")
        self.model = model
        self.contamination = float(contamination)
        total = float(model.table.sizes.sum())
        if total <= 0:
            raise ValidationError("model was fitted on no points")
        # Score per known cell: -log10 relative frequency.
        self._cell_scores = -np.log10(model.table.sizes / total)
        #: Score assigned to never-seen cells — strictly above any known cell.
        self.unseen_score = float(self._cell_scores.max() + 1.0)
        # Threshold from the training occupancy distribution: expand cell
        # scores by their sizes to get the per-training-point distribution.
        per_point = np.repeat(self._cell_scores, model.table.sizes)
        self.threshold_ = float(
            np.quantile(per_point, 1.0 - self.contamination)
        )

    def score(self, x: np.ndarray) -> np.ndarray:
        """Anomaly score per point (higher = rarer)."""
        codes = self.model.cell_codes_for(x)
        labels = self.model.table.lookup(codes)
        out = np.full(labels.shape, self.unseen_score, dtype=np.float64)
        known = labels >= 0
        out[known] = self._cell_scores[labels[known]]
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Boolean outlier mask at the fitted threshold."""
        return self.score(x) > self.threshold_

    def score_threshold(self, quantile: float) -> float:
        """Score value at a given training quantile (for custom policies)."""
        if not (0.0 < quantile < 1.0):
            raise ValidationError("quantile must be in (0, 1)")
        per_point = np.repeat(self._cell_scores, self.model.table.sizes)
        return float(np.quantile(per_point, quantile))
