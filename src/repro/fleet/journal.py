"""Crash-safe rollout journal and the recovery pass that replays it.

The staged rollout (:mod:`repro.fleet.rollout`) is a distributed state
machine driven from one process — the router. Before this journal, that
process was a single point of *amnesia*: a router killed mid-rollout left
the fleet mixed-version with no durable record of what was being rolled
out, from where, or how far it got; and a replica restarted afterwards
was pointed back at the original ``--model`` artifact, reintroducing the
exact split-brain the rollout's fingerprint-convergence check exists to
prevent.

:class:`RolloutJournal` is the durable control state the coordinator
model (*Communication-Optimal Distributed Clustering*, PAPERS.md) says a
router may centralize: an append-only JSONL file, one fsync'd record per
state transition, written **before** the action it describes (classic
write-ahead discipline). The record sequence of one rollout::

    intent            {path, tag}            nothing has happened yet
    canary            {replica}              before the canary reloads
    canary_promoted   {replica, version, fingerprint}
    staged            {fingerprint, error_rate, probes}   <-- COMMIT POINT
    promote           {replica}              before each later reload
    artifact          {path, fingerprint, version}   new source of truth
    complete          {fingerprint}          terminal
  | rolled_back       {reason}               terminal (any earlier abort)

The **commit point** is the ``staged`` record: it is only written after
the canary baked clean on live traffic, so the new artifact is known
good. Recovery (:func:`recover_fleet`) replays the journal, probes every
replica's served fingerprint, and drives the fleet to a single version:

* open rollout with a ``staged`` record → **roll forward** (finish it);
* open rollout without one → **roll back** to the last ``artifact``;
* no open rollout → **reconcile** any replica whose fingerprint strayed
  from the last ``artifact`` record (the fleet's source of truth).

Durability details: records are fsync'd on every append (control-plane
writes are rare — a rollout is a handful of records); replay tolerates a
torn final line (a crash mid-write loses at most the record being
written, never an earlier one); rotation compacts through a temp file +
``os.replace`` + directory fsync so a crash during rotation leaves either
the old file or the new one, never a mix.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import InjectedFault, ServeError, ValidationError
from repro.obs import default_registry

__all__ = [
    "JournalError",
    "RolloutJournal",
    "RecoveryPlan",
    "plan_recovery",
    "reconcile_replica",
    "recover_fleet",
]

#: Journal file name inside the journal directory.
JOURNAL_FILE = "rollout.journal.jsonl"

#: Record types that open / close a rollout during replay.
_OPENING = "intent"
_TERMINAL = frozenset({"complete", "rolled_back"})


class JournalError(ServeError):
    """The journal could not be written or replayed coherently."""

    code = "journal_failed"


class RolloutJournal:
    """Append-only, fsync'd, atomically-rotated JSONL journal.

    Parameters
    ----------
    directory:
        Directory holding the journal (created if missing). One journal
        per fleet; the file inside is :data:`JOURNAL_FILE`.
    rotate_at:
        Auto-compact when the file exceeds this many records. Compaction
        keeps the last ``artifact`` record and any open rollout's records
        — everything recovery could ever need — and drops completed
        history.
    fsync:
        Fsync after every append (default). Tests that hammer the
        journal may disable it; production callers must not.
    crash_after:
        Fault-injection hook for crash-recovery tests: after this many
        successful appends *through this instance*, the next append
        raises :class:`~repro.errors.InjectedFault` before writing — the
        journal then holds exactly ``crash_after`` records from this
        instance, simulating a driver killed at that record boundary.
    """

    def __init__(self, directory: str, rotate_at: int = 4096,
                 fsync: bool = True, crash_after: Optional[int] = None):
        if rotate_at < 8:
            raise ValidationError("rotate_at must be >= 8")
        self.directory = str(directory)
        self.path = os.path.join(self.directory, JOURNAL_FILE)
        self.rotate_at = int(rotate_at)
        self.fsync = bool(fsync)
        self.crash_after = crash_after
        self._appended = 0  # appends through THIS instance (crash hook)
        os.makedirs(self.directory, exist_ok=True)
        existing = self.records()
        self._seq = existing[-1]["seq"] + 1 if existing else 0
        self._n_records = len(existing)

    # -- writing -------------------------------------------------------------

    def append(self, type_: str, **fields: Any) -> Dict[str, Any]:
        """Durably append one record; returns it (with ``seq``/``at``).

        The record is on disk (written, flushed, fsync'd) before this
        returns — callers may take the action the record describes.
        """
        if self.crash_after is not None and self._appended >= self.crash_after:
            raise InjectedFault(
                f"journal crash injected before record {self._appended + 1} "
                f"(crash_after={self.crash_after})"
            )
        record = {"seq": self._seq, "at": time.time(), "type": str(type_),
                  **fields}
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            with open(self.path, "ab") as fh:
                fh.write(line.encode("utf-8"))
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot append to rollout journal {self.path}: {exc}"
            ) from exc
        self._seq += 1
        self._appended += 1
        self._n_records += 1
        if self._n_records > self.rotate_at:
            self.rotate()
        return record

    def set_artifact(self, path: str, fingerprint: str,
                     version: Optional[int] = None) -> Dict[str, Any]:
        """Record the fleet's current artifact — the source of truth.

        Written at fleet bootstrap and after every completed rollout;
        restarted replicas reconcile to the *last* of these records.
        """
        return self.append("artifact", path=str(path),
                           fingerprint=str(fingerprint), version=version)

    def rotate(self) -> None:
        """Compact the journal atomically (temp file + rename + dir fsync).

        Keeps the last ``artifact`` record and, if a rollout is open, all
        of its records; completed-rollout history is dropped. Sequence
        numbers are preserved so replay order stays meaningful.
        """
        records = self.records()
        keep: List[Dict[str, Any]] = []
        artifact = _last_artifact(records)
        if artifact is not None:
            keep.append(artifact)
        open_r = _open_rollout(records)
        if open_r is not None:
            keep.extend(r for r in open_r["records"] if r is not artifact)
        keep.sort(key=lambda r: r["seq"])
        tmp = self.path + ".rotate.tmp"
        try:
            with open(tmp, "wb") as fh:
                for record in keep:
                    fh.write((json.dumps(record, sort_keys=True) + "\n")
                             .encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError as exc:
            raise JournalError(
                f"cannot rotate rollout journal {self.path}: {exc}"
            ) from exc
        self._n_records = len(keep)

    # -- replay --------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Replay the journal from disk, tolerating a torn final line.

        A crash mid-append can leave a partial last line; it is dropped
        (that record never committed). A torn or corrupt line anywhere
        *else* truncates replay at that point — everything before it is
        intact, which is what the fsync-per-record discipline guarantees.
        """
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise JournalError(
                f"cannot read rollout journal {self.path}: {exc}"
            ) from exc
        records: List[Dict[str, Any]] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: nothing after it committed
            if not isinstance(record, dict) or "type" not in record:
                break
            records.append(record)
        return records

    def current_artifact(self) -> Optional[Dict[str, Any]]:
        """The last ``artifact`` record — the fleet's source of truth."""
        return _last_artifact(self.records())

    def open_rollout(self) -> Optional[Dict[str, Any]]:
        """The in-flight rollout, or ``None`` if the last one terminated.

        Returns ``{"path", "tag", "staged", "fingerprint", "records"}``
        where ``staged`` says whether the commit point was journaled and
        ``fingerprint`` is the new artifact's fingerprint if known (from
        the ``staged`` or ``canary_promoted`` record).
        """
        return _open_rollout(self.records())


def _last_artifact(records: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    for record in reversed(records):
        if record["type"] == "artifact":
            return record
    return None


def _open_rollout(records: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    open_r: Optional[Dict[str, Any]] = None
    for record in records:
        type_ = record["type"]
        if type_ == _OPENING:
            open_r = {
                "path": record.get("path"),
                "tag": record.get("tag"),
                "staged": False,
                "fingerprint": None,
                "records": [record],
            }
        elif open_r is not None:
            if type_ in _TERMINAL:
                open_r = None
                continue
            open_r["records"].append(record)
            if type_ == "staged":
                open_r["staged"] = True
            if type_ in ("staged", "canary_promoted"):
                fp = record.get("fingerprint")
                if fp is not None:
                    open_r["fingerprint"] = fp
    return open_r


# -- recovery planning -------------------------------------------------------


@dataclass
class RecoveryPlan:
    """What a recovery pass decided to do, before doing it.

    ``action`` is one of ``noop`` (everyone already serves the target),
    ``reconcile`` (no open rollout, but strays exist), ``roll_forward``
    (open rollout past the commit point — finish it) or ``roll_back``
    (open rollout before the commit point — undo it). ``stale`` lists the
    replicas whose probed fingerprint differs from the target and must
    reload; ``unreachable`` the ones that could not be probed (the
    supervisor's restart reconcile catches those later).
    """

    action: str
    target_path: Optional[str]
    target_fingerprint: Optional[str]
    stale: List[str] = field(default_factory=list)
    unreachable: List[str] = field(default_factory=list)
    open_rollout: Optional[Dict[str, Any]] = None
    baseline: Optional[Dict[str, Any]] = None


def plan_recovery(records: Sequence[Dict[str, Any]],
                  probed: Dict[str, Optional[str]]) -> RecoveryPlan:
    """Pure recovery decision: journal replay + probed fingerprints → plan.

    ``probed`` maps replica id → served ``model-info`` fingerprint
    (``None`` for a replica that did not answer). Raises
    :class:`JournalError` when a rollback is required but the journal
    never recorded a baseline ``artifact`` — there is nothing safe to
    converge to and an operator must intervene.
    """
    baseline = _last_artifact(records)
    open_r = _open_rollout(records)
    if open_r is not None and open_r["staged"]:
        action = "roll_forward"
        target_path = open_r["path"]
        target_fp = open_r["fingerprint"]
    elif open_r is not None:
        if baseline is None:
            raise JournalError(
                "journal holds an uncommitted rollout but no baseline "
                "'artifact' record to roll back to; refusing to guess"
            )
        action = "roll_back"
        target_path = baseline["path"]
        target_fp = baseline["fingerprint"]
    else:
        if baseline is None:
            return RecoveryPlan("noop", None, None,
                                unreachable=[r for r, fp in probed.items()
                                             if fp is None])
        action = "reconcile"
        target_path = baseline["path"]
        target_fp = baseline["fingerprint"]
    stale = sorted(r for r, fp in probed.items()
                   if fp is not None and fp != target_fp)
    unreachable = sorted(r for r, fp in probed.items() if fp is None)
    if action == "reconcile" and not stale:
        action = "noop"
    return RecoveryPlan(action, target_path, target_fp, stale=stale,
                        unreachable=unreachable, open_rollout=open_r,
                        baseline=baseline)


# -- recovery driving --------------------------------------------------------


def reconcile_replica(host: str, port: int, path: str,
                      fingerprint: Optional[str],
                      timeout: float = 10.0) -> str:
    """Drive one replica to the journal's artifact; returns its fingerprint.

    Probe ``model-info``; if the served fingerprint already matches,
    done. Otherwise ``reload`` the artifact and verify the fingerprint
    landed. Raises :class:`~repro.errors.ServeError` when the replica
    cannot be driven to the target — callers must NOT readmit it.
    """
    from repro.serve.client import ServeClient

    with ServeClient(host, port, timeout=timeout) as client:
        served = str(client.model_info().get("fingerprint"))
        if fingerprint is not None and served == fingerprint:
            return served
        client.reload(path)
        served = str(client.model_info().get("fingerprint"))
    if fingerprint is not None and served != fingerprint:
        raise ServeError(
            f"replica {host}:{port} still serves fingerprint {served!r} "
            f"after reload of {path!r} (journal says {fingerprint!r})"
        )
    return served


def _probe_fingerprints(
    endpoints: Sequence[Tuple[str, str, int]], timeout: float
) -> Dict[str, Optional[str]]:
    from repro.errors import ConnectionLostError
    from repro.serve.client import ServeClient

    probed: Dict[str, Optional[str]] = {}
    for rid, host, port in endpoints:
        try:
            with ServeClient(host, port, timeout=timeout) as client:
                probed[rid] = str(client.model_info().get("fingerprint"))
        except (ConnectionLostError, ServeError, OSError):
            probed[rid] = None
    return probed


def recover_fleet(endpoints: Sequence[Tuple[str, str, int]],
                  journal: RolloutJournal,
                  timeout: float = 10.0) -> Dict[str, Any]:
    """Replay the journal and drive the fleet to one fingerprint.

    ``endpoints`` is ``[(replica_id, host, port), ...]`` — typically
    :meth:`~repro.fleet.replica.ReplicaSupervisor.endpoints`. The pass:

    1. probe every replica's served ``model-info`` fingerprint;
    2. :func:`plan_recovery` against the journal replay;
    3. apply: roll forward finishes an open rollout past the commit
       point (and falls back to a full roll-back if *any* replica cannot
       load the new artifact — partial forward progress would itself be
       split-brain); roll back / reconcile reload strays to the last
       ``artifact`` record;
    4. journal the terminal record so a second recovery is a no-op.

    Returns a summary dict (``action``, ``target_fingerprint``,
    ``reloaded``, ``unreachable``, ``converged``, ``fingerprints``).
    ``converged`` is true when every *reachable* replica ends on the
    target fingerprint.
    """
    probed = _probe_fingerprints(endpoints, timeout)
    plan = plan_recovery(journal.records(), probed)
    by_id = {rid: (host, port) for rid, host, port in endpoints}
    reg = default_registry()
    m_recover = reg.counter(
        "fleet_recoveries_total",
        "Journal recovery passes applied, by action (roll_forward / "
        "roll_back / reconcile / noop / roll_forward_failed).",
        ("action",),
    )

    def _drive(rids: Sequence[str], path: str,
               fingerprint: Optional[str]) -> Tuple[List[str], List[str]]:
        done: List[str] = []
        failed: List[str] = []
        for rid in rids:
            host, port = by_id[rid]
            try:
                reconcile_replica(host, port, path, fingerprint, timeout)
                done.append(rid)
            except ServeError:
                failed.append(rid)
        return done, failed

    reloaded: List[str] = []
    action = plan.action
    if plan.action == "roll_forward":
        done, failed = _drive(plan.stale, plan.target_path,
                              plan.target_fingerprint)
        reloaded += done
        if failed and plan.baseline is not None:
            # Partial forward progress is split-brain; undo everything.
            m_recover.labels(action="roll_forward_failed").inc()
            action = "roll_back"
            plan.target_path = plan.baseline["path"]
            plan.target_fingerprint = plan.baseline["fingerprint"]
            back = [rid for rid, fp in probed.items()
                    if fp is not None and fp != plan.target_fingerprint]
            back = sorted(set(back) | set(done))
            done, failed = _drive(back, plan.target_path,
                                  plan.target_fingerprint)
            reloaded = done
            journal.append("rolled_back", reason="recovery_roll_forward_failed",
                           failed=sorted(failed))
        elif failed:
            journal.append("rolled_back", reason="recovery_unresolved",
                           failed=sorted(failed))
        else:
            journal.set_artifact(plan.target_path, plan.target_fingerprint,
                                 version=None)
            journal.append("complete", fingerprint=plan.target_fingerprint,
                           recovered=True)
    elif plan.action == "roll_back":
        done, failed = _drive(plan.stale, plan.target_path,
                              plan.target_fingerprint)
        reloaded += done
        journal.append("rolled_back", reason="recovery_pre_commit",
                       failed=sorted(failed))
    elif plan.action == "reconcile":
        done, failed = _drive(plan.stale, plan.target_path,
                              plan.target_fingerprint)
        reloaded += done
    m_recover.labels(action=action).inc()

    final = _probe_fingerprints(endpoints, timeout)
    reachable = {fp for fp in final.values() if fp is not None}
    converged = (
        len(reachable) <= 1
        and (plan.target_fingerprint is None
             or reachable <= {plan.target_fingerprint})
    )
    return {
        "action": action,
        "target_path": plan.target_path,
        "target_fingerprint": plan.target_fingerprint,
        "reloaded": reloaded,
        "unreachable": sorted(r for r, fp in final.items() if fp is None),
        "converged": converged,
        "fingerprints": final,
    }
