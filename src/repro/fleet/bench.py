"""Fleet scaling + zero-downtime-reload benchmark (``fleet-bench`` CLI).

Two questions, answered with process-isolated replicas behind a real
router socket:

1. **Does goodput scale with replicas?** Each replica runs with an
   explicit admission budget (``--admit-rate R``), so per-replica
   capacity is a *policy*, not a guess about the host: one replica
   serves at most R predicts/s, a fleet of N at most N·R. The bench
   offers open-loop demand at ``demand_factor × N·R`` and measures
   goodput (ok responses per second). Near-linear scaling then means the
   router aggregates replica capacity without becoming the bottleneck —
   which is the property a front tier must prove, and one that holds on
   a 1-core CI runner just as it does on a 64-core host (the admission
   budget, not the CPU, is the binding constraint by construction; total
   fleet CPU stays well under one core at the default rates).
2. **Is a staged rollout invisible to clients?** A mixed open-loop load
   runs against a 3-replica fleet while the router executes a full
   canary → staged → complete rollout to a *new* model artifact.
   Acceptance: zero hard failures (``error``/``timeout`` outcomes) —
   explicit sheds are load shaping and stay allowed — and both model
   versions observed in successful responses.

Results land in ``BENCH_serve_fleet.json``; ``--check`` turns the
acceptance thresholds (2-replica scaling ≥ 1.6×, 4-replica ≥ 3×, zero
reload failures) into a process exit code for CI.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ServeError
from repro.fleet.replica import ReplicaSupervisor
from repro.fleet.router import router_in_thread
from repro.serve.client import ServeClient
from repro.serve.loadgen import LoadReport, run_open_loop

__all__ = ["run_fleet_bench", "DEFAULT_OUT_PATH"]

DEFAULT_OUT_PATH = "BENCH_serve_fleet.json"

#: Scaling acceptance floors, by fleet size (vs the 1-replica baseline).
SCALING_FLOORS = {2: 1.6, 4: 3.0}


def _hard_failures(report: LoadReport) -> int:
    """Client-visible failures: transport errors and timeouts, not sheds."""
    return report.outcomes["error"] + report.outcomes["timeout"]


def _fit_demo_models(workdir: str, seed: int):
    """Fit two same-shape models (v1 to serve, v2 to roll out); save both."""
    from repro.core.estimator import KeyBin2
    from repro.data.gaussians import gaussian_mixture

    x, _ = gaussian_mixture(n_points=2000, n_dims=16, n_clusters=4, seed=seed)
    v1 = KeyBin2(n_projections=4, seed=seed).fit(x).model_
    v2 = KeyBin2(n_projections=4, seed=seed + 1).fit(x).model_
    p1 = os.path.join(workdir, "fleet_bench_v1.json")
    p2 = os.path.join(workdir, "fleet_bench_v2.json")
    v1.save(p1)
    v2.save(p2)
    return p1, p2, x


def _report_row(n: int, offered: float, report: LoadReport) -> Dict[str, Any]:
    q = report.latency_quantiles()
    return {
        "replicas": n,
        "offered_rps": round(offered, 1),
        "goodput_rps": round(report.throughput_rps, 1),
        "requests_sent": report.requests_sent,
        "requests_ok": report.requests_ok,
        "shed": report.shed_total,
        "hard_failures": _hard_failures(report),
        "p50_ms": round(q["p50"] * 1e3, 3),
        "p99_ms": round(q["p99"] * 1e3, 3),
    }


def _run_fleet_load(
    model_path: str,
    n_replicas: int,
    admit_rate: float,
    demand_factor: float,
    duration_s: float,
    points: np.ndarray,
    seed: int,
) -> Dict[str, Any]:
    """One scaling point: N capped replicas, open-loop overdemand, goodput."""
    offered = demand_factor * admit_rate * n_replicas
    with ReplicaSupervisor(
        model_path,
        n_replicas=n_replicas,
        mode="process",
        extra_args=["--admit-rate", str(admit_rate),
                    "--admit-burst", str(int(admit_rate))],
    ) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, seed=seed) as handle:
            host, port = handle.address
            report = run_open_loop(
                host, port, points,
                rate=offered, duration_s=duration_s,
                n_connections=max(16, 8 * n_replicas),
                request_timeout_s=10.0,
            )
    row = _report_row(n_replicas, offered, report)
    if report.errors:
        row["first_errors"] = report.errors[:3]
    return row


def _run_reload_under_load(
    model_path: str,
    new_model_path: str,
    n_replicas: int,
    admit_rate: float,
    duration_s: float,
    points: np.ndarray,
    seed: int,
) -> Dict[str, Any]:
    """Staged rollout mid-traffic; returns the combined verdict."""
    with ReplicaSupervisor(
        model_path,
        n_replicas=n_replicas,
        mode="process",
        extra_args=["--admit-rate", str(admit_rate),
                    "--admit-burst", str(int(admit_rate))],
    ) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, seed=seed) as handle:
            host, port = handle.address
            result: Dict[str, Any] = {}

            def _load() -> None:
                result["report"] = run_open_loop(
                    host, port, points,
                    rate=0.6 * admit_rate * n_replicas,
                    duration_s=duration_s,
                    n_connections=16,
                    request_timeout_s=10.0,
                )

            loader = threading.Thread(target=_load, name="fleet-bench-load")
            loader.start()
            time.sleep(max(0.5, duration_s * 0.25))  # let traffic establish
            t0 = time.perf_counter()
            with ServeClient(host, port, timeout=60.0) as admin:
                new_version = admin.reload(new_model_path, tag="fleet-bench-v2")
                status = admin.request({"op": "fleet-status"})
            rollout_s = time.perf_counter() - t0
            loader.join(timeout=duration_s + 30.0)
            if loader.is_alive():  # pragma: no cover - watchdog
                raise ServeError("fleet-bench load thread wedged")
    report: LoadReport = result["report"]
    row = _report_row(n_replicas, 0.6 * admit_rate * n_replicas, report)
    row.update({
        "new_version": new_version,
        "rollout_s": round(rollout_s, 3),
        "rollout_state": status.get("rollout"),
        "versions_seen": sorted(report.versions_seen),
        "zero_downtime": _hard_failures(report) == 0,
    })
    if report.errors:
        row["first_errors"] = report.errors[:3]
    return row


def run_fleet_bench(
    model_path: Optional[str] = None,
    out_path: Optional[str] = DEFAULT_OUT_PATH,
    fleet_sizes: Sequence[int] = (1, 2, 4),
    admit_rate: float = 250.0,
    demand_factor: float = 1.35,
    duration_s: float = 4.0,
    reload_replicas: int = 3,
    seed: int = 7,
    verbose: bool = True,
) -> Dict[str, Any]:
    """Run the full fleet bench; returns (and optionally writes) results.

    ``results["passed"]`` aggregates the acceptance thresholds; the
    ``fleet-bench --check`` CLI exits nonzero when it is false.
    """

    def say(msg: str) -> None:
        if verbose:
            print(msg, flush=True)

    with tempfile.TemporaryDirectory(prefix="fleet-bench-") as workdir:
        if model_path is None:
            say("fitting demo models (v1 to serve, v2 to roll out) ...")
            path_v1, path_v2, x = _fit_demo_models(workdir, seed)
        else:
            from repro.core.estimator import KeyBin2
            from repro.core.model import KeyBin2Model
            from repro.data.gaussians import gaussian_mixture

            path_v1 = str(model_path)
            loaded = KeyBin2Model.load(path_v1)
            n_features = (
                int(loaded.projection.shape[0])
                if loaded.projection is not None
                else int(loaded.kept_dims.size)
            )
            x, _ = gaussian_mixture(
                n_points=2000, n_dims=n_features, n_clusters=4, seed=seed
            )
            refit = KeyBin2(n_projections=4, seed=seed + 1).fit(x).model_
            path_v2 = os.path.join(workdir, "fleet_bench_v2.json")
            refit.save(path_v2)

        rng = np.random.default_rng(seed)
        points = x[rng.choice(x.shape[0], size=512, replace=False)]

        scaling_rows: List[Dict[str, Any]] = []
        for n in fleet_sizes:
            say(f"scaling: {n} replica(s) at admit-rate {admit_rate:g}/s, "
                f"offering {demand_factor * admit_rate * n:,.0f} req/s ...")
            row = _run_fleet_load(
                path_v1, n, admit_rate, demand_factor, duration_s, points,
                seed,
            )
            say(f"  goodput {row['goodput_rps']:,.1f} req/s "
                f"(ok={row['requests_ok']}, shed={row['shed']}, "
                f"hard_failures={row['hard_failures']})")
            scaling_rows.append(row)

        say(f"reload-under-load: {reload_replicas} replicas, staged rollout "
            "mid-traffic ...")
        reload_row = _run_reload_under_load(
            path_v1, path_v2, reload_replicas, admit_rate, duration_s,
            points, seed,
        )
        say(f"  rollout {reload_row['rollout_state']} in "
            f"{reload_row['rollout_s']}s, versions seen "
            f"{reload_row['versions_seen']}, hard_failures="
            f"{reload_row['hard_failures']}")

    baseline = next(
        (r for r in scaling_rows if r["replicas"] == 1), scaling_rows[0]
    )
    scaling: Dict[str, Any] = {}
    checks: List[Dict[str, Any]] = []
    for row in scaling_rows:
        n = row["replicas"]
        if n == baseline["replicas"] or baseline["goodput_rps"] <= 0:
            continue
        factor = row["goodput_rps"] / baseline["goodput_rps"]
        scaling[str(n)] = round(factor, 3)
        floor = SCALING_FLOORS.get(n)
        if floor is not None:
            checks.append({
                "check": f"goodput_scaling_{n}x",
                "floor": floor,
                "measured": round(factor, 3),
                "passed": factor >= floor,
            })
    checks.append({
        "check": "reload_zero_hard_failures",
        "floor": 0,
        "measured": reload_row["hard_failures"],
        "passed": reload_row["hard_failures"] == 0,
    })
    checks.append({
        "check": "reload_completed",
        "floor": "complete",
        "measured": reload_row["rollout_state"],
        "passed": reload_row["rollout_state"] == "complete",
    })

    results = {
        "bench": "serve_fleet",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            "fleet_sizes": list(fleet_sizes),
            "admit_rate_per_replica": admit_rate,
            "demand_factor": demand_factor,
            "duration_s": duration_s,
            "reload_replicas": reload_replicas,
            "seed": seed,
            "note": (
                "Per-replica capacity is fixed by the admission token "
                "bucket, so scaling measures fleet capacity aggregation "
                "and router overhead — not host core count. Demand is "
                "open-loop at demand_factor x aggregate capacity; the "
                "overage is shed by replica admission, by design."
            ),
        },
        "scaling_runs": scaling_rows,
        "scaling_vs_1_replica": scaling,
        "reload_under_load": reload_row,
        "checks": checks,
        "passed": all(c["passed"] for c in checks),
    }

    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=False)
            fh.write("\n")
        say(f"wrote {out_path}")
    say("fleet-bench: " + ("PASS" if results["passed"] else "FAIL"))
    return results
