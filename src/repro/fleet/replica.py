"""Replica lifecycle: spawn, monitor, kill, restart N model servers.

The :class:`ReplicaSupervisor` owns the *processes* (or threads) behind
the fleet; the router owns the *routing state*. Keeping them separate
means the router can be pointed at replicas it does not manage (remote
hosts, an orchestrator's pods) while local deployments get a complete
battery-included stack from ``python -m repro fleet``.

Two modes:

* ``process`` — each replica is a ``python -m repro serve`` subprocess
  with its own interpreter, event loop, model registry and caches. Real
  isolation: a replica can be SIGKILLed mid-request and the rest of the
  fleet (and the supervisor) does not notice beyond the router's
  failover. This is what the fleet bench and the chaos smoke use.
* ``thread`` — each replica is a :func:`~repro.serve.server.serve_in_thread`
  server inside this process. No isolation, but startup is ~1000× faster
  and tests can reach into a replica's registry directly; the unit tests
  use this.

Every replica gets a stable id (``r0``, ``r1``, ...) that survives
restarts — the consistent-hash ring hashes ids, so a restarted replica
(new port, cold cache) takes back exactly its old shard.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError, ValidationError
from repro.serve.client import probe

__all__ = ["ReplicaSupervisor"]

#: The ``serve`` CLI announces its bind as "... on HOST:PORT"; the
#: supervisor parses that line to learn an ephemeral port.
_PORT_RE = re.compile(r"\bon\s+(\S+):(\d+)\s*$")


class _Replica:
    """Internal per-replica bookkeeping (one of proc/handle is set)."""

    def __init__(self, replica_id: str):
        self.replica_id = replica_id
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.proc: Optional[subprocess.Popen] = None
        self.handle = None  # ServerHandle in thread mode
        self.registry = None  # ModelRegistry in thread mode
        self.tail: deque = deque(maxlen=50)  # last stdout lines (diagnostics)
        self.port_event = threading.Event()
        self.restarts = 0


class ReplicaSupervisor:
    """Spawn, monitor, and restart N local model-server replicas.

    Parameters
    ----------
    model_path:
        Model file every replica serves at startup (saved by
        :meth:`KeyBin2Model.save`). Required in ``process`` mode; in
        ``thread`` mode a pre-loaded model object may be passed instead.
    n_replicas:
        Fleet size.
    mode:
        ``"process"`` (subprocess isolation) or ``"thread"`` (in-process,
        fast — tests).
    host:
        Bind address for every replica (loopback keeps admin ops open).
    extra_args:
        Additional ``python -m repro serve`` flags applied to every
        process-mode replica (e.g. ``["--admit-rate", "300"]``).
    admission:
        Thread-mode equivalent of the admission flags (an
        :class:`~repro.serve.admission.AdmissionPolicy`).
    model:
        Thread mode only: serve this fitted model object (skips the
        load from ``model_path``).
    startup_timeout:
        Seconds to wait for a replica to announce its port / bind.
    """

    def __init__(
        self,
        model_path: Optional[str] = None,
        n_replicas: int = 3,
        mode: str = "process",
        host: str = "127.0.0.1",
        extra_args: Sequence[str] = (),
        admission=None,
        model=None,
        startup_timeout: float = 30.0,
    ):
        if mode not in ("process", "thread"):
            raise ValidationError("mode must be 'process' or 'thread'")
        if n_replicas < 1:
            raise ValidationError("n_replicas must be >= 1")
        if mode == "process" and model_path is None:
            raise ValidationError("process mode needs model_path")
        if mode == "thread" and model_path is None and model is None:
            raise ValidationError("thread mode needs model_path or model")
        self.model_path = None if model_path is None else str(model_path)
        self.mode = mode
        self.host = host
        self.extra_args = list(extra_args)
        self.admission = admission
        self._model = model
        self.startup_timeout = float(startup_timeout)
        self._replicas: Dict[str, _Replica] = {
            f"r{i}": _Replica(f"r{i}") for i in range(n_replicas)
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> List[Tuple[str, str, int]]:
        """Start every replica; returns ``[(id, host, port), ...]``."""
        for replica in self._replicas.values():
            self._start_one(replica)
        return self.endpoints()

    def endpoints(self) -> List[Tuple[str, str, int]]:
        """Current ``(id, host, port)`` for every live-or-started replica."""
        out = []
        for rid in sorted(self._replicas, key=lambda r: int(r[1:])):
            rep = self._replicas[rid]
            if rep.port is not None:
                out.append((rid, rep.host, rep.port))
        return out

    def is_alive(self, replica_id: str) -> bool:
        rep = self._get(replica_id)
        if self.mode == "process":
            return rep.proc is not None and rep.proc.poll() is None
        return rep.handle is not None and rep.handle.thread.is_alive()

    def kill(self, replica_id: str) -> None:
        """Stop one replica abruptly (SIGKILL in process mode)."""
        rep = self._get(replica_id)
        if self.mode == "process":
            if rep.proc is not None and rep.proc.poll() is None:
                rep.proc.kill()
                rep.proc.wait(timeout=10)
        elif rep.handle is not None:
            rep.handle.stop()
            rep.handle = None

    def restart(self, replica_id: str) -> Tuple[str, int]:
        """Restart one replica (fresh process/thread, fresh ephemeral port).

        The replica id — and therefore its shard on the ring — is
        preserved; callers must tell the router about the new endpoint.
        """
        rep = self._get(replica_id)
        self.kill(replica_id)
        self._start_one(rep)
        rep.restarts += 1
        return rep.host, rep.port

    def check_and_restart(self) -> List[str]:
        """Restart every dead replica; returns the restarted ids.

        The monitor loop in ``python -m repro fleet`` calls this
        periodically so a crashed replica rejoins the fleet without
        operator action.
        """
        restarted = []
        for rid in list(self._replicas):
            if not self.is_alive(rid):
                self.restart(rid)
                restarted.append(rid)
        return restarted

    def stop(self) -> None:
        """Stop every replica (graceful in thread mode, SIGKILL process)."""
        for rid in list(self._replicas):
            try:
                self.kill(rid)
            except ServeError:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "ReplicaSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def diagnostics(self, replica_id: str) -> str:
        """Last stdout lines of a process-mode replica (crash forensics)."""
        return "".join(self._get(replica_id).tail)

    # -- internals -----------------------------------------------------------

    def _get(self, replica_id: str) -> _Replica:
        try:
            return self._replicas[replica_id]
        except KeyError:
            raise ValidationError(f"unknown replica {replica_id!r}") from None

    def _start_one(self, rep: _Replica) -> None:
        if self.mode == "thread":
            self._start_thread(rep)
        else:
            self._start_process(rep)

    def _start_thread(self, rep: _Replica) -> None:
        from repro.core.model import KeyBin2Model
        from repro.serve.registry import ModelRegistry
        from repro.serve.server import serve_in_thread

        if self._model is None:
            self._model = KeyBin2Model.load(self.model_path)
        registry = ModelRegistry()
        registry.publish(self._model, tag=f"{rep.replica_id}-startup")
        rep.registry = registry
        rep.handle = serve_in_thread(
            registry, host=self.host, port=0, admission=self.admission
        )
        rep.host, rep.port = rep.handle.address

    def _start_process(self, rep: _Replica) -> None:
        # -u: the child announces its port on stdout, and a block-buffered
        # pipe would hold that line back past the startup timeout.
        cmd = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--model", self.model_path,
            "--host", self.host, "--port", "0",
            *self.extra_args,
        ]
        env = os.environ.copy()
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        rep.port = None
        rep.port_event = threading.Event()
        rep.tail = deque(maxlen=50)
        rep.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        threading.Thread(
            target=self._drain_stdout, args=(rep, rep.proc),
            name=f"fleet-{rep.replica_id}-stdout", daemon=True,
        ).start()
        if not rep.port_event.wait(self.startup_timeout) or rep.port is None:
            self.kill(rep.replica_id)
            raise ServeError(
                f"replica {rep.replica_id} failed to announce a port within "
                f"{self.startup_timeout}s; output:\n{self.diagnostics(rep.replica_id)}"
            )
        rep.host = self.host
        # One verified healthz round trip before the replica counts as
        # started — the port announcement alone proves a bind, not a
        # working serve loop.
        probe(rep.host, rep.port, timeout=self.startup_timeout)

    def _drain_stdout(self, rep: _Replica, proc: subprocess.Popen) -> None:
        # Keeps the pipe from filling (which would wedge the child) and
        # captures a diagnostic tail. Runs until the child's stdout EOFs.
        try:
            for line in proc.stdout:
                rep.tail.append(line)
                if rep.port is None:
                    match = _PORT_RE.search(line)
                    if match:
                        rep.port = int(match.group(2))
                        rep.port_event.set()
        finally:
            rep.port_event.set()  # EOF: unblock a waiting starter
