"""Replica lifecycle: spawn, monitor, kill, restart N model servers.

The :class:`ReplicaSupervisor` owns the *processes* (or threads) behind
the fleet; the router owns the *routing state*. Keeping them separate
means the router can be pointed at replicas it does not manage (remote
hosts, an orchestrator's pods) while local deployments get a complete
battery-included stack from ``python -m repro fleet``.

Two modes:

* ``process`` — each replica is a ``python -m repro serve`` subprocess
  with its own interpreter, event loop, model registry and caches. Real
  isolation: a replica can be SIGKILLed mid-request and the rest of the
  fleet (and the supervisor) does not notice beyond the router's
  failover. This is what the fleet bench and the chaos smoke use.
* ``thread`` — each replica is a :func:`~repro.serve.server.serve_in_thread`
  server inside this process. No isolation, but startup is ~1000× faster
  and tests can reach into a replica's registry directly; the unit tests
  use this.

Every replica gets a stable id (``r0``, ``r1``, ...) that survives
restarts — the consistent-hash ring hashes ids, so a restarted replica
(new port, cold cache) takes back exactly its old shard.

With a :class:`~repro.fleet.journal.RolloutJournal` attached the
supervisor is *version-aware*: a restarted replica boots from the
journal's current artifact (not the original ``--model`` path, which may
be rollouts behind), is probed, reloaded if its fingerprint strays, and
fingerprint-verified **before** the caller learns its endpoint — a
replica that cannot be driven to the fleet's artifact is torn back down
rather than readmitted serving stale labels. Crash-looping replicas get
exponential restart backoff and, past ``quarantine_after`` consecutive
fast crashes, a quarantine (``fleet_replica_quarantined`` gauge) instead
of a hot restart loop.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError, ValidationError
from repro.obs import default_registry
from repro.serve.client import probe

__all__ = ["ReplicaSupervisor"]

#: The ``serve`` CLI announces its bind as "... on HOST:PORT"; the
#: supervisor parses that line to learn an ephemeral port.
_PORT_RE = re.compile(r"\bon\s+(\S+):(\d+)\s*$")


class _Replica:
    """Internal per-replica bookkeeping (one of proc/handle is set)."""

    def __init__(self, replica_id: str):
        self.replica_id = replica_id
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.proc: Optional[subprocess.Popen] = None
        self.handle = None  # ServerHandle in thread mode
        self.registry = None  # ModelRegistry in thread mode
        self.tail: deque = deque(maxlen=50)  # last stdout lines (diagnostics)
        self.port_event = threading.Event()
        self.restarts = 0
        self.failed_starts = 0
        # Crash-loop containment (driven by check_and_restart).
        self.last_start_at = 0.0   # supervisor clock at last successful start
        self.not_before = 0.0      # backoff: no restart attempt before this
        self.crash_streak = 0      # consecutive deaths within stable_s
        self.quarantined = False


class ReplicaSupervisor:
    """Spawn, monitor, and restart N local model-server replicas.

    Parameters
    ----------
    model_path:
        Model file every replica serves at startup (saved by
        :meth:`KeyBin2Model.save`). Required in ``process`` mode; in
        ``thread`` mode a pre-loaded model object may be passed instead.
    n_replicas:
        Fleet size.
    mode:
        ``"process"`` (subprocess isolation) or ``"thread"`` (in-process,
        fast — tests).
    host:
        Bind address for every replica (loopback keeps admin ops open).
    extra_args:
        Additional ``python -m repro serve`` flags applied to every
        process-mode replica (e.g. ``["--admit-rate", "300"]``).
    admission:
        Thread-mode equivalent of the admission flags (an
        :class:`~repro.serve.admission.AdmissionPolicy`).
    model:
        Thread mode only: serve this fitted model object (skips the
        load from ``model_path``).
    startup_timeout:
        Seconds to wait for a replica to announce its port / bind.
    journal:
        Optional :class:`~repro.fleet.journal.RolloutJournal`. When set,
        restarted replicas boot from (and are fingerprint-verified
        against) the journal's current ``artifact`` record — the fleet's
        source of truth — instead of the construction-time model path.
    restart_backoff_s, restart_backoff_max_s:
        Exponential backoff between restart attempts of a crash-looping
        replica (base doubles per consecutive fast crash, capped).
    quarantine_after:
        Consecutive fast crashes (death within ``stable_s`` of start)
        after which the replica is quarantined: no further automatic
        restarts until :meth:`unquarantine`.
    stable_s:
        A replica that stays up at least this long resets its crash
        streak — the next death is treated as fresh, not a loop.
    clock:
        Injectable monotonic clock (deterministic backoff tests).
    """

    def __init__(
        self,
        model_path: Optional[str] = None,
        n_replicas: int = 3,
        mode: str = "process",
        host: str = "127.0.0.1",
        extra_args: Sequence[str] = (),
        admission=None,
        model=None,
        startup_timeout: float = 30.0,
        journal=None,
        restart_backoff_s: float = 0.5,
        restart_backoff_max_s: float = 30.0,
        quarantine_after: int = 5,
        stable_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if mode not in ("process", "thread"):
            raise ValidationError("mode must be 'process' or 'thread'")
        if n_replicas < 1:
            raise ValidationError("n_replicas must be >= 1")
        if mode == "process" and model_path is None:
            raise ValidationError("process mode needs model_path")
        if mode == "thread" and model_path is None and model is None:
            raise ValidationError("thread mode needs model_path or model")
        if restart_backoff_s < 0 or restart_backoff_max_s < restart_backoff_s:
            raise ValidationError(
                "restart backoff must be >= 0 and max >= base")
        if quarantine_after < 1:
            raise ValidationError("quarantine_after must be >= 1")
        self.model_path = None if model_path is None else str(model_path)
        self.mode = mode
        self.host = host
        self.extra_args = list(extra_args)
        self.admission = admission
        self._model = model
        self.startup_timeout = float(startup_timeout)
        self.journal = journal
        self.restart_backoff_s = float(restart_backoff_s)
        self.restart_backoff_max_s = float(restart_backoff_max_s)
        self.quarantine_after = int(quarantine_after)
        self.stable_s = float(stable_s)
        self._clock = clock
        self._replicas: Dict[str, _Replica] = {
            f"r{i}": _Replica(f"r{i}") for i in range(n_replicas)
        }
        reg = default_registry()
        self._m_restarts = reg.counter(
            "fleet_replica_restarts_total",
            "Replica restart attempts by the supervisor, by replica and "
            "outcome (ok / start_failed / reconcile_failed).",
            ("replica", "outcome"),
        )
        self._m_quarantined = reg.gauge(
            "fleet_replica_quarantined",
            "1 while the replica is quarantined after crash-looping "
            "(no automatic restarts), else 0.",
            ("replica",),
        )
        for rid in self._replicas:
            self._m_quarantined.labels(replica=rid).set(0)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> List[Tuple[str, str, int]]:
        """Start every replica; returns ``[(id, host, port), ...]``."""
        for replica in self._replicas.values():
            self._start_one(replica)
        return self.endpoints()

    def endpoints(self) -> List[Tuple[str, str, int]]:
        """Current ``(id, host, port)`` for every live-or-started replica."""
        out = []
        for rid in sorted(self._replicas, key=lambda r: int(r[1:])):
            rep = self._replicas[rid]
            if rep.port is not None:
                out.append((rid, rep.host, rep.port))
        return out

    def is_alive(self, replica_id: str) -> bool:
        rep = self._get(replica_id)
        if self.mode == "process":
            return rep.proc is not None and rep.proc.poll() is None
        return rep.handle is not None and rep.handle.thread.is_alive()

    def kill(self, replica_id: str) -> None:
        """Stop one replica abruptly (SIGKILL in process mode).

        ``proc.wait`` can time out even after SIGKILL (the child wedged
        in uninterruptible IO); that must not propagate out of teardown
        and leak the remaining replicas — escalate to a second
        kill/wait and give up quietly if the kernel still won't reap it.
        """
        rep = self._get(replica_id)
        if self.mode == "process":
            if rep.proc is not None and rep.proc.poll() is None:
                rep.proc.kill()
                try:
                    rep.proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    rep.proc.kill()
                    try:
                        rep.proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:  # pragma: no cover
                        pass  # unreapable (D-state); poll() keeps watching
        elif rep.handle is not None:
            rep.handle.stop()
            rep.handle = None

    def restart(self, replica_id: str) -> Tuple[str, int]:
        """Restart one replica (fresh process/thread, fresh ephemeral port).

        The replica id — and therefore its shard on the ring — is
        preserved; callers must tell the router about the new endpoint.
        The old endpoint is forgotten *before* the start attempt: a
        failed start must not leave :meth:`endpoints` advertising the
        dead port. With a journal attached, the restarted replica is
        reconciled to the journal's current artifact (probe → reload if
        strayed → fingerprint verify) before this returns — on a
        reconcile failure the replica is torn down and the error raised,
        so a stale replica is never announced to the router.
        """
        rep = self._get(replica_id)
        self.kill(replica_id)
        rep.port = None  # never advertise the dead endpoint
        try:
            self._start_one(rep)
        except Exception:
            rep.failed_starts += 1
            self._m_restarts.labels(replica=replica_id,
                                    outcome="start_failed").inc()
            raise
        rep.restarts += 1
        try:
            self._reconcile(rep)
        except ServeError:
            self._m_restarts.labels(replica=replica_id,
                                    outcome="reconcile_failed").inc()
            self.kill(replica_id)
            rep.port = None
            raise
        self._m_restarts.labels(replica=replica_id, outcome="ok").inc()
        return rep.host, rep.port

    def _reconcile(self, rep: _Replica) -> None:
        """Drive a freshly started replica to the journal's artifact."""
        if self.journal is None:
            return
        artifact = self.journal.current_artifact()
        if artifact is None:
            return
        from repro.fleet.journal import reconcile_replica

        reconcile_replica(
            rep.host, rep.port, artifact["path"], artifact.get("fingerprint"),
            timeout=self.startup_timeout,
        )

    def check_and_restart(self) -> List[str]:
        """Restart dead replicas (with backoff); returns the restarted ids.

        The monitor loop in ``python -m repro fleet`` calls this
        periodically so a crashed replica rejoins the fleet without
        operator action. A replica that keeps dying within ``stable_s``
        of its start backs off exponentially between attempts and is
        quarantined after ``quarantine_after`` consecutive fast crashes —
        a crash loop must not become a hot spawn loop. Start or
        reconcile failures are contained here (counted, backed off),
        never propagated into the monitor.
        """
        restarted = []
        now = self._clock()
        for rid in list(self._replicas):
            rep = self._replicas[rid]
            if self.is_alive(rid) or rep.quarantined:
                continue
            if now < rep.not_before:
                continue
            uptime = now - rep.last_start_at
            rep.crash_streak = (
                rep.crash_streak + 1 if uptime < self.stable_s else 1
            )
            if rep.crash_streak > self.quarantine_after:
                rep.quarantined = True
                self._m_quarantined.labels(replica=rid).set(1)
                continue
            rep.not_before = now + min(
                self.restart_backoff_max_s,
                self.restart_backoff_s * (2.0 ** (rep.crash_streak - 1)),
            )
            try:
                self.restart(rid)
            except ServeError:
                continue  # counted by restart(); retried after backoff
            restarted.append(rid)
        return restarted

    def quarantined(self) -> List[str]:
        """Replica ids currently quarantined (no automatic restarts)."""
        return sorted(r for r, rep in self._replicas.items()
                      if rep.quarantined)

    def unquarantine(self, replica_id: str) -> None:
        """Clear a quarantine so ``check_and_restart`` tries again."""
        rep = self._get(replica_id)
        rep.quarantined = False
        rep.crash_streak = 0
        rep.not_before = 0.0
        self._m_quarantined.labels(replica=replica_id).set(0)

    def stop(self) -> None:
        """Stop every replica (graceful in thread mode, SIGKILL process)."""
        for rid in list(self._replicas):
            try:
                self.kill(rid)
            except (ServeError, subprocess.TimeoutExpired):
                pass  # pragma: no cover - best-effort teardown

    def __enter__(self) -> "ReplicaSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def diagnostics(self, replica_id: str) -> str:
        """Last stdout lines of a process-mode replica (crash forensics)."""
        return "".join(self._get(replica_id).tail)

    # -- internals -----------------------------------------------------------

    def _get(self, replica_id: str) -> _Replica:
        try:
            return self._replicas[replica_id]
        except KeyError:
            raise ValidationError(f"unknown replica {replica_id!r}") from None

    def _start_one(self, rep: _Replica) -> None:
        if self.mode == "thread":
            self._start_thread(rep)
        else:
            self._start_process(rep)
        rep.last_start_at = self._clock()

    def _boot_model_path(self) -> Optional[str]:
        """The artifact a (re)started replica should serve.

        The journal's current ``artifact`` record wins over the
        construction-time path: after a completed rollout the original
        ``--model`` file is stale, and booting from it would rejoin the
        fleet split-brain.
        """
        if self.journal is not None:
            artifact = self.journal.current_artifact()
            if artifact is not None and artifact.get("path"):
                return str(artifact["path"])
        return self.model_path

    def _start_thread(self, rep: _Replica) -> None:
        from repro.core.model import KeyBin2Model
        from repro.serve.registry import ModelRegistry
        from repro.serve.server import serve_in_thread

        if self._model is None:
            self._model = KeyBin2Model.load(self.model_path)
        registry = ModelRegistry()
        registry.publish(self._model, tag=f"{rep.replica_id}-startup")
        rep.registry = registry
        rep.handle = serve_in_thread(
            registry, host=self.host, port=0, admission=self.admission
        )
        rep.host, rep.port = rep.handle.address

    def _start_process(self, rep: _Replica) -> None:
        # -u: the child announces its port on stdout, and a block-buffered
        # pipe would hold that line back past the startup timeout.
        cmd = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--model", self._boot_model_path(),
            "--host", self.host, "--port", "0",
            *self.extra_args,
        ]
        env = os.environ.copy()
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        rep.port = None
        rep.port_event = threading.Event()
        rep.tail = deque(maxlen=50)
        rep.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        threading.Thread(
            target=self._drain_stdout, args=(rep, rep.proc),
            name=f"fleet-{rep.replica_id}-stdout", daemon=True,
        ).start()
        if not rep.port_event.wait(self.startup_timeout) or rep.port is None:
            self.kill(rep.replica_id)
            raise ServeError(
                f"replica {rep.replica_id} failed to announce a port within "
                f"{self.startup_timeout}s; output:\n{self.diagnostics(rep.replica_id)}"
            )
        rep.host = self.host
        # One verified healthz round trip before the replica counts as
        # started — the port announcement alone proves a bind, not a
        # working serve loop.
        probe(rep.host, rep.port, timeout=self.startup_timeout)

    def _drain_stdout(self, rep: _Replica, proc: subprocess.Popen) -> None:
        # Keeps the pipe from filling (which would wedge the child) and
        # captures a diagnostic tail. Runs until the child's stdout EOFs.
        try:
            for line in proc.stdout:
                rep.tail.append(line)
                if rep.port is None:
                    match = _PORT_RE.search(line)
                    if match:
                        rep.port = int(match.group(2))
                        rep.port_event.set()
        finally:
            rep.port_event.set()  # EOF: unblock a waiting starter
