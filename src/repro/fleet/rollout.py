"""Staged fleet rollout: canary → percentage stages → full promotion.

A single :class:`~repro.serve.server.ModelServer` hot-swaps models
atomically via its registry; a *fleet* cannot — N replicas reload at N
different instants, and a bad artifact multiplied by N is an outage, not
a blip. The :class:`RolloutManager` turns the router's ``reload`` op into
a staged promotion:

1. **canary** — exactly one healthy replica reloads the new artifact.
   The manager then *bakes* it: it replays sampled live predict rows
   (old dimensionality — what production actually sends) against the
   canary and classifies the answers. Sheds and deadline misses are
   neutral (load, not model quality); validation and model errors count
   against the canary. An error rate above
   :attr:`RolloutConfig.max_error_rate` triggers an automatic
   ``rollback`` on the canary and aborts the rollout — the other N−1
   replicas never saw the artifact.
2. **staged** — the remaining replicas promote in
   :attr:`RolloutConfig.stages` fractions (default 50% then 100%).
   After each replica reloads, its ``model-info`` fingerprint must match
   the canary's — the same convergence check the consolidation layer
   uses — so a replica that silently loaded something else aborts the
   rollout instead of serving split-brain labels.
3. **complete** — every promoted fingerprint agrees; the router's shard
   model is refreshed to the new artifact so cell-code shard keys track
   what the fleet now serves.

Any failure after the canary promotes rolls back *every* promoted
replica (canary included) and the rollout ends ``rolled_back`` — the
fleet converges to the old fingerprint, never a mix.

Zero downtime falls out of the existing server design: each replica's
reload runs off its event loop while in-flight predicts drain normally,
and the router keeps routing around whichever replica is mid-reload —
requests never queue behind the rollout.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConnectionLostError, ServeError, ValidationError
from repro.obs.reqtrace import get_tracer

__all__ = ["RolloutConfig", "RolloutError", "RolloutManager"]

#: Rollout states, in gauge-value order (``fleet_rollout_state``).
ROLLOUT_STATES: Tuple[str, ...] = (
    "idle", "canary", "staged", "complete", "rolled_back"
)


class RolloutError(ServeError):
    """A rollout aborted (canary regression, divergence, reload failure)."""

    code = "rollout_failed"


@dataclass(frozen=True)
class RolloutConfig:
    """Knobs for the staged rollout.

    Parameters
    ----------
    stages:
        Cumulative fleet fractions promoted after the canary bakes.
        Must be increasing and end at 1.0.
    probes:
        Predict probes replayed against the canary during the bake.
    max_error_rate:
        Canary error rate (errors / non-neutral probes) above which the
        rollout auto-rolls back.
    settle_s:
        Pause between stages (lets per-replica circuits/queues react
        before the blast radius grows). Kept tiny by default so tests
        and benches stay fast.
    """

    stages: Tuple[float, ...] = (0.5, 1.0)
    probes: int = 24
    max_error_rate: float = 0.25
    settle_s: float = 0.0

    def __post_init__(self):
        if not self.stages or sorted(self.stages) != list(self.stages):
            raise ValidationError("rollout stages must be increasing")
        if not (0 < self.stages[0] <= 1.0) or self.stages[-1] != 1.0:
            raise ValidationError("rollout stages must lie in (0, 1] and end at 1.0")
        if self.probes < 1:
            raise ValidationError("rollout needs at least one canary probe")
        if not (0 <= self.max_error_rate < 1):
            raise ValidationError("max_error_rate must be in [0, 1)")


class RolloutManager:
    """Drives staged rollouts over a :class:`~repro.fleet.router.FleetRouter`.

    One manager per router; the router serializes invocations under its
    admin lock, so at most one rollout runs at a time.
    """

    def __init__(self, router, config: Optional[RolloutConfig] = None,
                 journal=None):
        self.router = router
        self.config = config if config is not None else RolloutConfig()
        self.journal = journal
        self.state = "idle"
        self.history: List[Dict[str, Any]] = []
        self._trace_parent = None  # rollout/run span while a rollout is live
        reg = router.registry
        self._m_state = reg.gauge(
            "fleet_rollout_state",
            "Rollout state machine position: "
            + ", ".join(f"{i}={s}" for i, s in enumerate(ROLLOUT_STATES)),
        )
        self._m_rollouts = reg.counter(
            "fleet_rollouts_total",
            "Completed rollout attempts, by outcome (complete / "
            "canary_rejected / aborted).",
            ("outcome",),
        )

    def _append_history(self, entry: Dict[str, Any]) -> None:
        """The one place history grows — every append is trim-bounded.

        ``rollback_failed`` entries used to bypass the trim by appending
        directly, so a long-lived router with a flapping replica grew
        without bound.
        """
        self.history.append(entry)
        del self.history[:-50]  # bounded memory on long-lived routers

    def _set_state(self, state: str, **detail: Any) -> None:
        self.state = state
        self._m_state.set(ROLLOUT_STATES.index(state))
        self._append_history({"at": time.time(), "state": state, **detail})
        # Stage transitions are rare and operationally load-bearing, so
        # they export as always-sampled trace events linked under the
        # rollout/run span (one trace per rollout in obs-trace output).
        get_tracer().event(
            f"rollout/{state}", parent=self._trace_parent, attrs=detail
        )

    def _journal(self, type_: str, **fields: Any) -> None:
        """Write-ahead journal append (no-op without a journal).

        Called *before* the action the record describes; a failed append
        (:class:`~repro.fleet.journal.JournalError`, a ``ServeError``)
        aborts the rollout — acting without a durable record would make
        a later crash unrecoverable. Synchronous fsync'd IO on the event
        loop is fine here: a rollout is a handful of control-plane
        records, not a request-path write.
        """
        if self.journal is not None:
            self.journal.append(type_, **fields)

    # -- the rollout ---------------------------------------------------------

    async def run(self, path: str, tag: Optional[str] = None) -> Dict[str, Any]:
        """Roll ``path`` out across the fleet; returns the promotion summary.

        Raises :class:`RolloutError` on any abort — in which case every
        replica that promoted has been rolled back to the old artifact.
        """
        # Each rollout is its own (force-sampled) trace; the stage events
        # _set_state emits hang under this span. A RolloutError escaping
        # marks the span status via its .code ("rollout_failed").
        span = get_tracer().root("rollout/run", force=True,
                                 attrs={"path": path})
        with span:
            self._trace_parent = span if span.context is not None else None
            try:
                return await self._run_staged(path, tag)
            finally:
                self._trace_parent = None

    async def _run_staged(self, path: str,
                          tag: Optional[str]) -> Dict[str, Any]:
        fleet = self.router._healthy_states()
        if not fleet:
            raise RolloutError("cannot roll out: no healthy replica")
        canary, rest = fleet[0], fleet[1:]
        baseline = await self._model_info(canary)
        old_features = int(baseline.get("n_features") or 0)

        # Write-ahead: the intent lands on disk before any replica is
        # touched, so a crash from here on leaves a journal that names
        # the artifact being rolled out.
        self._journal("intent", path=path, tag=tag)
        self._set_state("canary", replica=canary.id, path=path)
        self._journal("canary", replica=canary.id)
        promoted: List[Tuple[Any, int]] = []  # (state, new version) per replica
        try:
            version = await self._reload_one(canary, path, tag)
        except RolloutError as exc:
            # Canary never promoted — nothing to roll back.
            self._journal("rolled_back", reason="canary_reload_failed")
            self._finish("rolled_back", "canary_rejected", error=str(exc))
            raise
        promoted.append((canary, version))
        new_info = await self._model_info(canary)
        new_fp = new_info.get("fingerprint")
        self._journal("canary_promoted", replica=canary.id, version=version,
                      fingerprint=new_fp)

        errors, attempts = await self._bake(canary, old_features)
        error_rate = errors / attempts if attempts else 0.0
        if error_rate > self.config.max_error_rate:
            await self._rollback_all(promoted)
            self._journal("rolled_back", reason="canary_rejected",
                          error_rate=round(error_rate, 4))
            self._finish(
                "rolled_back", "canary_rejected",
                error_rate=round(error_rate, 4), probes=attempts,
            )
            raise RolloutError(
                f"canary {canary.id} rejected: error rate "
                f"{error_rate:.0%} over {attempts} probes "
                f"(limit {self.config.max_error_rate:.0%}); rolled back"
            )

        self._set_state("staged", fingerprint=new_fp)
        # COMMIT POINT: the canary baked clean, so the new artifact is
        # known good. A recovery pass that finds this record rolls the
        # fleet *forward* to new_fp; without it, back to the baseline.
        self._journal("staged", fingerprint=new_fp,
                      error_rate=round(error_rate, 4), probes=attempts)
        total = len(fleet)
        next_replica = 0
        try:
            for frac in self.config.stages:
                target = min(total, max(1, math.ceil(frac * total - 1e-9)))
                while len(promoted) < target and next_replica < len(rest):
                    state = rest[next_replica]
                    next_replica += 1
                    self._journal("promote", replica=state.id)
                    version = await self._reload_one(state, path, tag)
                    info = await self._model_info(state)
                    if info.get("fingerprint") != new_fp:
                        raise RolloutError(
                            f"replica {state.id} diverged after reload: "
                            f"fingerprint {info.get('fingerprint')!r} != "
                            f"canary {new_fp!r}"
                        )
                    promoted.append((state, version))
                if self.config.settle_s and len(promoted) < total:
                    await asyncio.sleep(self.config.settle_s)
        except RolloutError as exc:
            await self._rollback_all(promoted)
            self._journal("rolled_back", reason="stage_aborted",
                          error=str(exc))
            self._finish("rolled_back", "aborted", error=str(exc))
            raise RolloutError(f"rollout aborted, fleet rolled back: {exc}") from exc

        await self._refresh_shard_model(path)
        # New source of truth first, then the terminal record: a crash
        # between the two leaves an open rollout whose artifact already
        # points at new_fp, and recovery completes it as a no-op.
        if self.journal is not None:
            self.journal.set_artifact(
                path, new_fp, version=max(v for _, v in promoted)
            )
        self._journal("complete", fingerprint=new_fp)
        self._finish("complete", "complete", fingerprint=new_fp,
                     replicas=len(promoted))
        return {
            "version": max(v for _, v in promoted),
            "fingerprint": new_fp,
            "rollout": {
                "state": "complete",
                "canary": canary.id,
                "probes": attempts,
                "error_rate": round(error_rate, 4),
                "promoted": {s.id: v for s, v in promoted},
            },
        }

    def _finish(self, state: str, outcome: str, **detail: Any) -> None:
        self._set_state(state, **detail)
        self._m_rollouts.labels(outcome=outcome).inc()

    # -- steps ---------------------------------------------------------------

    async def _model_info(self, state) -> Dict[str, Any]:
        try:
            info = await self.router.admin_request(state, {"op": "model-info"})
        except (ConnectionLostError, ValueError) as exc:
            raise RolloutError(
                f"replica {state.id} unreachable for model-info: {exc}"
            ) from exc
        if not info.get("ok"):
            raise RolloutError(
                f"replica {state.id} model-info failed: {info.get('error')}"
            )
        return info

    async def _reload_one(self, state, path: str,
                          tag: Optional[str]) -> int:
        payload: Dict[str, Any] = {"op": "reload", "path": path}
        if tag is not None:
            payload["tag"] = tag
        try:
            resp = await self.router.admin_request(state, payload)
        except (ConnectionLostError, ValueError) as exc:
            raise RolloutError(
                f"replica {state.id} died during reload: {exc}"
            ) from exc
        if not resp.get("ok"):
            raise RolloutError(
                f"replica {state.id} rejected reload of {path!r}: "
                f"{resp.get('error')}"
            )
        return int(resp["version"])

    async def _bake(self, canary, old_features: int) -> Tuple[int, int]:
        """Replay sampled traffic at the canary; returns (errors, attempts).

        Probe rows deliberately use the *old* feature count: live clients
        have not been redeployed, so that is the traffic the new model
        must survive. A model artifact with the wrong dimensionality
        fails here as a 100% validation-error rate — before any
        non-canary replica promotes.
        """
        rows = self.router.probe_rows(self.config.probes, old_features)
        errors = attempts = 0
        for row in rows:
            try:
                resp = await self.router.admin_request(
                    canary, {"op": "predict", "x": row}
                )
            except (ConnectionLostError, ValueError):
                errors += 1
                attempts += 1
                continue
            if resp.get("ok"):
                attempts += 1
                continue
            if resp.get("err") in ("shed", "queue_full", "deadline_exceeded"):
                continue  # load-shaping, not model quality: neutral
            errors += 1
            attempts += 1
        return errors, attempts

    async def _rollback_all(self, promoted) -> None:
        for state, _version in promoted:
            try:
                await self.router.admin_request(state, {"op": "rollback"})
            except (ConnectionLostError, ValueError):
                # Replica unreachable mid-abort: the health loop will
                # eject it; record and keep rolling the others back.
                self._append_history({
                    "at": time.time(), "state": "rollback_failed",
                    "replica": state.id,
                })

    async def _refresh_shard_model(self, path: str) -> None:
        if not self.router.shard_enabled:
            return
        from repro.core.model import KeyBin2Model

        try:
            model = await asyncio.to_thread(KeyBin2Model.load, path)
        except Exception:
            return  # shard keys fall back to coordinate quantization
        self.router.set_shard_model(model)
