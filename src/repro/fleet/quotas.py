"""Per-tenant token-bucket quotas, enforced in the router ahead of replicas.

The replica-side :class:`~repro.serve.admission.AdmissionController`
protects a *server* from aggregate overload; it cannot tell tenants
apart, so one greedy tenant can starve everyone within the admitted
budget. The fleet router layers per-tenant token buckets *in front of*
replica admission: a request that exceeds its tenant's quota is shed at
the router — it never consumes a replica token, a connection slot, or a
spot in a micro-batch.

Requests name their tenant with an optional ``"tenant"`` field on the
predict payload; the wire protocol is otherwise unchanged, and requests
without the field fall under the anonymous default quota (if one is
configured) or pass through unmetered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ShedError, ValidationError

__all__ = ["TenantQuotaPolicy", "TenantQuotas"]

#: Bucket key for requests that carry no tenant field.
ANONYMOUS = "_anonymous"


@dataclass(frozen=True)
class TenantQuotaPolicy:
    """One tenant's token bucket: sustained ``rate`` req/s, ``burst`` cap."""

    rate: float
    burst: float = 10.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValidationError("tenant quota rate must be > 0")
        if self.burst < 1:
            raise ValidationError("tenant quota burst must be >= 1")


class _Bucket:
    __slots__ = ("policy", "tokens", "last_refill")

    def __init__(self, policy: TenantQuotaPolicy, now: float):
        self.policy = policy
        self.tokens = float(policy.burst)
        self.last_refill = now


class TenantQuotas:
    """Token buckets keyed by tenant name.

    Parameters
    ----------
    quotas:
        Explicit per-tenant policies.
    default:
        Policy applied to tenants (and anonymous traffic) without an
        explicit entry; each such tenant gets its *own* lazily created
        bucket. ``None`` means unlisted tenants are not metered at all.
    max_tenants:
        Cap on lazily created buckets, so an attacker cycling tenant
        names cannot grow router memory without bound. Beyond the cap
        the least-recently-refilled lazy bucket is evicted (it restarts
        full if the tenant returns — mild over-admission, bounded state).
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        quotas: Optional[Dict[str, TenantQuotaPolicy]] = None,
        default: Optional[TenantQuotaPolicy] = None,
        max_tenants: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_tenants < 1:
            raise ValidationError("max_tenants must be >= 1")
        self._clock = clock
        self.default = default
        self.max_tenants = int(max_tenants)
        now = clock()
        self._explicit: Dict[str, _Bucket] = {
            name: _Bucket(policy, now) for name, policy in (quotas or {}).items()
        }
        self._lazy: Dict[str, _Bucket] = {}
        self._shed: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """Whether any metering is configured at all."""
        return bool(self._explicit) or self.default is not None

    def shed_counts(self) -> Dict[str, int]:
        """Requests shed so far, by tenant."""
        return dict(self._shed)

    def _bucket_for(self, tenant: str) -> Optional[_Bucket]:
        bucket = self._explicit.get(tenant)
        if bucket is not None:
            return bucket
        if self.default is None:
            return None
        bucket = self._lazy.get(tenant)
        if bucket is None:
            if len(self._lazy) >= self.max_tenants:
                oldest = min(self._lazy, key=lambda t: self._lazy[t].last_refill)
                del self._lazy[oldest]
            bucket = _Bucket(self.default, self._clock())
            self._lazy[tenant] = bucket
        return bucket

    def try_admit(self, tenant: Optional[str]) -> None:
        """Take one token for ``tenant`` or raise :class:`ShedError`.

        Single-threaded by design: the router calls this from its event
        loop, so no lock is needed on the hot path.
        """
        name = ANONYMOUS if tenant is None else str(tenant)
        bucket = self._bucket_for(name)
        if bucket is None:
            return
        now = self._clock()
        elapsed = now - bucket.last_refill
        if elapsed > 0:
            bucket.tokens = min(
                float(bucket.policy.burst),
                bucket.tokens + elapsed * bucket.policy.rate,
            )
            bucket.last_refill = now
        if bucket.tokens < 1.0:
            self._shed[name] = self._shed.get(name, 0) + 1
            raise ShedError(
                f"request shed (tenant_quota): tenant {name!r} is over its "
                f"{bucket.policy.rate:g} req/s quota"
            )
        bucket.tokens -= 1.0
