"""Capacity-aware fleet router: one wire endpoint over N model servers.

The :class:`FleetRouter` is an asyncio TCP front-end that speaks the
*exact* :mod:`repro.serve` newline-delimited JSON protocol, so every
existing client, load generator, and test drives a fleet the same way it
drives a single server. Behind the socket it adds the four things one
``ModelServer`` cannot do for itself:

* **capacity-aware load balancing** — power-of-two-choices over a score
  combining the router's own per-replica in-flight count (exact, free)
  with each replica's self-reported ``in_flight``/``queue_depth`` from
  periodic ``healthz`` probes (an EWMA'd capacity hint). Per the
  coordinator-model discipline of *Communication-Optimal Distributed
  Clustering*, the router centralizes only these cheap aggregate
  signals — never per-point model work, which stays on the replicas.
* **health probing, ejection, re-admission** — a background loop probes
  every replica on a tight deadline (:func:`repro.serve.client.async_probe`);
  consecutive failures eject a replica from rotation, later successes
  re-admit it. Transport failures during forwarding count too, so a
  crashed replica stops receiving traffic after the first error, not the
  next probe tick.
* **bin-key sharding** — single-point predicts are routed by consistent
  hash of their KeyBin2 cell code (or a coarse coordinate quantization
  when no shard model is installed), so each replica's label cache
  keeps its shard's working set hot as the fleet scales out
  (:mod:`repro.fleet.hashring`, with bounded-load spill for hot shards).
* **failover** — idempotent requests that die on a replica connection
  are retried on the next-best replica; the client sees one slightly
  slower response instead of an error.

Plus per-tenant token-bucket quotas (:mod:`repro.fleet.quotas`) ahead of
replica admission, and a staged-rollout engine for the ``reload`` op
(:mod:`repro.fleet.rollout`) instead of a single-server hot swap.

The router deliberately keeps **no model state** on the request path:
responses are relayed as raw bytes (one ``startswith`` sniff for the
success metric), requests are forwarded as the raw line the client sent,
and large batch predicts skip JSON parsing entirely. What the router
computes per request is O(dims) at most — a shard hash — which is the
same order as reading the line off the socket.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import random
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    ConnectionLostError,
    ServeError,
    ShedError,
    ValidationError,
)
from repro.fleet.hashring import ConsistentHashRing
from repro.fleet.quotas import TenantQuotas
from repro.obs import default_registry, render_json, render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.reqtrace import NOOP_SPAN, get_tracer, inject
from repro.serve.admission import RetryBudget
from repro.serve.client import PROBE_TIMEOUT_S, async_probe

__all__ = ["FleetRouter", "RouterHandle", "router_in_thread"]

#: Routed-outcome label values (mirrors the loadgen's buckets plus the
#: router-only ``failover`` and ``relayed`` classifications).
_PREDICT_PREFIX = b'{"op": "predict"'
_OK_PREFIX = b'{"ok": true'
_NOTOK_PREFIX = b'{"ok": false'


class _Conn:
    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer


class _ConnPool:
    """Bounded lazy pool of pipelined connections to one replica.

    Each in-flight request owns a connection exclusively (the wire
    protocol answers in order, so interleaving two requests on one
    connection would cross their responses). ``limit`` bounds the
    router's sockets per replica; excess requests wait on the semaphore,
    which is itself a capacity signal upstream (outstanding grows).
    """

    def __init__(self, host: str, port: int, limit: int = 16,
                 connect_timeout: float = 2.0):
        self.host = host
        self.port = port
        self.limit = int(limit)
        self.connect_timeout = float(connect_timeout)
        self._free: deque = deque()
        self._sem = asyncio.Semaphore(self.limit)
        self._closed = False

    async def acquire(self) -> _Conn:
        await self._sem.acquire()
        while self._free:
            conn = self._free.popleft()
            if conn.reader.at_eof() or conn.writer.is_closing():
                self._close_conn(conn)
                continue
            return conn
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            self._sem.release()
            reason = "timeout" if isinstance(exc, asyncio.TimeoutError) else (
                "refused" if isinstance(exc, ConnectionRefusedError) else "reset"
            )
            raise ConnectionLostError(
                f"cannot connect to replica {self.host}:{self.port}: {exc}",
                reason=reason,
            ) from exc
        return _Conn(reader, writer)

    def release(self, conn: _Conn) -> None:
        if self._closed:
            self._close_conn(conn)
        else:
            self._free.append(conn)
        self._sem.release()

    def discard(self, conn: _Conn) -> None:
        self._close_conn(conn)
        self._sem.release()

    def close_all(self) -> None:
        self._closed = True
        while self._free:
            self._close_conn(self._free.popleft())

    @staticmethod
    def _close_conn(conn: _Conn) -> None:
        try:
            conn.writer.close()
        except OSError:  # pragma: no cover - already dead
            pass


class ReplicaState:
    """Routing-side view of one replica: endpoint, health, load."""

    def __init__(self, replica_id: str, host: str, port: int,
                 pool_size: int = 16):
        self.id = replica_id
        self.host = host
        self.port = port
        self.pool = _ConnPool(host, port, limit=pool_size)
        self.healthy = True
        self.consecutive_failures = 0
        self.readmit_streak = 0
        self.outstanding = 0       # router-local in-flight (exact)
        self.load_hint = 0.0       # EWMA of replica-reported in_flight+queue
        self.polled: Dict[str, Any] = {}
        self.ejections = 0
        self.readmissions = 0

    @property
    def score(self) -> float:
        """Lower is better. Exact local count plus the polled hint."""
        return self.outstanding + self.load_hint

    def reset_endpoint(self, host: str, port: int, pool_size: int) -> None:
        self.pool.close_all()
        self.host = host
        self.port = port
        self.pool = _ConnPool(host, port, limit=pool_size)
        self.consecutive_failures = 0
        self.readmit_streak = 0
        self.load_hint = 0.0
        self.polled = {}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "healthy": self.healthy,
            "outstanding": self.outstanding,
            "load_hint": round(self.load_hint, 2),
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "version": self.polled.get("version"),
            "fingerprint": self.polled.get("fingerprint"),
        }


class FleetRouter:
    """Asyncio TCP router over a fixed set of model-server replicas.

    Parameters
    ----------
    replicas:
        ``[(replica_id, host, port), ...]`` — typically
        :meth:`ReplicaSupervisor.endpoints`. Membership is fixed for the
        router's lifetime (health ejection is temporary removal from
        rotation, not membership change); a restarted replica re-enters
        via :meth:`set_endpoint` under its old id, keeping its shard.
    host, port:
        Bind address of the router itself (``port=0`` → ephemeral).
    shard:
        Route single-point predicts by consistent-hashed bin key. Batch
        predicts always balance by capacity (a batch spans many cells, so
        it has no single shard).
    shard_model:
        Optional fitted :class:`~repro.core.model.KeyBin2Model` whose
        ``cell_codes_for`` defines the shard key exactly. Without it,
        points are quantized at ``shard_resolution`` per coordinate and
        hashed — a model-free approximation of "same cell ⇒ same shard".
    quotas:
        Per-tenant :class:`~repro.fleet.quotas.TenantQuotas` enforced
        before any replica is consulted.
    allow_admin:
        Gate for ``reload`` (staged rollout), ``rollback`` and
        ``shutdown`` — same loopback-only default as the single server.
    spill_factor, spill_min_headroom:
        Bounded-load sharding: a shard owner with more than
        ``max(min_headroom, ceil(factor · mean outstanding))`` requests
        in flight spills the request to the next replica on the ring.
    eject_after, readmit_after:
        Consecutive probe/transport failures before a replica leaves
        rotation; consecutive probe successes before it returns.
    max_failovers:
        Transport-failure retries per predict (distinct replicas).
    retry_budget_ratio, retry_budget_min, retry_budget_window_s:
        Fleet-wide windowed retry budget
        (:class:`~repro.serve.admission.RetryBudget`): failover retries
        across *all* requests may not exceed ``max(min, ratio ×
        windowed request rate)``. During a partition the router sheds
        ('unavailable', retryable) instead of multiplying every failed
        request by ``max_failovers`` — retries must never become the
        majority of fleet traffic.
    journal:
        Optional :class:`~repro.fleet.journal.RolloutJournal`. When set,
        the rollout engine write-ahead journals every transition and the
        journal's recorded artifact becomes the fleet's source of truth
        for crash recovery (see :mod:`repro.fleet.journal`).
    """

    _LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})

    def __init__(
        self,
        replicas: Sequence[Tuple[str, str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        shard: bool = True,
        shard_model=None,
        shard_resolution: float = 0.25,
        vnodes: int = 64,
        quotas: Optional[TenantQuotas] = None,
        allow_admin: Optional[bool] = None,
        probe_interval_s: float = 0.25,
        probe_timeout_s: float = PROBE_TIMEOUT_S,
        eject_after: int = 2,
        readmit_after: int = 2,
        max_failovers: int = 2,
        retry_budget_ratio: float = 0.2,
        retry_budget_min: int = 3,
        retry_budget_window_s: float = 10.0,
        spill_factor: float = 1.25,
        spill_min_headroom: int = 4,
        pool_size: int = 16,
        forward_timeout_s: float = 30.0,
        rollout_config=None,
        journal=None,
        registry: Optional[MetricsRegistry] = None,
        seed: int = 0,
    ):
        if not replicas:
            raise ValidationError("router needs at least one replica")
        self.host = host
        self.port = port
        self.allow_admin = (
            host in self._LOOPBACK_HOSTS if allow_admin is None else allow_admin
        )
        self.pool_size = int(pool_size)
        self._states: Dict[str, ReplicaState] = {}
        self.ring = ConsistentHashRing(vnodes=vnodes)
        for replica_id, rhost, rport in replicas:
            if replica_id in self._states:
                raise ValidationError(f"duplicate replica id {replica_id!r}")
            self._states[replica_id] = ReplicaState(
                replica_id, rhost, int(rport), pool_size=self.pool_size
            )
            self.ring.add(replica_id)
        self.shard_enabled = bool(shard)
        self.shard_resolution = float(shard_resolution)
        if self.shard_resolution <= 0:
            raise ValidationError("shard_resolution must be > 0")
        self._shard_model = None
        self._shard_model_features = 0
        if shard_model is not None:
            self.set_shard_model(shard_model)
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.eject_after = int(eject_after)
        self.readmit_after = int(readmit_after)
        self.max_failovers = int(max_failovers)
        self.retry_budget = RetryBudget(
            ratio=retry_budget_ratio,
            min_retries=retry_budget_min,
            window_s=retry_budget_window_s,
        )
        self.spill_factor = float(spill_factor)
        self.spill_min_headroom = int(spill_min_headroom)
        self.forward_timeout_s = float(forward_timeout_s)
        #: Lines larger than this are assumed to be batch predicts and are
        #: never JSON-parsed on the hot path (no shard key, p2c routing).
        self.shard_parse_limit = 4096
        self._rng = random.Random(seed)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._init_metrics()
        # Rollout engine (lazy import to avoid a module cycle).
        from repro.fleet.rollout import RolloutConfig, RolloutManager

        self.journal = journal
        self.rollout = RolloutManager(
            self,
            rollout_config if rollout_config is not None else RolloutConfig(),
            journal=journal,
        )
        self._sample_rows: deque = deque(maxlen=64)
        self._sample_tick = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._writers: set = set()
        self._admin_lock: Optional[asyncio.Lock] = None
        self.bound_port: Optional[int] = None
        self.started_at = time.time()

    # -- metrics -------------------------------------------------------------

    def _init_metrics(self) -> None:
        reg = self.registry
        self._m_routed = reg.counter(
            "fleet_routed_total",
            "Requests routed per replica, by outcome (ok / shed / "
            "deadline_exceeded / circuit_open / queue_full / error / "
            "failover).",
            ("replica", "outcome"),
        )
        self._m_spill = reg.counter(
            "fleet_shard_spill_total",
            "Sharded predicts that left their shard owner for the next "
            "ring replica because the owner was over the bounded-load cap.",
            ("replica",),
        )
        self._m_unroutable = reg.counter(
            "fleet_unroutable_total",
            "Requests answered 'unavailable' because no healthy replica "
            "remained (after failover attempts).",
        )
        self._m_retry_exhausted = reg.counter(
            "fleet_retry_budget_exhausted_total",
            "Failover retries refused because the fleet-wide windowed "
            "retry budget was spent; the request was answered "
            "'unavailable' instead of amplifying the partition.",
        )
        self._m_tenant_shed = reg.counter(
            "fleet_tenant_shed_total",
            "Predicts shed by per-tenant quotas at the router, by tenant.",
            ("tenant",),
        )
        self._m_probe_fail = reg.counter(
            "fleet_probe_failures_total",
            "Health probes that failed, by replica.",
            ("replica",),
        )
        self._m_ejections = reg.counter(
            "fleet_ejections_total",
            "Times a replica was ejected from rotation.",
            ("replica",),
        )
        self._m_readmissions = reg.counter(
            "fleet_readmissions_total",
            "Times an ejected replica was re-admitted after healthy probes.",
            ("replica",),
        )
        self._m_healthy = reg.gauge(
            "fleet_replicas_healthy", "Replicas currently in rotation."
        )
        self._m_healthy.set(len(self._states))
        reg.gauge(
            "fleet_replicas_total", "Replicas configured on the router."
        ).set(len(self._states))
        self._m_forward = reg.histogram(
            "fleet_forward_seconds",
            "Router-side forward latency (send to replica until its "
            "response line is read).",
        )
        # Per-replica health gauges: enough signal on the dashboard to
        # answer "why was this replica ejected" without reading logs —
        # the probe outcome stream, the failure streak that crossed
        # eject_after, and the EWMA load hint feeding the balancer.
        self._m_probe = reg.counter(
            "fleet_probe_total",
            "Health probes per replica, by outcome (ok / fail / draining).",
            ("replica", "outcome"),
        )
        self._m_replica_up = reg.gauge(
            "fleet_replica_up",
            "1 while the replica is in rotation, 0 while ejected.",
            ("replica",),
        )
        self._m_load_hint = reg.gauge(
            "fleet_replica_load_hint",
            "EWMA of the replica's self-reported in_flight + queue_depth "
            "(the capacity hint behind power-of-two-choices).",
            ("replica",),
        )
        self._m_consec_failures = reg.gauge(
            "fleet_replica_consecutive_failures",
            "Current probe/transport failure streak (ejection trips at "
            "eject_after).",
            ("replica",),
        )
        for rid in self._states:
            self._m_replica_up.labels(replica=rid).set(1)
            self._m_load_hint.labels(replica=rid).set(0)
            self._m_consec_failures.labels(replica=rid).set(0)

    # -- shard model ---------------------------------------------------------

    def set_shard_model(self, model) -> None:
        """Install (or swap) the model whose cell codes define shard keys.

        Called at construction and again after a completed rollout, so
        shard affinity tracks the fingerprint the fleet actually serves.
        """
        features = (
            int(model.projection.shape[0]) if model.projection is not None
            else int(model.kept_dims.size)
        )
        self._shard_model = model
        self._shard_model_features = features

    def _shard_key(self, request: Optional[Dict[str, Any]]) -> Optional[int]:
        if not self.shard_enabled or request is None:
            return None
        x = request.get("x")
        if not isinstance(x, list) or not x or isinstance(x[0], (list, dict)):
            return None  # batch (or garbage the replica will reject)
        try:
            row = np.asarray(x, dtype=np.float64)
        except (ValueError, TypeError):
            return None
        if row.ndim != 1 or not np.all(np.isfinite(row)):
            return None
        self._sample_tick += 1
        if self._sample_tick % 16 == 1:
            # Reservoir of real traffic for rollout canary probes.
            self._sample_rows.append(list(map(float, row)))
        model = self._shard_model
        if model is not None and row.size == self._shard_model_features:
            try:
                return int(model.cell_codes_for(row[None, :])[0])
            except Exception:
                pass  # fall through to the model-free key
        quantized = np.floor(row / self.shard_resolution).astype(np.int64)
        return int.from_bytes(
            hashlib.blake2b(quantized.tobytes(), digest_size=8).digest(),
            "little",
        )

    def probe_rows(self, n: int, n_features: int) -> List[List[float]]:
        """Rows for canary baking: sampled live traffic, synthetic fallback.

        Live samples represent what production actually sends (including
        its dimensionality — the thing a mis-shaped new model breaks on);
        the zero-vector fallback at the *current* feature count preserves
        that property on an idle fleet.
        """
        rows = [r for r in self._sample_rows if len(r) == n_features]
        if not rows:
            rows = [[0.0] * n_features]
        return [rows[i % len(rows)] for i in range(n)]

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("router already started")
        self._shutdown = asyncio.Event()
        self._admin_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def serve_until_shutdown(self) -> None:
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for writer in list(self._writers):
            writer.close()
        for state in self._states.values():
            state.pool.close_all()
        self._server = None
        if self._shutdown is not None:
            self._shutdown.set()

    async def set_endpoint(self, replica_id: str, host: str, port: int) -> None:
        """Point an existing replica id at a new host:port (post-restart).

        The id keeps its ring position, so the restarted replica takes
        back its old shard; health state resets and the probe loop
        re-admits it as soon as it answers.
        """
        state = self._states.get(replica_id)
        if state is None:
            raise ValidationError(f"unknown replica {replica_id!r}")
        state.reset_endpoint(host, int(port), self.pool_size)

    # -- health --------------------------------------------------------------

    def _healthy_states(self) -> List[ReplicaState]:
        return [
            self._states[rid] for rid in sorted(self._states)
            if self._states[rid].healthy
        ]

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval_s)
            await asyncio.gather(
                *(self._probe_one(s) for s in list(self._states.values()))
            )

    async def _probe_one(self, state: ReplicaState) -> None:
        try:
            payload = await async_probe(
                state.host, state.port, self.probe_timeout_s
            )
            if payload.get("status") == "draining":
                raise ServeError("replica is draining")
        except (ConnectionLostError, ServeError, ValueError):
            self._m_probe_fail.labels(replica=state.id).inc()
            self._m_probe.labels(replica=state.id, outcome="fail").inc()
            self._note_failure(state)
            return
        load = float(payload.get("in_flight") or 0)
        load += float(payload.get("queue_depth") or 0)
        state.load_hint = 0.7 * state.load_hint + 0.3 * load
        state.polled = payload
        self._m_probe.labels(replica=state.id, outcome="ok").inc()
        self._m_load_hint.labels(replica=state.id).set(state.load_hint)
        self._note_probe_success(state)

    def _note_failure(self, state: ReplicaState) -> None:
        """One failed probe or transport attempt against ``state``."""
        state.readmit_streak = 0
        state.consecutive_failures += 1
        self._m_consec_failures.labels(replica=state.id).set(
            state.consecutive_failures
        )
        if state.healthy and state.consecutive_failures >= self.eject_after:
            state.healthy = False
            state.ejections += 1
            self._m_ejections.labels(replica=state.id).inc()
            self._m_replica_up.labels(replica=state.id).set(0)
            self._m_healthy.set(len(self._healthy_states()))
            get_tracer().event("router/eject", attrs={
                "replica": state.id,
                "consecutive_failures": state.consecutive_failures,
            })

    def _note_probe_success(self, state: ReplicaState) -> None:
        state.consecutive_failures = 0
        self._m_consec_failures.labels(replica=state.id).set(0)
        if not state.healthy:
            state.readmit_streak += 1
            if state.readmit_streak >= self.readmit_after:
                state.healthy = True
                state.readmit_streak = 0
                state.readmissions += 1
                self._m_readmissions.labels(replica=state.id).inc()
                self._m_replica_up.labels(replica=state.id).set(1)
                self._m_healthy.set(len(self._healthy_states()))
                get_tracer().event("router/readmit", attrs={
                    "replica": state.id,
                    "readmissions": state.readmissions,
                })

    # -- request path --------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line or not line.endswith(b"\n"):
                    break
                response, stop_after = await self._route_line(line)
                writer.write(response)
                await writer.drain()
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):  # client vanished
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _inspect(self, line: bytes) -> Tuple[Optional[str], Optional[Dict]]:
        """Cheap op sniff; full JSON parse only when routing needs fields.

        Predict lines from every client in this repo serialize ``op``
        first, so the byte-prefix sniff catches the hot path. A parse is
        still needed when the request may carry a tenant, or when it is
        small enough to be a single point we want a shard key for; big
        batch lines (> ``shard_parse_limit``) skip parsing entirely —
        that is what keeps router CPU per request O(dims), not O(batch).
        """
        if line.startswith(_PREDICT_PREFIX):
            # Traced requests (rare; sampled at the client) always parse:
            # the router must re-inject its forward span's context per
            # attempt, so byte-transparent relay is reserved for the
            # untraced hot path.
            need_parse = (
                (self.quotas.enabled and b'"tenant"' in line)
                or (self.shard_enabled and len(line) <= self.shard_parse_limit)
                or (get_tracer().enabled and b'"trace"' in line)
            )
            if not need_parse:
                return "predict", None
        try:
            request = json.loads(line)
        except json.JSONDecodeError:
            return None, None
        if not isinstance(request, dict):
            return None, None
        op = request.get("op")
        return (op if isinstance(op, str) else None), request

    @staticmethod
    def _error_bytes(message: str, err: Optional[str] = None,
                     retryable: bool = False) -> bytes:
        payload: Dict[str, Any] = {"ok": False, "error": message}
        if err is not None:
            payload["err"] = err
        if retryable:
            payload["retryable"] = True
        return json.dumps(payload).encode("utf-8") + b"\n"

    async def _route_line(self, line: bytes) -> Tuple[bytes, bool]:
        op, request = self._inspect(line)
        if op is None:
            return self._error_bytes("malformed JSON request"), False
        if op == "predict":
            return await self._route_predict(line, request), False
        if op == "healthz":
            return self._op_healthz(), False
        if op == "stats":
            return await self._op_stats(), False
        if op == "metrics":
            return self._op_metrics(), False
        if op == "fleet-status":
            return self._op_fleet_status(), False
        if op in ("reload", "rollback", "shutdown") and not self.allow_admin:
            return self._error_bytes(
                f"admin op {op!r} is disabled on this router "
                "(non-loopback bind without allow_admin)"
            ), False
        if op == "reload":
            return await self._op_reload(request), False
        if op == "rollback":
            return await self._op_rollback(request), False
        if op == "shutdown":
            assert self._shutdown is not None
            self._shutdown.set()
            return b'{"ok": true, "stopping": true}\n', True
        # Anything else ("model-info", future server ops): transparent
        # pass-through to one healthy replica. Unknown mutability → no
        # failover retry; the replica's own error answer is relayed.
        return await self._forward_once(line), False

    async def _route_predict(self, line: bytes,
                             request: Optional[Dict[str, Any]]) -> bytes:
        if self.quotas.enabled:
            tenant = None if request is None else request.get("tenant")
            try:
                self.quotas.try_admit(tenant)
            except ShedError as exc:
                self._m_tenant_shed.labels(
                    tenant="anonymous" if tenant is None else str(tenant)
                ).inc()
                return self._error_bytes(str(exc), err="shed", retryable=True)
        key = self._shard_key(request)
        tracer = get_tracer()
        route_span = (
            tracer.from_wire(request, "router/route")
            if request is not None else NOOP_SPAN
        )
        self.retry_budget.note_request()
        tried: List[str] = []
        with route_span:
            for attempt in range(self.max_failovers + 1):
                # The first attempt is free — the budget only prices
                # *retries*, so steady-state traffic is never gated. A
                # refused retry sheds the request as retryable
                # 'unavailable': during a partition the fleet answers a
                # bounded trickle of fast errors instead of multiplying
                # every failure by max_failovers.
                if attempt and not self.retry_budget.try_spend():
                    self._m_retry_exhausted.inc()
                    route_span.set_status("retry_budget_exhausted")
                    return self._error_bytes(
                        "failover retry budget exhausted",
                        err="unavailable", retryable=True,
                    )
                state = self._pick(key, tried)
                if state is None:
                    break
                # Each forward attempt is its own span so a failover shows
                # up as two router/forward children (the dead replica's
                # marked !failover). The replica's server/predict span
                # parents to the *attempt* that reached it, which means
                # the line must be re-serialized with this attempt's span
                # id — only for traced requests; untraced lines stay the
                # raw client bytes.
                fwd_span = tracer.child_of(
                    route_span, "router/forward", attrs={"replica": state.id}
                )
                send_line = line
                if fwd_span.context is not None:
                    payload = dict(request)
                    inject(payload, fwd_span)
                    send_line = json.dumps(payload).encode("utf-8") + b"\n"
                state.outstanding += 1
                t0 = time.perf_counter()
                try:
                    with fwd_span:
                        try:
                            response = await self._forward(state, send_line)
                        except ConnectionLostError:
                            fwd_span.set_status("failover")
                            raise
                except ConnectionLostError:
                    tried.append(state.id)
                    self._note_failure(state)
                    self._m_routed.labels(
                        replica=state.id, outcome="failover"
                    ).inc()
                    continue
                finally:
                    state.outstanding -= 1
                self._m_forward.observe(time.perf_counter() - t0)
                state.consecutive_failures = 0
                outcome = self._classify_response(response)
                self._m_routed.labels(replica=state.id, outcome=outcome).inc()
                route_span.set_attr("replica", state.id)
                if tried:
                    route_span.set_attr("failovers", len(tried))
                if outcome != "ok":
                    route_span.set_status(outcome)
                return response
            self._m_unroutable.inc()
            route_span.set_status("unavailable")
            return self._error_bytes(
                "no healthy replica available", err="unavailable",
                retryable=True,
            )

    @staticmethod
    def _classify_response(response: bytes) -> str:
        if response.startswith(_OK_PREFIX):
            return "ok"
        # Failure responses are rare and small — a real parse is fine and
        # gives exact shed/deadline/circuit accounting per replica.
        try:
            payload = json.loads(response)
        except json.JSONDecodeError:  # pragma: no cover - defensive
            return "error"
        err = payload.get("err")
        if err in ("shed", "deadline_exceeded", "circuit_open", "queue_full"):
            return err
        return "error"

    def _pick(self, key: Optional[int],
              tried: Sequence[str]) -> Optional[ReplicaState]:
        healthy = [s for s in self._healthy_states() if s.id not in tried]
        if not healthy:
            # Desperation pass: with everything ejected (or tried), an
            # ejected-but-maybe-back replica beats a guaranteed error.
            healthy = [
                s for s in self._states.values() if s.id not in tried
            ]
            if not healthy:
                return None
            return min(healthy, key=lambda s: s.score)
        if len(healthy) == 1:
            return healthy[0]
        if key is not None:
            try:
                return self._pick_sharded(key, healthy)
            except Exception:
                # A shard-map failure must degrade to balanced routing,
                # never surface as a dropped client connection.
                pass
        a, b = self._rng.sample(healthy, 2)
        return a if a.score <= b.score else b

    def _pick_sharded(self, key: int,
                      healthy: List[ReplicaState]) -> ReplicaState:
        # Bounded-load consistent hashing: the shard owner takes the
        # request unless it is loaded past `factor × fleet mean`, in which
        # case the request walks the ring to the next healthy replica.
        total = sum(s.outstanding for s in healthy)
        cap = max(
            self.spill_min_headroom,
            math.ceil(self.spill_factor * (total + 1) / len(healthy)),
        )
        allowed = [s.id for s in healthy]
        owner: Optional[ReplicaState] = None
        for node_id in self.ring.walk(key, only=allowed):
            state = self._states[node_id]
            if owner is None:
                owner = state
            if state.outstanding < cap:
                if state is not owner:
                    self._m_spill.labels(replica=state.id).inc()
                return state
        return owner if owner is not None else healthy[0]

    async def _forward(self, state: ReplicaState, line: bytes) -> bytes:
        """One request → one replica; returns the raw response line.

        Any transport-level failure (connect, send, read, timeout, EOF)
        raises :class:`ConnectionLostError` and poisons the connection —
        never the replica's *response*, which is relayed verbatim.
        """
        conn = await state.pool.acquire()
        try:
            conn.writer.write(line)
            await conn.writer.drain()
            response = await asyncio.wait_for(
                conn.reader.readline(), self.forward_timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            state.pool.discard(conn)
            reason = "timeout" if isinstance(exc, asyncio.TimeoutError) else "reset"
            raise ConnectionLostError(
                f"replica {state.id} connection lost: {exc}", reason=reason
            ) from exc
        if not response or not response.endswith(b"\n"):
            state.pool.discard(conn)
            raise ConnectionLostError(
                f"replica {state.id} closed the connection",
                reason="closed" if not response else "reset",
            )
        state.pool.release(conn)
        return response

    async def _forward_once(self, line: bytes) -> bytes:
        state = self._pick(None, ())
        if state is None:
            self._m_unroutable.inc()
            return self._error_bytes(
                "no healthy replica available", err="unavailable",
                retryable=True,
            )
        state.outstanding += 1
        try:
            return await self._forward(state, line)
        except ConnectionLostError as exc:
            self._note_failure(state)
            return self._error_bytes(str(exc), err="unavailable",
                                     retryable=True)
        finally:
            state.outstanding -= 1

    async def admin_request(self, state: ReplicaState,
                            payload: Dict[str, Any]) -> Dict[str, Any]:
        """Routed control-plane RPC to one specific replica (rollout path)."""
        line = json.dumps(payload).encode("utf-8") + b"\n"
        response = await self._forward(state, line)
        return json.loads(response)

    # -- local ops -----------------------------------------------------------

    def _op_healthz(self) -> bytes:
        healthy = self._healthy_states()
        status = "serving" if healthy else "unavailable"
        if healthy and len(healthy) < len(self._states):
            status = "degraded"
        payload = {
            "ok": True,
            "status": status,
            "role": "fleet-router",
            "healthy_replicas": len(healthy),
            "replicas": len(self._states),
            "rollout": self.rollout.state,
            "uptime_s": round(time.time() - self.started_at, 3),
            "fingerprints": {
                s.id: s.polled.get("fingerprint")
                for s in self._states.values() if s.polled
            },
        }
        return json.dumps(payload).encode("utf-8") + b"\n"

    async def _op_stats(self) -> bytes:
        per_replica: Dict[str, Any] = {}
        for state in self._healthy_states():
            try:
                per_replica[state.id] = await self.admin_request(
                    state, {"op": "stats"}
                )
            except (ConnectionLostError, json.JSONDecodeError):
                per_replica[state.id] = {"ok": False, "error": "unreachable"}
        payload = {"ok": True, "fleet": self.fleet_snapshot(),
                   "replicas": per_replica}
        return json.dumps(payload).encode("utf-8") + b"\n"

    def _op_metrics(self) -> bytes:
        registries = [self.registry, default_registry()]
        payload = {
            "ok": True,
            "prometheus": render_prometheus(registries),
            "metrics": render_json(registries),
        }
        return json.dumps(payload).encode("utf-8") + b"\n"

    def _op_fleet_status(self) -> bytes:
        payload = {"ok": True, **self.fleet_snapshot(detail=True)}
        return json.dumps(payload).encode("utf-8") + b"\n"

    def fleet_snapshot(self, detail: bool = False) -> Dict[str, Any]:
        """JSON-friendly router state (the ``fleet-status`` payload)."""
        routed: Dict[str, Dict[str, int]] = {}
        for sample in self._m_routed.snapshot()["samples"]:
            if not sample["value"]:
                continue
            labels = sample["labels"]
            routed.setdefault(labels["replica"], {})[labels["outcome"]] = int(
                sample["value"]
            )
        spills = sum(
            int(s["value"]) for s in self._m_spill.snapshot()["samples"]
        )
        snap: Dict[str, Any] = {
            "healthy_replicas": len(self._healthy_states()),
            "replicas": {
                rid: self._states[rid].snapshot()
                for rid in sorted(self._states)
            },
            "routed": routed,
            "shard": {
                "enabled": self.shard_enabled,
                "keyed_by": (
                    "cell_code" if self._shard_model is not None
                    else "quantized_coords"
                ),
                "spills": spills,
            },
            "unroutable": int(self._m_unroutable.value),
            "retry_budget": self.retry_budget.snapshot(),
            "rollout": self.rollout.state,
            "tenant_sheds": self.quotas.shed_counts(),
        }
        if detail:
            snap["rollout_history"] = self.rollout.history
        return snap

    async def _op_reload(self, request: Optional[Dict[str, Any]]) -> bytes:
        if request is None or not request.get("path"):
            return self._error_bytes("reload request needs a 'path' field")
        assert self._admin_lock is not None
        if self._admin_lock.locked():
            return self._error_bytes(
                "a rollout is already in progress", err="rollout_busy"
            )
        async with self._admin_lock:
            try:
                summary = await self.rollout.run(
                    str(request["path"]), tag=request.get("tag")
                )
            except ServeError as exc:
                return self._error_bytes(str(exc), err="rollout_failed")
        return json.dumps({"ok": True, **summary}).encode("utf-8") + b"\n"

    async def _op_rollback(self, request: Optional[Dict[str, Any]]) -> bytes:
        version = None if request is None else request.get("version")
        results: Dict[str, Any] = {}
        max_version = 0
        fingerprint = None
        for state in self._healthy_states():
            payload: Dict[str, Any] = {"op": "rollback"}
            if version is not None:
                payload["version"] = version
            try:
                resp = await self.admin_request(state, payload)
            except ConnectionLostError as exc:
                results[state.id] = str(exc)
                continue
            results[state.id] = resp.get("version", resp.get("error"))
            if resp.get("ok"):
                max_version = max(max_version, int(resp["version"]))
                fingerprint = resp.get("fingerprint")
        if not max_version:
            return self._error_bytes(f"rollback failed on every replica: "
                                     f"{results}")
        payload = {"ok": True, "version": max_version,
                   "fingerprint": fingerprint, "replicas": results}
        return json.dumps(payload).encode("utf-8") + b"\n"


class RouterHandle:
    """A :class:`FleetRouter` running on a daemon thread (test/bench/CLI)."""

    def __init__(self, router: FleetRouter, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.router = router
        self.thread = thread
        self._loop = loop

    @property
    def address(self) -> Tuple[str, int]:
        assert self.router.bound_port is not None
        return self.router.host, self.router.bound_port

    def set_endpoint(self, replica_id: str, host: str, port: int,
                     timeout: float = 10.0) -> None:
        """Thread-safe endpoint update (the supervisor's restart hook)."""
        future = asyncio.run_coroutine_threadsafe(
            self.router.set_endpoint(replica_id, host, port), self._loop
        )
        future.result(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self.thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(self.router.stop(), self._loop)
            except RuntimeError:  # loop already closing on its own
                pass
            self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - watchdog only
            raise ServeError("router thread failed to stop in time")

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def router_in_thread(replicas: Sequence[Tuple[str, str, int]],
                     startup_timeout: float = 10.0,
                     **kwargs) -> RouterHandle:
    """Start a :class:`FleetRouter` on a background thread; block until bound.

    The fleet twin of :func:`repro.serve.server.serve_in_thread`, with
    the same startup-failure discipline: a bind error surfaces as
    :class:`ServeError` here, never as a half-built handle.
    """
    router = FleetRouter(replicas, **kwargs)
    started = threading.Event()
    failure: Dict[str, BaseException] = {}
    loop_holder: Dict[str, asyncio.AbstractEventLoop] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def _main():
            await router.start()
            started.set()  # only after a successful bind
            await router.serve_until_shutdown()

        try:
            loop.run_until_complete(_main())
        except BaseException as exc:  # surface bind errors to the caller
            failure["exc"] = exc
        finally:
            started.set()
            loop.close()

    thread = threading.Thread(target=_run, name="repro-fleet-router",
                              daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise ServeError("router failed to start within timeout")
    if "exc" in failure:
        raise ServeError(f"router failed to start: {failure['exc']}")
    return RouterHandle(router, thread, loop_holder["loop"])
