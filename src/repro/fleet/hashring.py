"""Consistent-hash ring with virtual nodes and bounded-load spill.

The fleet shards ``predict`` traffic by *bin key*: every request whose
point lands in the same KeyBin2 grid cell routes to the same replica, so
that replica's version-keyed :class:`~repro.serve.cache.LabelCache`
accumulates exactly the cells its shard actually sees. Without sharding,
scale-out multiplies cold caches — each of N replicas re-misses every
hot cell, and the fleet-wide hit rate decays toward ``1/N`` of the
single-replica rate for the same traffic.

Consistent hashing (many virtual nodes per replica on a shared 64-bit
ring) keeps the shard map stable under membership change: adding or
removing one replica remaps only ~``1/N`` of the key space, so the other
replicas' caches survive the event untouched.

Pure data structure — no sockets, no clocks. Hashes are
:func:`hashlib.blake2b` digests, so shard placement is deterministic
across processes and runs (never the seed-randomized builtin ``hash``).

Bounded-load spill (:meth:`ConsistentHashRing.walk` consumed by the
router) follows the "consistent hashing with bounded loads" idea: the
shard owner serves the key *unless* it is already loaded beyond a factor
``c`` of the current fleet mean, in which case the key spills to the
next distinct replica along the ring. Affinity is preserved in the
common case; a hot shard degrades into bounded extra cache misses
instead of a hot-spot queue.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ValidationError

__all__ = ["ConsistentHashRing"]


def _hash64(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "little"
    )


class ConsistentHashRing:
    """Deterministic consistent-hash ring over string node ids.

    Parameters
    ----------
    vnodes:
        Virtual nodes per physical node. More vnodes → smoother key-space
        split (the classic variance argument) at O(vnodes · N) memory.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValidationError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: List[int] = []          # sorted vnode positions
        self._owner: Dict[int, str] = {}      # position -> node id
        self._nodes: Dict[str, List[int]] = {}  # node id -> its positions

    # -- membership ----------------------------------------------------------

    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValidationError(f"node {node_id!r} already on the ring")
        positions = []
        for v in range(self.vnodes):
            pos = _hash64(f"{node_id}#{v}".encode("utf-8"))
            # Astronomically unlikely 64-bit collision; deterministic
            # re-probe keeps the ring well-defined if it ever happens.
            while pos in self._owner:
                pos = _hash64(pos.to_bytes(8, "little") + b"~")
            self._owner[pos] = node_id
            bisect.insort(self._points, pos)
            positions.append(pos)
        self._nodes[node_id] = positions

    def remove(self, node_id: str) -> None:
        positions = self._nodes.pop(node_id, None)
        if positions is None:
            raise ValidationError(f"node {node_id!r} is not on the ring")
        drop = set(positions)
        self._points = [p for p in self._points if p not in drop]
        for pos in positions:
            del self._owner[pos]

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- lookup --------------------------------------------------------------

    def key_position(self, key: int) -> int:
        """Ring position of a shard key (for tests / diagnostics)."""
        # Cell codes are unbounded ints (high-dimensional models pack many
        # per-dim bins into one code), so size the byte string to the key.
        v = int(key)
        width = max(8, (v.bit_length() + 8) // 8)
        return _hash64(v.to_bytes(width, "little", signed=True))

    def walk(self, key: int,
             only: Optional[Sequence[str]] = None) -> Iterator[str]:
        """Distinct node ids in ring order starting at ``key``'s owner.

        The first yielded node is the shard owner; each subsequent one is
        the bounded-load spill target in preference order. ``only``
        restricts the walk to a subset (the router passes the currently
        healthy replicas), preserving ring order among them.
        """
        if not self._points:
            return
        allowed = None if only is None else set(only)
        start = bisect.bisect_left(self._points, self.key_position(key))
        seen = set()
        n = len(self._points)
        for i in range(n):
            node = self._owner[self._points[(start + i) % n]]
            if node in seen or (allowed is not None and node not in allowed):
                continue
            seen.add(node)
            yield node

    def owner(self, key: int) -> Optional[str]:
        """The shard owner for ``key`` (``None`` on an empty ring)."""
        return next(self.walk(key), None)

    def share_of_keyspace(self, node_id: str) -> float:
        """Fraction of the 64-bit key space owned by ``node_id``'s vnodes."""
        if node_id not in self._nodes:
            raise ValidationError(f"node {node_id!r} is not on the ring")
        if len(self._nodes) == 1:
            return 1.0
        total = 0
        span = 1 << 64
        for i, pos in enumerate(self._points):
            if self._owner[pos] == node_id:
                prev = self._points[i - 1] if i else self._points[-1] - span
                total += pos - prev
        return total / span
