"""Replicated serving tier: a capacity-aware router over N model servers.

One :class:`~repro.serve.server.ModelServer` serves a fitted KeyBin2
model well; a production footprint needs *N* of them behind a single
endpoint — with health-aware routing, cache-preserving sharding, tenant
quotas, and model rollouts that cannot split-brain the fleet. This
subpackage is that tier, speaking the existing JSON wire protocol
unchanged so every client and load tool drives a fleet transparently:

hashring    consistent-hash ring (vnodes, bounded-load spill walk)
quotas      per-tenant token-bucket quotas ahead of replica admission
replica     ReplicaSupervisor: spawn/monitor/restart local replicas
router      FleetRouter: p2c + sharded routing, probing, failover
rollout     staged canary → percentage → fleet model promotion
journal     crash-safe rollout WAL + restart recovery (fleet-recover)
chaosproxy  deterministic TCP fault injection for partial-failure tests
bench       scaling + zero-downtime-reload benchmark (fleet-bench)

Quickstart::

    from repro.fleet import ReplicaSupervisor, router_in_thread
    from repro.serve import ServeClient

    with ReplicaSupervisor("model.json", n_replicas=3) as sup:
        with router_in_thread(sup.start()) as handle:
            with ServeClient(*handle.address) as client:
                print(client.predict(x[0]).label)

or from the command line: ``python -m repro fleet --model model.json``.
"""

from __future__ import annotations

from repro.fleet.bench import run_fleet_bench
from repro.fleet.chaosproxy import (
    ChaosPlan,
    ChaosProxy,
    ChaosProxyHandle,
    chaos_proxy_in_thread,
)
from repro.fleet.hashring import ConsistentHashRing
from repro.fleet.journal import (
    JournalError,
    RolloutJournal,
    plan_recovery,
    reconcile_replica,
    recover_fleet,
)
from repro.fleet.quotas import TenantQuotaPolicy, TenantQuotas
from repro.fleet.replica import ReplicaSupervisor
from repro.fleet.rollout import RolloutConfig, RolloutError, RolloutManager
from repro.fleet.router import FleetRouter, RouterHandle, router_in_thread

__all__ = [
    "ChaosPlan",
    "ChaosProxy",
    "ChaosProxyHandle",
    "ConsistentHashRing",
    "FleetRouter",
    "JournalError",
    "ReplicaSupervisor",
    "RolloutConfig",
    "RolloutError",
    "RolloutJournal",
    "RolloutManager",
    "RouterHandle",
    "TenantQuotaPolicy",
    "TenantQuotas",
    "chaos_proxy_in_thread",
    "plan_recovery",
    "reconcile_replica",
    "recover_fleet",
    "router_in_thread",
    "run_fleet_bench",
]
