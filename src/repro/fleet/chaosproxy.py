"""Deterministic network fault injection between router and replicas.

SIGKILL-based chaos (``tests/fleet/test_chaos_smoke.py``) exercises only
the cleanest failure mode a fleet can have: a replica that dies *fast*.
Real networks fail worse — connections hang, responses arrive truncated,
a partition swallows SYNs silently — and those are the modes that expose
retry amplification and failover bugs. :class:`ChaosProxy` is an asyncio
TCP proxy tests interpose between the router and one replica (or between
a client and the router) that injects exactly those faults, *deterministically*:
every fault fires at a declared connection index and response-line index,
so a chaos test that passes once passes always — the same discipline as
:mod:`repro.comm.faults`, ported from message-passing to sockets.

Faults are declared in a :class:`ChaosPlan`, written in code or parsed
from a compact spec (comma separated; connection indices are 1-based in
accept order, ``0`` is a wildcard matching every connection)::

    partition:3          reset connections 3+ on accept (until heal())
    partition:3-5        reset connections 3..5 on accept, 6+ connect fine
    delay:0:0.05         sleep 50 ms before forwarding every response line
    delay:2:0.1:0.5      conn 2: 100 ms ± 50% deterministic jitter
    reset:1@4            conn 1: reset instead of forwarding its 4th response
    trunc:2@1:20         conn 2: forward 20 bytes of response 1, then reset
    slow:0:16:0.02       trickle every response 16 bytes per 20 ms (slow-loris)

Responses are counted in wire frames (newline-delimited JSON lines), so
``reset:1@4`` means "the 4th reply this connection would have carried" —
mid-response from the client's point of view, after the request was sent.

The proxy also supports *imperative* partitioning for tests that need a
fault bracketed around a specific action: :meth:`ChaosProxy.partition`
resets every live connection and refuses new ones until
:meth:`ChaosProxy.heal`. Per-connection byte/line/fault counters are kept
for assertions (`proxy.counters`).
"""

from __future__ import annotations

import asyncio
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServeError, ValidationError

__all__ = [
    "Partition",
    "DelayLines",
    "ResetAt",
    "TruncateAt",
    "SlowLoris",
    "ChaosPlan",
    "ChaosProxy",
    "ChaosProxyHandle",
    "chaos_proxy_in_thread",
]

#: Stream limit for proxied lines — batch predicts exceed asyncio's 64 KiB
#: default; the proxy must never be the layer that caps request size.
_LINE_LIMIT = 4 * 1024 * 1024
_READ_CHUNK = 65536


@dataclass(frozen=True)
class Partition:
    """Reset connections ``first..last`` (1-based, inclusive) on accept.

    ``last=None`` leaves the partition open-ended: every connection from
    ``first`` on is refused until the plan is replaced or
    :meth:`ChaosProxy.heal` clears imperative state (declarative
    partitions are static — they describe accept order, not time).
    """

    first: int
    last: Optional[int] = None

    def __post_init__(self) -> None:
        if self.first < 1:
            raise ValidationError("partition connections are 1-based")
        if self.last is not None and self.last < self.first:
            raise ValidationError("partition range must be first <= last")

    def matches(self, conn: int) -> bool:
        return conn >= self.first and (self.last is None or conn <= self.last)


@dataclass(frozen=True)
class DelayLines:
    """Sleep ``seconds`` (± ``jitter`` fraction) before each response line."""

    conn: int = 0
    seconds: float = 0.05
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.conn < 0:
            raise ValidationError("conn must be >= 0 (0 = every connection)")
        if self.seconds < 0:
            raise ValidationError("delay must be >= 0")
        if not (0 <= self.jitter < 1):
            raise ValidationError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class ResetAt:
    """Reset the connection instead of forwarding response line ``nth``."""

    conn: int
    nth: int = 1

    def __post_init__(self) -> None:
        if self.conn < 0 or self.nth < 1:
            raise ValidationError("reset needs conn >= 0 and 1-based nth")


@dataclass(frozen=True)
class TruncateAt:
    """Forward only ``nbytes`` of response line ``nth``, then reset."""

    conn: int
    nth: int = 1
    nbytes: int = 16

    def __post_init__(self) -> None:
        if self.conn < 0 or self.nth < 1 or self.nbytes < 0:
            raise ValidationError(
                "trunc needs conn >= 0, 1-based nth, nbytes >= 0"
            )


@dataclass(frozen=True)
class SlowLoris:
    """Trickle every response line ``nbytes`` at a time, ``seconds`` apart."""

    conn: int = 0
    nbytes: int = 16
    seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.conn < 0 or self.nbytes < 1 or self.seconds < 0:
            raise ValidationError(
                "slow needs conn >= 0, nbytes >= 1, seconds >= 0"
            )


@dataclass
class ChaosPlan:
    """A seeded, deterministic set of network faults for one proxy.

    ``seed`` drives delay jitter (per-connection stream, so conn 2's
    jitter does not depend on whether conn 1 ever connected); with
    ``jitter=0`` everywhere the plan reproduces byte-for-byte.
    """

    faults: List[Any] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(
                f, (Partition, DelayLines, ResetAt, TruncateAt, SlowLoris)
            ):
                raise ValidationError(f"unknown chaos fault {f!r}")

    def _for_conn(self, kind, conn: int) -> List[Any]:
        return [
            f for f in self.faults
            if isinstance(f, kind) and f.conn in (0, conn)
        ]

    def partitioned(self, conn: int) -> bool:
        return any(
            f.matches(conn) for f in self.faults if isinstance(f, Partition)
        )

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosPlan":
        """Parse the compact spec (see module docstring)."""
        faults: List[Any] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            fields = part.split(":")
            kind = fields[0]
            try:
                if kind == "partition" and len(fields) == 2:
                    lo, _, hi = fields[1].partition("-")
                    faults.append(
                        Partition(int(lo), int(hi) if hi else None)
                    )
                elif kind == "delay" and len(fields) in (3, 4):
                    jit = float(fields[3]) if len(fields) == 4 else 0.0
                    faults.append(
                        DelayLines(int(fields[1]), float(fields[2]), jit)
                    )
                elif kind == "reset" and len(fields) == 2:
                    conn_s, nth_s = fields[1].split("@")
                    faults.append(ResetAt(int(conn_s), int(nth_s)))
                elif kind == "trunc" and len(fields) == 3:
                    conn_s, nth_s = fields[1].split("@")
                    faults.append(
                        TruncateAt(int(conn_s), int(nth_s), int(fields[2]))
                    )
                elif kind == "slow" and len(fields) == 4:
                    faults.append(
                        SlowLoris(int(fields[1]), int(fields[2]),
                                  float(fields[3]))
                    )
                else:
                    raise ValueError(f"unknown chaos kind {kind!r}")
            except (ValueError, IndexError) as exc:
                raise ValidationError(
                    f"cannot parse chaos spec {part!r}: {exc} (expected "
                    "partition:N[-M], delay:C:SECS[:JITTER], reset:C@K, "
                    "trunc:C@K:BYTES, slow:C:BYTES:SECS)"
                ) from exc
        return cls(faults, seed=seed)


class _ConnChaos:
    """Resolved fault state for one accepted connection."""

    def __init__(self, plan: ChaosPlan, conn: int):
        self.delays = plan._for_conn(DelayLines, conn)
        self.resets = {f.nth for f in plan._for_conn(ResetAt, conn)}
        self.truncs = {
            f.nth: f.nbytes for f in plan._for_conn(TruncateAt, conn)
        }
        slows = plan._for_conn(SlowLoris, conn)
        self.slow = slows[0] if slows else None
        self._rng = (
            random.Random((plan.seed << 16) ^ conn)
            if any(d.jitter for d in self.delays) else None
        )

    async def before_line(self) -> None:
        for d in self.delays:
            seconds = d.seconds
            if d.jitter and self._rng is not None:
                seconds *= 1.0 + self._rng.uniform(-d.jitter, d.jitter)
            if seconds > 0:
                await asyncio.sleep(seconds)


class ChaosProxy:
    """Asyncio TCP proxy applying a :class:`ChaosPlan` to one upstream.

    Client→upstream bytes are forwarded verbatim as they arrive; the
    upstream→client direction is read in newline frames so line-indexed
    faults (reset/trunc/slow) fire at exact protocol boundaries. Faults
    only ever *remove or delay* bytes — the proxy never corrupts a line
    it forwards, so anything the client successfully parses is authentic.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[ChaosPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 5.0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.plan = plan if plan is not None else ChaosPlan()
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.bound_port: Optional[int] = None
        self.accepted = 0
        #: Per-connection fault/traffic accounting, keyed by 1-based
        #: connection index: bytes_up/bytes_down/lines/resets/partitioned.
        self.counters: Dict[int, Dict[str, int]] = {}
        self._partitioned = False          # imperative partition() state
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._live_writers: set = set()
        self._lock = threading.Lock()

    # -- imperative faults ---------------------------------------------------

    def partition(self) -> None:
        """Hard-partition the upstream: kill live connections, refuse new.

        Thread-safe (tests call it from the foreground thread while the
        proxy loop runs in the background); takes effect immediately for
        new connections and asynchronously-soon for live ones.
        """
        with self._lock:
            self._partitioned = True
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._kill_live)

    def heal(self) -> None:
        """Lift an imperative partition; declarative plan faults remain."""
        with self._lock:
            self._partitioned = False

    @property
    def is_partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    def _kill_live(self) -> None:
        for writer in list(self._live_writers):
            _abort(writer)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("chaos proxy already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_LINE_LIMIT
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._kill_live()
        self._server = None

    # -- data path -----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.accepted += 1
        conn = self.accepted
        stats = self.counters.setdefault(
            conn, {"bytes_up": 0, "bytes_down": 0, "lines": 0,
                   "resets": 0, "partitioned": 0},
        )
        if self.is_partitioned or self.plan.partitioned(conn):
            stats["partitioned"] += 1
            _abort(writer)
            return
        try:
            up_reader, up_writer = await asyncio.wait_for(
                asyncio.open_connection(
                    self.upstream_host, self.upstream_port, limit=_LINE_LIMIT
                ),
                self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            _abort(writer)
            return
        chaos = _ConnChaos(self.plan, conn)
        self._live_writers.update((writer, up_writer))
        pump_up = asyncio.ensure_future(
            self._pump_raw(reader, up_writer, stats)
        )
        pump_down = asyncio.ensure_future(
            self._pump_lines(up_reader, writer, conn, chaos, stats)
        )
        try:
            # Either direction dying tears down both: the wire protocol
            # is strictly request/response, so a half-open proxy conn
            # would only wedge the client.
            done, pending = await asyncio.wait(
                {pump_up, pump_down}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        finally:
            self._live_writers.difference_update((writer, up_writer))
            _abort(up_writer)
            _abort(writer)

    async def _pump_raw(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter,
                        stats: Dict[str, int]) -> None:
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                stats["bytes_up"] += len(chunk)
                writer.write(chunk)
                await writer.drain()
        except (OSError, asyncio.IncompleteReadError):
            return

    async def _pump_lines(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter, conn: int,
                          chaos: _ConnChaos,
                          stats: Dict[str, int]) -> None:
        buffer = b""
        try:
            while True:
                nl = buffer.find(b"\n")
                if nl < 0:
                    chunk = await reader.read(_READ_CHUNK)
                    if not chunk:
                        # Upstream EOF: flush any torn tail verbatim.
                        if buffer:
                            writer.write(buffer)
                            await writer.drain()
                        return
                    buffer += chunk
                    continue
                line, buffer = buffer[:nl + 1], buffer[nl + 1:]
                stats["lines"] += 1
                nth = stats["lines"]
                await chaos.before_line()
                if self.is_partitioned or nth in chaos.resets:
                    stats["resets"] += 1
                    return
                if nth in chaos.truncs:
                    stats["resets"] += 1
                    kept = line[:chaos.truncs[nth]]
                    if kept:
                        writer.write(kept)
                        await writer.drain()
                        stats["bytes_down"] += len(kept)
                    return
                if chaos.slow is not None:
                    for i in range(0, len(line), chaos.slow.nbytes):
                        writer.write(line[i:i + chaos.slow.nbytes])
                        await writer.drain()
                        if i + chaos.slow.nbytes < len(line):
                            await asyncio.sleep(chaos.slow.seconds)
                else:
                    writer.write(line)
                    await writer.drain()
                stats["bytes_down"] += len(line)
        except (OSError, asyncio.IncompleteReadError):
            return

    def snapshot(self) -> Dict[str, Any]:
        """Aggregate + per-connection accounting for test assertions."""
        totals = {"bytes_up": 0, "bytes_down": 0, "lines": 0,
                  "resets": 0, "partitioned": 0}
        for stats in self.counters.values():
            for key in totals:
                totals[key] += stats[key]
        return {
            "accepted": self.accepted,
            "partitioned_now": self.is_partitioned,
            "totals": totals,
            "connections": {str(k): dict(v) for k, v in self.counters.items()},
        }


def _abort(writer: asyncio.StreamWriter) -> None:
    """RST-style close: drop buffered bytes so the peer sees a hard reset."""
    transport = writer.transport
    try:
        if transport is not None and hasattr(transport, "abort"):
            transport.abort()
        else:  # pragma: no cover - non-socket transports
            writer.close()
    except OSError:  # pragma: no cover - already dead
        pass


class ChaosProxyHandle:
    """A :class:`ChaosProxy` running on a daemon thread (tests, CLI)."""

    def __init__(self, proxy: ChaosProxy, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.proxy = proxy
        self.thread = thread
        self._loop = loop

    @property
    def address(self) -> Tuple[str, int]:
        assert self.proxy.bound_port is not None
        return self.proxy.host, self.proxy.bound_port

    def partition(self) -> None:
        self.proxy.partition()

    def heal(self) -> None:
        self.proxy.heal()

    def stop(self, timeout: float = 10.0) -> None:
        if self.thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closing
                pass
            self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - watchdog only
            raise ServeError("chaos proxy thread failed to stop in time")

    def __enter__(self) -> "ChaosProxyHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def chaos_proxy_in_thread(upstream_host: str, upstream_port: int,
                          plan: Optional[ChaosPlan] = None,
                          startup_timeout: float = 10.0,
                          **kwargs) -> ChaosProxyHandle:
    """Start a :class:`ChaosProxy` on a background thread; block until bound.

    Same startup-failure discipline as
    :func:`~repro.fleet.router.router_in_thread`: a bind error surfaces
    as :class:`~repro.errors.ServeError`, never a half-built handle.
    """
    proxy = ChaosProxy(upstream_host, upstream_port, plan=plan, **kwargs)
    started = threading.Event()
    failure: Dict[str, BaseException] = {}
    holder: Dict[str, Any] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        stop_event = asyncio.Event()
        holder["stop_event"] = stop_event

        async def _main():
            await proxy.start()
            started.set()  # only after a successful bind
            await stop_event.wait()
            await proxy.stop()

        try:
            loop.run_until_complete(_main())
        except BaseException as exc:  # surface bind errors to the caller
            failure["exc"] = exc
        finally:
            started.set()
            loop.close()

    thread = threading.Thread(target=_run, name="repro-chaos-proxy",
                              daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise ServeError("chaos proxy failed to start within timeout")
    if "exc" in failure:
        raise ServeError(f"chaos proxy failed to start: {failure['exc']}")
    handle = ChaosProxyHandle(proxy, thread, holder["loop"])
    handle._stop_event = holder["stop_event"]
    return handle
