"""DBSCAN with a grid-indexed region query (Ester et al. 1996).

Density-based baseline. The uniform grid with cell side ``eps`` bounds
every ε-neighbourhood query to the 3^N adjacent cells, which is fast in
low dimensions and degrades exactly the way the paper reports for
(PDS)DBSCAN in high dimensions — in 1280-d the grid collapses to one cell
per point, queries approach O(M²), distances concentrate, and the found
clustering collapses to a single cluster.

Labels: ``-1`` marks noise, clusters are ``0..n_clusters-1``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_array_2d, check_finite

__all__ = ["DBSCAN", "GridIndex"]

NOISE = -1
_UNVISITED = -2


class GridIndex:
    """Uniform grid over the data with cell side ``eps``.

    ``neighbors(i)`` returns indices within ``eps`` of point ``i`` by
    scanning the 3^N surrounding cells. For dimensionality above
    ``dense_dim_limit`` the grid would have 3^N neighbour cells per query,
    so the index degrades to brute force — mirroring how real spatial
    indices break down in high dimensions.
    """

    def __init__(self, x: np.ndarray, eps: float, dense_dim_limit: int = 6):
        if eps <= 0:
            raise ValidationError("eps must be positive")
        self.x = x
        self.eps = float(eps)
        self.brute = x.shape[1] > dense_dim_limit
        if not self.brute:
            self.cells: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
            keys = np.floor(x / eps).astype(np.int64)
            self._keys = keys
            for i in range(x.shape[0]):
                self.cells[tuple(keys[i])].append(i)
            # Precompute the 3^N offset stencil.
            n = x.shape[1]
            grids = np.meshgrid(*([np.array([-1, 0, 1])] * n), indexing="ij")
            self._stencil = np.stack([g.ravel() for g in grids], axis=1)

    def neighbors(self, i: int) -> np.ndarray:
        """Indices of all points within ``eps`` of point ``i`` (incl. itself)."""
        p = self.x[i]
        if self.brute:
            d2 = np.einsum("ij,ij->i", self.x - p, self.x - p)
            return np.flatnonzero(d2 <= self.eps * self.eps)
        base = self._keys[i]
        candidates: List[int] = []
        for off in self._stencil:
            cell = tuple(base + off)
            bucket = self.cells.get(cell)
            if bucket:
                candidates.extend(bucket)
        cand = np.asarray(candidates, dtype=np.int64)
        diff = self.x[cand] - p
        d2 = np.einsum("ij,ij->i", diff, diff)
        return cand[d2 <= self.eps * self.eps]


class DBSCAN:
    """Density-based spatial clustering of applications with noise.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_points:
        Core-point threshold (neighbourhood size including the point).
    max_points:
        Safety valve: refuse inputs larger than this (the paper notes
        PDSDBSCAN "could not handle more than 100,000 points" in their
        dimension-scaling runs; the cap makes that failure mode explicit
        instead of thrashing). ``None`` disables.

    Attributes (after fit): ``labels_``, ``n_clusters_``,
    ``core_sample_mask_``.
    """

    def __init__(
        self,
        eps: float,
        min_points: int = 5,
        max_points: Optional[int] = None,
    ):
        if eps <= 0:
            raise ValidationError("eps must be positive")
        if min_points < 1:
            raise ValidationError("min_points must be >= 1")
        self.eps = float(eps)
        self.min_points = int(min_points)
        self.max_points = max_points
        self.labels_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "DBSCAN":
        x = check_array_2d(x, "X")
        check_finite(x, "X")
        m = x.shape[0]
        if self.max_points is not None and m > self.max_points:
            raise ValidationError(
                f"DBSCAN refusing {m} points (max_points={self.max_points}): "
                "neighbourhood queries would be prohibitively expensive"
            )
        index = GridIndex(x, self.eps)
        labels = np.full(m, _UNVISITED, dtype=np.int64)
        core = np.zeros(m, dtype=bool)
        cluster = 0
        for i in range(m):
            if labels[i] != _UNVISITED:
                continue
            neigh = index.neighbors(i)
            if neigh.size < self.min_points:
                labels[i] = NOISE
                continue
            core[i] = True
            labels[i] = cluster
            queue = deque(int(j) for j in neigh if labels[j] in (_UNVISITED, NOISE))
            while queue:
                j = queue.popleft()
                if labels[j] == NOISE:
                    labels[j] = cluster  # border point adopted by cluster
                    continue
                if labels[j] != _UNVISITED:
                    continue
                labels[j] = cluster
                j_neigh = index.neighbors(j)
                if j_neigh.size >= self.min_points:
                    core[j] = True
                    queue.extend(
                        int(q) for q in j_neigh if labels[q] in (_UNVISITED, NOISE)
                    )
            cluster += 1
        self.labels_ = labels
        self.core_sample_mask_ = core
        self.n_clusters_ = cluster
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_
