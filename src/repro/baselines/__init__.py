"""Comparator algorithms from the paper's evaluation (§4).

All are implemented from scratch on the same substrates as KeyBin2 so the
comparison is apples-to-apples:

- :class:`~repro.baselines.kmeans.KMeans` — k-means++ seeding + Lloyd
  iterations (the paper's "kmeans++" from scikit-learn 0.17.1),
- :func:`~repro.baselines.parallel_kmeans.parallel_kmeans_spmd` /
  :class:`~repro.baselines.parallel_kmeans.ParallelKMeans` — Liao-style
  MPI k-means (per-iteration centroid-sum allreduce),
- :class:`~repro.baselines.dbscan.DBSCAN` — grid-indexed DBSCAN,
- :class:`~repro.baselines.pdsdbscan.PDSDBSCAN` — partitioned parallel
  DBSCAN with disjoint-set merging (Patwary et al.),
- :class:`~repro.baselines.xmeans.XMeans` — BIC-driven k selection
  (discussed in the paper's related work as the fix for k-means' fixed k).
"""

from __future__ import annotations

from repro.baselines.kmeans import KMeans, kmeans_plus_plus_init
from repro.baselines.parallel_kmeans import ParallelKMeans, parallel_kmeans_spmd
from repro.baselines.dbscan import DBSCAN
from repro.baselines.pdsdbscan import PDSDBSCAN, DisjointSet
from repro.baselines.xmeans import XMeans

__all__ = [
    "KMeans",
    "kmeans_plus_plus_init",
    "ParallelKMeans",
    "parallel_kmeans_spmd",
    "DBSCAN",
    "PDSDBSCAN",
    "DisjointSet",
    "XMeans",
]
