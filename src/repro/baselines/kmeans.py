"""k-means++ (Lloyd's algorithm with D² seeding).

The paper's strongest accuracy baseline on spherical clusters. Unlike
KeyBin2 it requires the true ``k`` and computes point–centroid distances
every iteration — O(M·k·N) per sweep, the cost KeyBin2 avoids.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_array_2d, check_finite

__all__ = ["kmeans_plus_plus_init", "KMeans", "lloyd_iteration"]


def kmeans_plus_plus_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """D²-weighted seeding (Arthur & Vassilvitskii 2007).

    The first centre is uniform; each subsequent centre is drawn with
    probability proportional to the squared distance to the nearest centre
    chosen so far.
    """
    m = x.shape[0]
    if k > m:
        raise ValidationError(f"k={k} exceeds number of points {m}")
    centers = np.empty((k, x.shape[1]), dtype=np.float64)
    centers[0] = x[rng.integers(m)]
    # Squared distance to the nearest chosen centre, updated incrementally.
    d2 = np.sum((x - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with chosen centres; duplicate.
            centers[i:] = centers[0]
            break
        probs = d2 / total
        centers[i] = x[rng.choice(m, p=probs)]
        np.minimum(d2, np.sum((x - centers[i]) ** 2, axis=1), out=d2)
    return centers


def _assign(x: np.ndarray, centers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centre labels and squared distances.

    Uses the ``|x−c|² = |x|² − 2·x·c + |c|²`` expansion: one GEMM instead
    of a broadcasted (M × k × N) intermediate.
    """
    x_sq = np.einsum("ij,ij->i", x, x)
    c_sq = np.einsum("ij,ij->i", centers, centers)
    cross = x @ centers.T
    d2 = x_sq[:, None] - 2.0 * cross + c_sq[None, :]
    np.maximum(d2, 0.0, out=d2)  # clamp numerical negatives
    labels = np.argmin(d2, axis=1)
    return labels, d2[np.arange(x.shape[0]), labels]


def lloyd_iteration(
    x: np.ndarray, centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One Lloyd sweep: assign, then per-cluster sums/counts and inertia.

    Returns ``(labels, sums, counts, inertia)`` — sums/counts rather than
    means so the distributed variant can allreduce them.
    """
    k = centers.shape[0]
    labels, d2 = _assign(x, centers)
    sums = np.zeros_like(centers)
    np.add.at(sums, labels, x)
    counts = np.bincount(labels, minlength=k).astype(np.int64)
    return labels, sums, counts, float(d2.sum())


class KMeans:
    """k-means++ clusterer.

    Parameters
    ----------
    n_clusters:
        The fixed ``k`` (ground truth is supplied in the paper's runs).
    n_init:
        Independent restarts; the lowest-inertia run wins.
    max_iter, tol:
        Lloyd convergence controls (relative inertia improvement).
    seed:
        Reproducibility.

    Attributes (after fit): ``cluster_centers_``, ``labels_``, ``inertia_``,
    ``n_iter_``.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 3,
        max_iter: int = 100,
        tol: float = 1e-4,
        seed: SeedLike = None,
    ):
        if n_clusters < 1:
            raise ValidationError("n_clusters must be >= 1")
        if n_init < 1 or max_iter < 1:
            raise ValidationError("n_init and max_iter must be >= 1")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "KMeans":
        x = check_array_2d(x, "X", min_rows=self.n_clusters)
        check_finite(x, "X")
        rng = as_generator(self.seed)
        best_inertia = np.inf
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(x, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                self.cluster_centers_ = centers
                self.labels_ = labels
                self.n_iter_ = n_iter
        self.inertia_ = float(best_inertia)
        return self

    def _single_run(self, x, rng):
        centers = kmeans_plus_plus_init(x, self.n_clusters, rng)
        prev_inertia = np.inf
        labels = np.zeros(x.shape[0], dtype=np.int64)
        for it in range(1, self.max_iter + 1):
            labels, sums, counts, inertia = lloyd_iteration(x, centers)
            empty = counts == 0
            if empty.any():
                # Re-seed empty clusters at the points farthest from their
                # centres (standard k-means empty-cluster repair).
                _, d2 = _assign(x, centers)
                far = np.argsort(d2)[::-1][: int(empty.sum())]
                sums[empty] = x[far]
                counts[empty] = 1
            centers = sums / counts[:, None]
            if prev_inertia - inertia <= self.tol * max(prev_inertia, 1e-12):
                break
            prev_inertia = inertia
        return centers, labels, inertia, it

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans is not fitted")
        x = check_array_2d(x, "X")
        labels, _ = _assign(x, self.cluster_centers_)
        return labels.astype(np.int64)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_.astype(np.int64)
