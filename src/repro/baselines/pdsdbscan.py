"""PDSDBSCAN — parallel DBSCAN with the disjoint-set data structure.

Follows Patwary et al. (SC'12): the data is spatially partitioned across
ranks with a ghost zone of width ``eps``; each rank runs union-find DBSCAN
locally, then cross-partition core–core edges through ghost points are
merged with distributed union operations. Here the rank-parallel portion is
executed through :mod:`repro.comm` and the final label resolution happens on
the master, which is faithful to the algorithm's structure at the scales we
run.

The known limitation the paper leans on — memory/time blow-up in very high
dimensions — is inherited naturally: neighbourhood queries fall back to
brute force there (see :class:`repro.baselines.dbscan.GridIndex`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dbscan import NOISE, GridIndex
from repro.comm.base import Communicator
from repro.comm.spmd import run_spmd
from repro.errors import ValidationError
from repro.util.validation import check_array_2d, check_finite

__all__ = ["DisjointSet", "PDSDBSCAN", "pdsdbscan_spmd"]


class DisjointSet:
    """Union–find with path halving and union by rank."""

    def __init__(self, n: int):
        if n < 0:
            raise ValidationError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return int(i)

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return ra

    def roots(self) -> np.ndarray:
        """Root of every element (fully compressed)."""
        return np.array([self.find(i) for i in range(self.parent.size)],
                        dtype=np.int64)


def pdsdbscan_spmd(
    comm: Communicator,
    x_local: np.ndarray,
    eps: float,
    min_points: int = 5,
) -> np.ndarray:
    """SPMD PDSDBSCAN; every rank passes its shard, gets local labels back.

    Structure (after Patwary et al.): local union-find DBSCAN per rank,
    then cross-partition core–core edges merged with distributed unions at
    the master, which broadcasts the root relabelling.

    Ghost zones: with Patwary's *spatial* partitioning the points a rank
    must see beyond its own are an ε-wide shell. Shards here are arbitrary
    (often random), so the ghost shell is the full complement — each rank
    allgathers the dataset for neighbour counting. This keeps core/noise
    decisions exactly equal to serial DBSCAN and deliberately inherits the
    algorithm's real memory behaviour (the paper's "could not handle more
    than 100,000 points").
    """
    x_local = check_array_2d(x_local, "x_local", min_rows=1)
    check_finite(x_local, "x_local")

    shards = comm.allgather(x_local)
    x_global = np.concatenate(shards)
    base = int(sum(s.shape[0] for s in shards[: comm.rank]))
    m_local = x_local.shape[0]

    # Exact core test against the global point set.
    index = GridIndex(x_global, eps)
    core = np.zeros(m_local, dtype=bool)
    neigh_cache: List[np.ndarray] = [None] * m_local  # type: ignore[list-item]
    for i in range(m_local):
        neigh = index.neighbors(base + i)
        neigh_cache[i] = neigh
        core[i] = neigh.size >= min_points

    # Local union-find over this rank's core points (cross-rank core-core
    # edges are added at the master).
    ds = DisjointSet(m_local)
    for i in range(m_local):
        if not core[i]:
            continue
        for j in neigh_cache[i]:
            jj = int(j) - base
            if 0 <= jj < m_local and core[jj]:
                ds.union(i, jj)
    roots = ds.roots()

    # Noise: non-core with no core neighbour anywhere (the ghost-adoption
    # pass below rescues border points whose core neighbour is remote).
    is_noise = ~core

    global_roots = roots + base

    core_payload = (x_local[core], global_roots[core])
    gathered = comm.gather(core_payload, root=0)
    if comm.rank == 0:
        all_core = np.concatenate([g[0] for g in gathered]) if gathered else np.empty((0, x_local.shape[1]))
        all_roots = np.concatenate([g[1] for g in gathered]) if gathered else np.empty(0, np.int64)
        mapping = _merge_cross_partition(all_core, all_roots, eps)
        core_labels = np.array(
            [mapping.get(int(r), NOISE) for r in all_roots], dtype=np.int64
        )
        ghost = (all_core, core_labels)
    else:
        mapping = None
        ghost = None
    mapping = comm.bcast(mapping, root=0)
    # Ghost exchange (paper: eps-wide ghost zones): locally-noise points may
    # border a core point that lives on another rank; the global core set is
    # broadcast so every rank can adopt its stranded border points.
    all_core, core_labels = comm.bcast(ghost, root=0)

    labels = np.empty(x_local.shape[0], dtype=np.int64)
    noise_idx = np.flatnonzero(is_noise)
    for i in range(x_local.shape[0]):
        if is_noise[i]:
            labels[i] = NOISE
        else:
            labels[i] = mapping.get(int(global_roots[i]), NOISE)
    if noise_idx.size and all_core.shape[0]:
        for i in noise_idx:
            diff = all_core - x_local[i]
            d2 = np.einsum("ij,ij->i", diff, diff)
            j = int(np.argmin(d2))
            if d2[j] <= eps * eps:
                labels[i] = core_labels[j]
    return labels


def _merge_cross_partition(
    core_points: np.ndarray, core_roots: np.ndarray, eps: float
) -> Dict[int, int]:
    """Union core roots whose points lie within ``eps`` across partitions,
    then densify the surviving roots into labels 0..n_clusters-1."""
    unique_roots, inverse = np.unique(core_roots, return_inverse=True)
    ds = DisjointSet(unique_roots.size)
    if core_points.shape[0]:
        index = GridIndex(core_points, eps)
        for i in range(core_points.shape[0]):
            for j in index.neighbors(i):
                ds.union(int(inverse[i]), int(inverse[j]))
    final_roots = ds.roots()
    dense = {r: k for k, r in enumerate(sorted(set(int(v) for v in final_roots)))}
    return {
        int(unique_roots[i]): dense[int(final_roots[i])]
        for i in range(unique_roots.size)
    }


class PDSDBSCAN:
    """Front-end running :func:`pdsdbscan_spmd` over pre-sharded data.

    Attributes (after fit): ``labels_`` (list per shard), ``n_clusters_``,
    ``traffic_``.
    """

    def __init__(
        self,
        eps: float,
        min_points: int = 5,
        executor: str = "thread",
        timeout: Optional[float] = 600.0,
    ):
        if eps <= 0:
            raise ValidationError("eps must be positive")
        self.eps = float(eps)
        self.min_points = int(min_points)
        self.executor = executor
        self.timeout = timeout

    def fit(self, shards: Sequence[np.ndarray]) -> "PDSDBSCAN":
        shards = [np.asarray(s) for s in shards]
        if not shards:
            raise ValidationError("need at least one shard")
        results = run_spmd(
            _entry,
            len(shards),
            executor=self.executor,
            args=(list(shards), self.eps, self.min_points),
            timeout=self.timeout,
        )
        self.labels_ = [r[0] for r in results]
        self.traffic_ = [r[1] for r in results]
        all_labels = np.concatenate(self.labels_)
        self.n_clusters_ = int(np.unique(all_labels[all_labels >= 0]).size)
        return self

    def concatenated_labels(self) -> np.ndarray:
        return np.concatenate(self.labels_)


def _entry(comm: Communicator, shards: List[np.ndarray], eps: float, min_points: int):
    labels = pdsdbscan_spmd(comm, shards[comm.rank], eps, min_points)
    return labels, comm.traffic.snapshot()
