"""X-means: k-means with BIC-driven selection of k (Pelleg & Moore 2000).

Discussed in the paper's related work as the standard fix for k-means'
fixed-k limitation. Starting from ``k_min`` centres, every cluster is
tentatively split in two; the split is kept when the Bayesian Information
Criterion of the two-centre model beats the one-centre model. Iterates
until no split survives or ``k_max`` is reached.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.kmeans import KMeans, lloyd_iteration
from repro.errors import ValidationError
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_array_2d, check_finite

__all__ = ["XMeans", "bic_score"]


def bic_score(x: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """BIC of a spherical-Gaussian k-means model (Pelleg & Moore eq. 2).

    Higher is better. Uses the maximum-likelihood pooled variance estimate
    over all clusters.
    """
    m, n = x.shape
    k = centers.shape[0]
    if m <= k:
        return -np.inf
    # Pooled ML variance.
    d2 = np.sum((x - centers[labels]) ** 2)
    variance = d2 / (n * (m - k))
    if variance <= 0:
        variance = np.finfo(float).tiny
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    # Log-likelihood per cluster, summed.
    with np.errstate(divide="ignore"):
        log_counts = np.where(counts > 0, np.log(np.maximum(counts, 1)), 0.0)
    ll = float(
        np.sum(
            counts * log_counts
            - counts * np.log(m)
            - counts * n / 2.0 * np.log(2.0 * np.pi * variance)
        )
        - (m - k) * n / 2.0
    )
    n_params = k * (n + 1)  # centres + shared variance per cluster weight
    return ll - n_params / 2.0 * np.log(m)


class XMeans:
    """BIC-guided k-means.

    Parameters
    ----------
    k_min, k_max:
        Search range for the number of clusters.
    seed, n_init, max_iter:
        Passed through to the inner k-means runs.

    Attributes (after fit): ``n_clusters_``, ``labels_``,
    ``cluster_centers_``.
    """

    def __init__(
        self,
        k_min: int = 1,
        k_max: int = 32,
        n_init: int = 2,
        max_iter: int = 50,
        seed: SeedLike = None,
    ):
        if k_min < 1 or k_max < k_min:
            raise ValidationError("need 1 <= k_min <= k_max")
        self.k_min = int(k_min)
        self.k_max = int(k_max)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.seed = seed
        self.labels_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "XMeans":
        x = check_array_2d(x, "X", min_rows=2)
        check_finite(x, "X")
        rng = as_generator(self.seed)

        km = KMeans(self.k_min, n_init=self.n_init, max_iter=self.max_iter,
                    seed=rng).fit(x)
        centers: List[np.ndarray] = [c for c in km.cluster_centers_]
        labels = km.labels_.copy()

        improved = True
        while improved and len(centers) < self.k_max:
            improved = False
            new_centers: List[np.ndarray] = []
            for ci, center in enumerate(centers):
                members = np.flatnonzero(labels == ci)
                pts = x[members]
                if members.size < 4 or len(centers) + len(new_centers) >= self.k_max:
                    new_centers.append(center)
                    continue
                parent_bic = bic_score(
                    pts, np.zeros(members.size, dtype=np.int64), center[None, :]
                )
                child = KMeans(2, n_init=self.n_init, max_iter=self.max_iter,
                               seed=rng).fit(pts)
                child_bic = bic_score(pts, child.labels_, child.cluster_centers_)
                if child_bic > parent_bic and np.unique(child.labels_).size == 2:
                    new_centers.extend([c for c in child.cluster_centers_])
                    improved = True
                else:
                    new_centers.append(center)
            if improved:
                # Warm-start Lloyd from the split centres.
                c_arr = np.asarray(new_centers)
                prev_inertia = np.inf
                for _ in range(self.max_iter):
                    labels, sums, counts, inertia = lloyd_iteration(x, c_arr)
                    nonzero = counts > 0
                    c_arr[nonzero] = sums[nonzero] / counts[nonzero, None]
                    if prev_inertia - inertia <= 1e-4 * max(prev_inertia, 1e-12):
                        break
                    prev_inertia = inertia
                # Drop centres that attract nothing.
                keep = np.bincount(labels, minlength=c_arr.shape[0]) > 0
                c_arr = c_arr[keep]
                labels, _, _, _ = lloyd_iteration(x, c_arr)
                centers = [c for c in c_arr]
            else:
                centers = new_centers

        self.cluster_centers_ = np.asarray(centers)
        self.labels_ = labels.astype(np.int64)
        self.n_clusters_ = len(centers)
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_
